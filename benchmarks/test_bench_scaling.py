"""Experiment E14 (beyond-paper): how the abstraction gap scales.

The paper measures fixed program sizes; this bench grows one synthetic
benchmark and tracks both abstractions' fact counts.  The ``scale``
knob grows the driver code linearly (call sites, container traffic,
per-context payload) while the context-multiplying structures stay
fixed, so the *relative* reduction should stay substantial and roughly
stable rather than collapse — the regime in which the paper's technique
pays for itself.
"""

import pytest

from repro.bench.harness import run_cell
from repro.bench.workloads import dacapo_program
from repro.frontend.factgen import generate_facts

SCALES = (1, 2, 4)


def test_reduction_does_not_degrade_with_scale(benchmark):
    def measure():
        rows = []
        for scale in SCALES:
            facts = generate_facts(dacapo_program("chart", scale=scale))
            cell = run_cell(facts, "chart", "2-object+H")
            rows.append(
                (
                    scale,
                    cell.context_string.total,
                    cell.transformer_string.total,
                    cell.total_decrease(),
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nchart @ 2-object+H:")
    print(f"{'scale':>6s} {'cs facts':>9s} {'ts facts':>9s} {'reduction':>10s}")
    for (scale, cs_total, ts_total, decrease) in rows:
        print(f"{scale:6d} {cs_total:9d} {ts_total:9d} {decrease * 100:9.1f}%")
    reductions = [decrease for (_, _, _, decrease) in rows]
    # The relative gap must stay substantial — not collapse — as the
    # program grows.
    assert all(r > 0.4 for r in reductions)
    assert reductions[-1] >= reductions[0] - 0.15


@pytest.mark.parametrize("scale", SCALES)
def test_time_scaling_transformer(benchmark, scale):
    from repro.core.analysis import analyze
    from repro.core.config import config_by_name

    facts = generate_facts(dacapo_program("chart", scale=scale))
    config = config_by_name("2-object+H", "transformer-string")
    benchmark.pedantic(
        lambda: analyze(facts, config), rounds=3, iterations=1,
        warmup_rounds=1,
    )
