"""Experiment E2: paper Figure 5 — the derivation-compactness example.

Benchmarks both abstractions on the Figure 5 program at m = 1, h = 1
call-site sensitivity and asserts the paper's exact fact counts
(12 vs 5 pts facts, 4 vs 3 call facts, identical CI results).
"""

import pytest

from repro.core.analysis import analyze
from repro.core.config import config_by_name
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_5


@pytest.fixture(scope="module")
def facts():
    return facts_from_source(FIGURE_5)


@pytest.mark.parametrize("abstraction", ["context-string", "transformer-string"])
def test_time_figure5(benchmark, facts, abstraction):
    config = config_by_name("1-call+H", abstraction)
    result = benchmark.pedantic(
        lambda: analyze(facts, config), rounds=5, iterations=10,
        warmup_rounds=1,
    )
    expected_pts = 12 if abstraction == "context-string" else 5
    expected_call = 4 if abstraction == "context-string" else 3
    assert len(result.pts) == expected_pts
    assert len(result.call) == expected_call


def test_fact_reduction_matches_paper(benchmark, facts):
    cs = analyze(facts, config_by_name("1-call+H", "context-string"))
    ts = benchmark.pedantic(
        lambda: analyze(facts, config_by_name("1-call+H", "transformer-string")),
        rounds=3, iterations=1,
    )
    assert (len(cs.pts), len(ts.pts)) == (12, 5)
    assert cs.pts_ci() == ts.pts_ci()
    print(
        f"\nFigure 5: pts {len(cs.pts)} -> {len(ts.pts)}"
        f" ({(1 - len(ts.pts) / len(cs.pts)) * 100:.0f}% fewer),"
        f" call {len(cs.call)} -> {len(ts.call)}"
    )
