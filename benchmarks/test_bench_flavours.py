"""Beyond-paper flavours: does the transformer-string advantage carry?

The paper evaluates call-site, object, and type sensitivity; its
parameterization also admits plain object sensitivity (the Section 2.2
contrast) and uniform hybrid sensitivity (citation [6]).  This bench
extends Figure 6's comparison to those flavours — the abstraction
difference should behave like the flavour each one generalizes
(plain object ~ call-site shape; hybrid ~ object shape).
"""

import pytest

from repro.bench.harness import run_cell
from repro.core.analysis import analyze
from repro.core.config import config_by_name

FLAVOURS = ("2-plain-object+H", "2-hybrid+H")


@pytest.mark.parametrize("configuration", FLAVOURS)
@pytest.mark.parametrize("abstraction", ["context-string", "transformer-string"])
def test_time_flavour(benchmark, workload_facts, configuration, abstraction):
    facts = workload_facts["chart"]
    config = config_by_name(configuration, abstraction)
    benchmark.pedantic(
        lambda: analyze(facts, config), rounds=3, iterations=1,
        warmup_rounds=1,
    )


@pytest.mark.parametrize("configuration", FLAVOURS)
def test_fact_reduction_carries_over(benchmark, workload_facts, configuration):
    def measure():
        rows = {}
        for name in ("chart", "xalan", "luindex"):
            cell = run_cell(workload_facts[name], name, configuration)
            rows[name] = cell
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\n{configuration}:")
    for name, cell in rows.items():
        print(
            f"  {name:8s} total {cell.context_string.total:5d} ->"
            f" {cell.transformer_string.total:5d}"
            f" ({cell.total_decrease() * 100:5.1f}% fewer facts)"
        )
        assert cell.total_decrease() > 0, (name, configuration)
        for relation in ("pts", "hpts", "call"):
            assert cell.ci_increase(relation) == 0


def test_hybrid_vs_object_precision(benchmark, workload_facts):
    """Hybrid and full object sensitivity are *incomparable* at fixed
    context depth (Kastrinis & Smaragdakis): the hybrid's call-site
    pushes separate static wrappers but consume depth that object
    contexts would have used.  On this workload the divergence is small
    and one-sided; both refine the context-insensitive result."""
    facts = workload_facts["luindex"]
    insensitive = analyze(facts, config_by_name("insensitive"))
    obj = analyze(facts, config_by_name("2-object+H"))
    hybrid = benchmark.pedantic(
        lambda: analyze(facts, config_by_name("2-hybrid+H")),
        rounds=1, iterations=1,
    )
    assert obj.pts_ci() <= insensitive.pts_ci()
    assert hybrid.pts_ci() <= insensitive.pts_ci()
    divergence = len(hybrid.pts_ci() ^ obj.pts_ci())
    print(
        f"\n2-hybrid+H vs 2-object+H: {len(hybrid.pts_ci())} vs"
        f" {len(obj.pts_ci())} CI pts facts, symmetric difference"
        f" {divergence}"
    )
    assert divergence < 0.1 * len(obj.pts_ci())
