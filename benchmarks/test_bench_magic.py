"""Experiment E10: demand-driven evaluation via magic sets.

The paper's future-work direction: "Datalog programs that exhaustively
compute information can be converted to a demand-driven program through
the magic sets transformation."  We apply the transformation to the
configuration-specialized transformer-string program (which is pure
Datalog, so the classical transformation applies directly) and measure
exhaustive evaluation against a single points-to query.
"""

import pytest

from repro.compile.emit import compile_transformer_analysis
from repro.core.sensitivity import Flavour
from repro.datalog.engine import Engine
from repro.datalog.magic import magic_transform


@pytest.fixture(scope="module")
def compiled(workload_facts):
    return compile_transformer_analysis(
        workload_facts["luindex"], Flavour.CALL_SITE, 0, 0
    )


def _query_var(workload_facts):
    facts = workload_facts["luindex"]
    return sorted(y for (y, _, _) in facts.formal)[0]


def test_time_exhaustive(benchmark, compiled):
    benchmark.pedantic(lambda: compiled.run(), rounds=3, iterations=1)


def test_time_magic_query(benchmark, compiled, workload_facts):
    var = _query_var(workload_facts)

    def run_query():
        answers = set()
        # The CI transformer program splits pts over the ε and wildcard
        # configurations; query both.
        for pred in ("pts__", "pts__w"):
            if pred not in compiled.program.idb_predicates():
                continue
            magic, answer_pred = magic_transform(
                compiled.program, pred, (var, None)
            )
            answers |= Engine(magic).run().get(answer_pred, set())
        return answers

    answers = benchmark.pedantic(run_query, rounds=3, iterations=1)
    exhaustive = compiled.run()
    # At m = 0 the specialized pts relations carry no context attributes:
    # rows are bare (Y, H) pairs.
    expected = {(y, h) for (y, h, _) in exhaustive.pts if y == var}
    assert set(answers) == expected


def test_magic_explores_less(benchmark, compiled, workload_facts):
    """The demand-driven program derives fewer tuples than exhaustive
    evaluation (the locality the paper hopes to pair with transformer
    strings)."""
    var = _query_var(workload_facts)
    exhaustive_engine = Engine(compiled.program, compiled.builtins)
    exhaustive_engine.run()
    exhaustive_derived = exhaustive_engine.stats.facts_derived

    magic, _ = magic_transform(compiled.program, "pts__", (var, None))
    magic_engine = Engine(magic)
    benchmark.pedantic(magic_engine.run, rounds=1, iterations=1)
    print(
        f"\nderived facts: exhaustive {exhaustive_derived},"
        f" magic query {magic_engine.stats.facts_derived}"
    )
    assert magic_engine.stats.facts_derived < exhaustive_derived
