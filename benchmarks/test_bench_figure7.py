"""Experiment E4: paper Figure 7 — subsuming facts and their cost.

Measures the `bloat` analogue (whose AST pattern is the paper's worked
example of subsuming facts) under 1-call+H with and without the
subsumed-fact elimination the paper sketches as future work, and pins
Figure 7's program behaviour.
"""

import pytest

from repro.core.analysis import analyze
from repro.core.config import config_by_name
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_7


@pytest.mark.parametrize("eliminate", [False, True],
                         ids=["plain", "eliminate-subsumed"])
def test_time_bloat_subsumption_ablation(benchmark, workload_facts, eliminate):
    facts = workload_facts["bloat"]
    config = config_by_name(
        "1-call+H", "transformer-string", eliminate_subsumed=eliminate
    )
    result = benchmark.pedantic(
        lambda: analyze(facts, config), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    if eliminate:
        assert result.stats.facts_subsumed > 0


def test_elimination_reduces_facts_not_precision(benchmark, workload_facts):
    facts = workload_facts["bloat"]
    plain = analyze(facts, config_by_name("1-call+H", "transformer-string"))
    pruned = benchmark.pedantic(
        lambda: analyze(
            facts,
            config_by_name(
                "1-call+H", "transformer-string", eliminate_subsumed=True
            ),
        ),
        rounds=1, iterations=1,
    )
    assert pruned.total_facts() < plain.total_facts()
    assert pruned.pts_ci() == plain.pts_ci()
    assert pruned.hpts_ci() == plain.hpts_ci()
    print(
        f"\nbloat/1-call+H: {plain.total_facts()} facts,"
        f" {plain.subsumption_ratio() * 100:.1f}% of pts facts subsumed;"
        f" elimination leaves {pruned.total_facts()} facts"
    )


def test_figure7_program_subsumption(benchmark):
    facts = facts_from_source(FIGURE_7)
    config = config_by_name("1-call+H", "transformer-string")
    result = benchmark.pedantic(
        lambda: analyze(facts, config), rounds=5, iterations=10,
        warmup_rounds=1,
    )
    assert result.subsumption_ratio() == 0.25


def test_bloat_subsumption_exceeds_other_benchmarks(benchmark, workload_facts):
    """Paper Section 8: bloat suffers the most from subsuming facts."""

    def measure():
        return {
            name: analyze(
                facts, config_by_name("1-call+H", "transformer-string")
            ).subsumption_ratio()
            for name, facts in workload_facts.items()
        }

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nsubsumption ratios at 1-call+H:", {
        k: round(v, 4) for k, v in sorted(ratios.items())
    })
    assert ratios["bloat"] > 0
