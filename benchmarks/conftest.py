"""Shared fixtures for the benchmark suite.

Workload facts are generated once per session; every benchmark then
re-runs only the analysis under measurement.  ``RESULTS_DIR`` collects
the regenerated paper artifacts (the Figure 6 table and friends) so the
benchmark run leaves inspectable output behind.
"""

import os

import pytest

from repro.bench.workloads import DACAPO_NAMES, dacapo_program
from repro.frontend.factgen import generate_facts

#: Size multiplier for the synthetic DaCapo analogues.
SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "3"))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def workload_facts():
    """Facts for all seven synthetic benchmarks at the session scale."""
    return {
        name: generate_facts(dacapo_program(name, scale=SCALE))
        for name in DACAPO_NAMES
    }


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR
