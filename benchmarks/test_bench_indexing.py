"""Experiment E5: the Section 7 indexing claim.

"A naive method of implementing a transformer string instantiation is to
implement [comp] as a procedural function … The performance of such an
implementation is significantly slower than a context string
instantiation" — while configuration specialization restores the
indexable joins.

Measured on the Datalog engine with the paper's three instantiations of
the same deduction rules over identical facts:

* context strings (packed contexts, constructor builtins);
* transformer strings, naive (packed strings, ``comp`` builtin);
* transformer strings, configuration-specialized (pure Datalog).
"""

import pytest

from repro.compile.emit import (
    compile_context_string_analysis,
    compile_transformer_analysis,
    compile_transformer_analysis_naive,
)
from repro.core.sensitivity import Flavour

VARIANTS = {
    "context-string": compile_context_string_analysis,
    "transformer-naive": compile_transformer_analysis_naive,
    "transformer-specialized": compile_transformer_analysis,
}


@pytest.fixture(scope="module")
def facts(workload_facts):
    return workload_facts["luindex"]


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_time_datalog_1call_h(benchmark, facts, variant):
    compiler = VARIANTS[variant]
    benchmark.pedantic(
        lambda: compiler(facts, Flavour.CALL_SITE, 1, 1).run(),
        rounds=3, iterations=1, warmup_rounds=1,
    )


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_time_datalog_2obj_h(benchmark, facts, variant):
    compiler = VARIANTS[variant]
    benchmark.pedantic(
        lambda: compiler(facts, Flavour.OBJECT, 2, 1).run(),
        rounds=3, iterations=1, warmup_rounds=1,
    )


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_time_compiled_backend_2obj_h(benchmark, workload_facts, variant):
    """The Section 7 ordering with interpretation overhead removed: on
    the compiled back-end (the analogue of the paper's LLVM engine) the
    specialized transformer program is the fastest and the naive one
    trails context strings — the paper's Section 7 performance claim."""
    chart = workload_facts["chart"]
    compiled = VARIANTS[variant](chart, Flavour.OBJECT, 2, 1)
    # Build once (codegen cost amortizes across runs, like any compiler);
    # measure evaluation.
    from repro.datalog.codegen import CompiledEngine

    engine = CompiledEngine(compiled.program, compiled.builtins)
    benchmark.pedantic(engine.run, rounds=3, iterations=1, warmup_rounds=1)


def test_compiled_backend_agrees(benchmark, facts):
    def check():
        for variant, compiler in VARIANTS.items():
            analysis = compiler(facts, Flavour.CALL_SITE, 1, 1)
            interpreted = analysis.run(backend="interpreted")
            compiled = analysis.run(backend="compiled")
            assert compiled.pts == interpreted.pts, variant
            assert compiled.call == interpreted.call, variant

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_all_variants_agree(benchmark, facts):
    """The three instantiations derive consistent results (the
    specialized and naive transformer paths identical; context strings
    the same context-insensitive projection)."""
    specialized = benchmark.pedantic(
        lambda: compile_transformer_analysis(
            facts, Flavour.CALL_SITE, 1, 1
        ).run(),
        rounds=1, iterations=1,
    )
    naive = compile_transformer_analysis_naive(
        facts, Flavour.CALL_SITE, 1, 1
    ).run()
    strings = compile_context_string_analysis(
        facts, Flavour.CALL_SITE, 1, 1
    ).run()
    assert specialized.pts == naive.pts
    assert specialized.call == naive.call
    assert specialized.pts_ci() == strings.pts_ci()
    assert specialized.call_graph() == strings.call_graph()


@pytest.mark.parametrize("indexing", ["prefix-compatible", "naive-entity-only"])
def test_time_solver_index_ablation(benchmark, workload_facts, indexing):
    """The Section 7 join-indexing effect inside the worklist solver:
    identical results, but the naive entity-only bucketing pays the
    two-attribute-join penalty the paper describes."""
    from repro.core.analysis import analyze
    from repro.core.config import config_by_name

    facts = workload_facts["chart"]
    config = config_by_name(
        "2-object+H", "transformer-string",
        naive_transformer_index=(indexing == "naive-entity-only"),
    )
    result = benchmark.pedantic(
        lambda: analyze(facts, config), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    reference = analyze(
        facts, config_by_name("2-object+H", "transformer-string")
    )
    assert result.pts == reference.pts


def test_specialization_reduces_engine_work(benchmark, facts):
    """The specialized program performs fewer rule evaluations per
    derived fact than the naive one needs builtin invocations, because
    its joins are guarded by indexed context attributes."""
    specialized = benchmark.pedantic(
        lambda: compile_transformer_analysis(
            facts, Flavour.CALL_SITE, 1, 1
        ).run(),
        rounds=1, iterations=1,
    )
    naive = compile_transformer_analysis_naive(
        facts, Flavour.CALL_SITE, 1, 1
    ).run()
    print(
        f"\nengine stats: specialized {specialized.engine.stats.as_dict()}"
        f" vs naive {naive.engine.stats.as_dict()}"
    )
    assert specialized.engine.stats.facts_derived >= len(specialized.pts)
