"""Experiment E6: the 2-type+H precision column of Figure 6.

The paper reports a marginal precision loss for transformer strings
under type sensitivity (geometric mean +0.7% context-insensitive pts
facts).  This bench measures the context-insensitive increases across
the workload suite and on the dedicated witness program, and times the
type-sensitive analyses.
"""

import pytest

from repro.core.analysis import analyze
from repro.core.config import config_by_name
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import TYPE_PRECISION_LOSS


@pytest.mark.parametrize("abstraction", ["context-string", "transformer-string"])
def test_time_2type_h(benchmark, workload_facts, abstraction):
    facts = workload_facts["eclipse"]
    config = config_by_name("2-type+H", abstraction)
    benchmark.pedantic(
        lambda: analyze(facts, config), rounds=3, iterations=1,
        warmup_rounds=1,
    )


def test_ci_increase_across_suite(benchmark, workload_facts):
    """Transformer strings may add context-insensitive facts only under
    type sensitivity, and only marginally (paper: ~0.7% geomean)."""

    def measure():
        rows = []
        for name, facts in sorted(workload_facts.items()):
            cs = analyze(facts, config_by_name("2-type+H", "context-string"))
            ts = analyze(
                facts, config_by_name("2-type+H", "transformer-string")
            )
            assert ts.pts_ci() >= cs.pts_ci(), name
            increase = len(ts.pts_ci()) - len(cs.pts_ci())
            rows.append((name, len(cs.pts_ci()), increase))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\n2-type+H CI pts facts (context strings, +increase):")
    for (name, base, increase) in rows:
        print(f"  {name:10s} {base:6d} (+{increase})")
    total_base = sum(base for (_, base, _) in rows)
    total_increase = sum(inc for (_, _, inc) in rows)
    assert total_increase <= 0.05 * total_base  # marginal, as in the paper


def test_witness_program_quantifies_loss(benchmark):
    facts = facts_from_source(TYPE_PRECISION_LOSS)
    config = config_by_name("2-type+H", "transformer-string")
    ts = benchmark.pedantic(
        lambda: analyze(facts, config), rounds=5, iterations=10,
        warmup_rounds=1,
    )
    cs = analyze(facts, config_by_name("2-type+H", "context-string"))
    extra = len(ts.pts_ci()) - len(cs.pts_ci())
    assert extra > 0
    print(
        f"\ntype witness: {len(cs.pts_ci())} CI pts facts with context"
        f" strings, +{extra} with transformer strings"
    )
