"""Experiment E9: CFL-reachability solvers vs the rule-based analysis.

Times the three context-insensitive solvers on the same programs: the
generic Melski–Reps CFL-reachability solver over ``L_F`` (the executable
form of paper Section 2.1), the specialized flows-to fixpoint, and the
m = 0 instantiation of the deduction rules — all three provably equal
on points-to results (tested), with very different constants.  Also
measures the locality advantage of demand-driven queries.
"""

import pytest

from repro.cfl.demand import DemandPointsTo
from repro.cfl.grammar import flows_to_pairs
from repro.cfl.pag import build_pag
from repro.cfl.solver import FlowsToSolver
from repro.core.analysis import analyze
from repro.core.config import config_by_name


@pytest.fixture(scope="module")
def pag(workload_facts):
    return build_pag(workload_facts["luindex"])


def test_time_generic_cfl(benchmark, pag):
    benchmark.pedantic(lambda: flows_to_pairs(pag), rounds=3, iterations=1)


def test_time_specialized_fixpoint(benchmark, pag):
    benchmark.pedantic(
        lambda: FlowsToSolver(pag).solve(), rounds=3, iterations=1
    )


def test_time_m0_rules(benchmark, workload_facts):
    facts = workload_facts["luindex"]
    config = config_by_name("insensitive")
    benchmark.pedantic(lambda: analyze(facts, config), rounds=3, iterations=1)


def test_equivalence_at_benchmark_scale(benchmark, pag, workload_facts):
    generic = benchmark.pedantic(
        lambda: flows_to_pairs(pag), rounds=1, iterations=1
    )
    fixpoint = FlowsToSolver(pag).solve().flows_to_pairs()
    rules = analyze(workload_facts["luindex"], config_by_name("insensitive"))
    from_rules = {(h, y) for (y, h) in rules.pts_ci()}
    assert generic == fixpoint == from_rules


def test_demand_locality(benchmark, pag):
    """A single query touches a fraction of the program's variables."""
    exhaustive = FlowsToSolver(pag).solve()
    query_var = next(iter(sorted(
        v for v in pag.nodes() - pag.heap_nodes() if v.endswith("/p")
    )))

    def query_once():
        demand = DemandPointsTo(pag)
        return demand.query(query_var), demand

    (answer, demand) = benchmark.pedantic(query_once, rounds=3, iterations=1)
    assert answer == exhaustive.points_to(query_var)
    demanded, total = demand.coverage()
    print(f"\ndemand query for {query_var}: touched {demanded}/{total} variables")
    assert demanded < total
