"""Substrate benchmark: raw Datalog engine throughput.

Not a paper artifact, but the baseline every experiment sits on: the
engine's semi-naive evaluation on classical workloads (transitive
closure, same-generation), to make regressions in the substrate visible
independently of the pointer-analysis programs.
"""

import pytest

from repro.datalog.ast import Program, atom
from repro.datalog.engine import Engine


def tc_program(n, extra_component=True):
    program = Program()
    program.rule(atom("path", "X", "Y"), atom("edge", "X", "Y"))
    program.rule(
        atom("path", "X", "Z"), atom("edge", "X", "Y"), atom("path", "Y", "Z")
    )
    edges = [(i, i + 1) for i in range(n)]
    if extra_component:
        edges += [(1000 + i, 1001 + i) for i in range(n)]
    program.add_facts("edge", edges)
    return program


def sg_program(depth, fanout):
    program = Program()
    program.rule(atom("sg", "X", "X"), atom("person", "X"))
    program.rule(
        atom("sg", "X", "Y"),
        atom("parent", "X", "XP"),
        atom("sg", "XP", "YP"),
        atom("parent", "Y", "YP"),
    )
    people = [("r",)]
    parents = []
    frontier = ["r"]
    for level in range(depth):
        next_frontier = []
        for node in frontier:
            for k in range(fanout):
                child = f"{node}.{k}"
                people.append((child,))
                parents.append((child, node))
                next_frontier.append(child)
        frontier = next_frontier
    program.add_facts("person", people)
    program.add_facts("parent", parents)
    return program


def test_time_transitive_closure(benchmark):
    result = benchmark.pedantic(
        lambda: Engine(tc_program(60)).run(), rounds=3, iterations=1
    )
    assert len(result["path"]) == 2 * (60 * 61 // 2)


def test_time_transitive_closure_compiled(benchmark):
    """The compiling back-end (the paper's LLVM analogue): same results,
    an order of magnitude faster on recursion-heavy programs."""
    from repro.datalog.codegen import CompiledEngine

    engine = CompiledEngine(tc_program(60))
    result = benchmark.pedantic(engine.run, rounds=3, iterations=1)
    assert len(result["path"]) == 2 * (60 * 61 // 2)


def test_time_same_generation_compiled(benchmark):
    from repro.datalog.codegen import CompiledEngine

    engine = CompiledEngine(sg_program(5, 2))
    result = benchmark.pedantic(engine.run, rounds=3, iterations=1)
    assert ("r.0", "r.1") in result["sg"]


def test_time_same_generation(benchmark):
    result = benchmark.pedantic(
        lambda: Engine(sg_program(5, 2)).run(), rounds=3, iterations=1
    )
    assert ("r.0", "r.1") in result["sg"]


def test_time_indexed_join_scales(benchmark):
    """A selective join must stay cheap even with many facts."""
    program = Program()
    program.rule(
        atom("out", "X", "Z"), atom("left", "X", "Y"), atom("right", "Y", "Z")
    )
    program.add_facts("left", [(i, i % 50) for i in range(3000)])
    program.add_facts("right", [(i, i + 1) for i in range(50)])
    result = benchmark.pedantic(
        lambda: Engine(program).run(), rounds=3, iterations=1
    )
    assert len(result["out"]) == 3000
