"""Experiment E15: the paper's *excluded* benchmarks, measured.

Section 8: "jython and hsqldb are not evaluated because
context-sensitive analyses of the two programs do not scale due to
overly conservative handling of Java reflection.  lusearch is not
evaluated because it is too similar to luindex."  We reproduce both
rationales on the synthetic analogues:

* the reflective analogues' context-sensitive fact counts blow up
  disproportionately to their input size (the mega-dispatch sites
  multiply call edges by contexts);
* the lusearch analogue's profile is within a small factor of
  luindex's.
"""

import pytest

from repro.core.analysis import analyze
from repro.core.config import config_by_name
from repro.bench.workloads import EXCLUDED_NAMES, dacapo_program
from repro.frontend.factgen import generate_facts

SCALE = 2


@pytest.fixture(scope="module")
def excluded_facts():
    names = ("luindex",) + EXCLUDED_NAMES
    return {
        name: generate_facts(dacapo_program(name, scale=SCALE))
        for name in names
    }


def blowup(facts):
    """Context-sensitive facts per input fact at 2-object+H."""
    result = analyze(facts, config_by_name("2-object+H", "context-string"))
    return result.total_facts() / sum(facts.counts().values())


def test_reflection_blowup_justifies_exclusion(benchmark, excluded_facts):
    def measure():
        return {name: blowup(f) for name, f in excluded_facts.items()}

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\ncontext-sensitive facts per input fact (2-object+H):")
    for name, ratio in sorted(ratios.items(), key=lambda kv: kv[1]):
        print(f"  {name:9s} {ratio:5.2f}")
    assert ratios["jython"] > 2 * ratios["luindex"]
    assert ratios["hsqldb"] > 2 * ratios["luindex"]


def test_lusearch_is_too_similar_to_luindex(benchmark, excluded_facts):
    def measure():
        out = {}
        for name in ("luindex", "lusearch"):
            result = analyze(
                excluded_facts[name], config_by_name("2-object+H")
            )
            out[name] = result.total_facts()
        return out

    totals = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\n2-object+H totals: {totals}")
    ratio = totals["lusearch"] / totals["luindex"]
    assert 0.5 < ratio < 2.0


@pytest.mark.parametrize("abstraction", ["context-string", "transformer-string"])
def test_time_jython(benchmark, excluded_facts, abstraction):
    """Transformer strings help the pathological case too — but do not
    rescue it (consistent with the paper excluding it rather than
    presenting it as a win)."""
    facts = excluded_facts["jython"]
    config = config_by_name("2-object+H", abstraction)
    result = benchmark.pedantic(
        lambda: analyze(facts, config), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    assert result.total_facts() > 0


def test_transformer_strings_still_reduce_facts(benchmark, excluded_facts):
    def measure():
        facts = excluded_facts["jython"]
        cs = analyze(facts, config_by_name("2-object+H", "context-string"))
        ts = analyze(facts, config_by_name("2-object+H", "transformer-string"))
        return cs, ts

    cs, ts = benchmark.pedantic(measure, rounds=1, iterations=1)
    reduction = 1 - ts.total_facts() / cs.total_facts()
    print(
        f"\njython 2-object+H: {cs.total_facts()} -> {ts.total_facts()}"
        f" ({reduction * 100:.1f}% fewer facts)"
    )
    assert reduction > 0.2
    assert cs.pts_ci() == ts.pts_ci()
