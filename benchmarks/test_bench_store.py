"""Store-substrate microbenchmarks.

Exercises the primitives every execution path now goes through —
interning, instrumented relation insert/lookup, keyed-index add/probe —
in isolation, with bounded workloads, and checks that the uniform
counters actually count.  Run in CI as a smoke step (one round) so a
regression in the shared substrate is caught before it shows up as a
diffuse slowdown of all four engines.
"""

import pytest

from repro.store import Interner, KeyedIndex, Relation, TupleStore

N = 20_000


@pytest.fixture()
def entity_rows():
    """Synthetic (var, heap, context) rows with realistic duplication.

    The attribute moduli have lcm 12000 < N, so the stream repeats and
    the dedup path is genuinely exercised."""
    return [
        (f"m{i % 40}/v{i % 1000}", f"h{i % 160}", (f"c{i % 6}",))
        for i in range(N)
    ]


def test_time_interner_roundtrip(benchmark, entity_rows):
    def run():
        interner = Interner()
        symbols = [interner.intern_row(row) for row in entity_rows]
        # Decode the boundary slice, as results do.
        for interned in symbols[:1000]:
            interner.decode_row(interned)
        return interner

    interner = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert len(interner) <= 3 * N


def test_time_relation_insert_dedup(benchmark, entity_rows):
    def run():
        rel = Relation("pts", 3)
        for row in entity_rows:
            rel.add(row)
        return rel

    rel = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert rel.counters.inserts == len(rel.rows)
    assert rel.counters.inserts + rel.counters.dedup_hits == N
    assert rel.counters.dedup_hits > 0  # workload has duplicates


def test_time_indexed_lookup(benchmark, entity_rows):
    rel = Relation("pts", 3)
    rel.ensure_index((0,))
    for row in entity_rows:
        rel.add(row)
    keys = sorted({(row[0],) for row in entity_rows})

    def run():
        hits = 0
        for key in keys:
            hits += len(rel.lookup((0,), key))
        return hits

    hits = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert hits == len(rel.rows)
    assert rel.counters.probes >= len(keys)


def test_time_keyed_index_probe(benchmark, entity_rows):
    store = TupleStore()
    index = store.keyed_index("pts")
    for (var, heap, ctx) in entity_rows:
        index.add((var, ctx), (heap, ctx))
    probes = sorted({(var, ctx) for (var, _, ctx) in entity_rows})

    def run():
        hits = 0
        for key in probes:
            hits += len(index.probe(key))
        # Misses return the shared empty tuple without allocating.
        for key in probes[:100]:
            assert index.probe((key, "missing")) == ()
        return hits

    hits = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert hits == N
    assert store.describe()["pts"]["probes"] > 0


def test_store_counters_cover_all_paths(benchmark):
    """One quickstart-sized end-to-end run per engine: every path's
    store reports non-zero insert and probe counters."""
    from repro.core.analysis import analyze
    from repro.core.config import config_by_name
    from repro.frontend.factgen import facts_from_source
    from repro.frontend.paper_programs import FIGURE_1

    def run():
        facts = facts_from_source(FIGURE_1)
        return analyze(facts, config_by_name("2-object+H")).store_stats()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    for name in ("pts", "hpts", "call"):
        assert stats[name]["inserts"] > 0, name
        assert stats[name]["probes"] > 0, name
