"""Experiment E16: demand-driven workloads (the paper's future work).

Measures, on a workload analogue:

* the cost of one demand query vs the exhaustive analysis;
* the fraction of the program a query touches (locality);
* the paper's anticipated synergy — under the transformer abstraction a
  demanded method's local facts stay compact even though the demand
  slice pulls in its whole caller cone.
"""

import pytest

from repro.core.analysis import analyze
from repro.core.config import config_by_name
from repro.core.demand import DemandPointerAnalysis


def _query_var(facts):
    # A utility formal: deep in the program, many callers.
    return sorted(
        y for (y, p, _o) in facts.formal if p.endswith("Util.process")
    )[0]


def test_time_exhaustive_reference(benchmark, workload_facts):
    facts = workload_facts["xalan"]
    config = config_by_name("2-object+H", "transformer-string")
    benchmark.pedantic(
        lambda: analyze(facts, config), rounds=3, iterations=1,
        warmup_rounds=1,
    )


@pytest.mark.parametrize("abstraction", ["context-string", "transformer-string"])
def test_time_single_demand_query(benchmark, workload_facts, abstraction):
    facts = workload_facts["xalan"]
    var = _query_var(facts)
    config = config_by_name("2-object+H", abstraction)

    def query_once():
        demand = DemandPointerAnalysis(facts, config)
        return demand.points_to(var), demand

    (answer, demand) = benchmark.pedantic(
        query_once, rounds=3, iterations=1, warmup_rounds=1
    )
    exhaustive = analyze(facts, config)
    assert answer == exhaustive.points_to(var)
    sliced, total = demand.coverage()
    print(
        f"\n{abstraction}: query touched {sliced}/{total} input facts"
        f" ({sliced / total * 100:.0f}%)"
    )
    assert sliced < total


def test_demand_synergy_with_transformer_strings(benchmark, workload_facts):
    """The demanded method's own facts do not multiply with the size of
    the demanded caller cone under transformer strings — they do under
    context strings (the paper's closing observation)."""
    facts = workload_facts["xalan"]
    var = _query_var(facts)

    def measure():
        out = {}
        for abstraction in ("context-string", "transformer-string"):
            demand = DemandPointerAnalysis(
                facts, config_by_name("2-object+H", abstraction)
            )
            out[abstraction] = len(demand.points_to_with_contexts(var))
        return out

    counts = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\ncontext facts for {var}: {counts}")
    assert counts["transformer-string"] <= counts["context-string"]
