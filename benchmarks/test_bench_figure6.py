"""Experiment E3: regenerate paper Figure 6.

Two kinds of measurements:

* ``test_figure6_table`` runs the full benchmark × configuration matrix
  through the harness, prints the paper-layout table, writes it to
  ``benchmarks/results/figure6.txt``, and asserts the headline *shape*
  claims (transformer strings reduce total fact counts everywhere, most
  at 2-object+H; context-insensitive precision is unchanged outside
  type sensitivity);
* ``test_time_*`` benchmarks time individual analysis runs under
  pytest-benchmark for the five paper configurations on a
  representative benchmark each for both abstractions.
"""

import os

import pytest

from repro.bench.harness import run_figure6
from repro.bench.report import format_figure6
from repro.core.analysis import analyze
from repro.core.config import PAPER_CONFIGURATIONS, config_by_name
from benchmarks.conftest import SCALE


def test_figure6_table(benchmark, workload_facts, results_dir):
    table = benchmark.pedantic(
        lambda: run_figure6(scale=SCALE, repetitions=2),
        rounds=1, iterations=1,
    )
    text = format_figure6(
        table, title=f"Figure 6 (synthetic DaCapo analogues, scale={SCALE})"
    )
    print("\n" + text)
    with open(os.path.join(results_dir, "figure6.txt"), "w") as handle:
        handle.write(text + "\n")

    # Shape claims from the paper's evaluation:
    # 1. Transformer strings never increase the total fact count in the
    #    headline +H configurations, and reduce it on (geometric) mean
    #    in every configuration.
    for configuration in PAPER_CONFIGURATIONS:
        assert table.geomean_total_decrease(configuration) > 0, configuration
    for cell in table.cells:
        if cell.configuration in ("1-call+H", "2-object+H"):
            assert cell.total_decrease() > 0, (
                cell.benchmark, cell.configuration,
            )
    # 2. The reduction is most pronounced at 2-object+H among the
    #    object-sensitive configurations (paper Section 9 discussion).
    assert table.geomean_total_decrease(
        "2-object+H"
    ) > table.geomean_total_decrease("1-object")
    # 3. No context-insensitive precision change outside type sensitivity.
    for cell in table.cells:
        if not cell.configuration.startswith("2-type"):
            for relation in ("pts", "hpts", "call"):
                assert cell.ci_increase(relation) == 0, (
                    cell.benchmark, cell.configuration, relation,
                )


@pytest.mark.parametrize("configuration", PAPER_CONFIGURATIONS)
@pytest.mark.parametrize("abstraction", ["context-string", "transformer-string"])
def test_time_chart(benchmark, workload_facts, configuration, abstraction):
    """Analysis time on the `chart` analogue (the paper's biggest win)."""
    facts = workload_facts["chart"]
    config = config_by_name(configuration, abstraction)
    benchmark.pedantic(
        lambda: analyze(facts, config), rounds=3, iterations=1,
        warmup_rounds=1,
    )


@pytest.mark.parametrize("name", ["antlr", "bloat", "xalan"])
@pytest.mark.parametrize("abstraction", ["context-string", "transformer-string"])
def test_time_2objH(benchmark, workload_facts, name, abstraction):
    """The paper's headline configuration across three more analogues."""
    facts = workload_facts[name]
    config = config_by_name("2-object+H", abstraction)
    benchmark.pedantic(
        lambda: analyze(facts, config), rounds=3, iterations=1,
        warmup_rounds=1,
    )


def test_figure6_on_datalog_engine(benchmark, results_dir):
    """Figure 6 re-measured on the compiled Datalog back-end — the
    setup closest to the paper's own (front-end emits Datalog; a
    compiled engine evaluates it).  Times favour transformer strings in
    both +H configurations, matching the paper's direction."""
    table = benchmark.pedantic(
        lambda: run_figure6(
            benchmarks=("luindex", "chart", "xalan"),
            configurations=("1-call+H", "2-object+H"),
            scale=SCALE, repetitions=2, engine="datalog",
        ),
        rounds=1, iterations=1,
    )
    text = format_figure6(
        table,
        title=f"Figure 6 on the compiled Datalog engine (scale={SCALE})",
    )
    print("\n" + text)
    with open(os.path.join(results_dir, "figure6_datalog.txt"), "w") as f:
        f.write(text + "\n")
    for configuration in ("1-call+H", "2-object+H"):
        assert table.geomean_total_decrease(configuration) > 0.3
        assert table.geomean_time_decrease(configuration) > 0
