"""Tests for the Doop-style facts directory reader/writer."""

import os

import pytest

from repro.frontend.doopfacts import (
    DoopFactsError,
    facts_equal,
    read_facts,
    write_facts,
)
from repro.frontend.factgen import FactSet, facts_from_source
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5, FIGURE_7


@pytest.mark.parametrize("source", [FIGURE_1, FIGURE_5, FIGURE_7])
def test_roundtrip_paper_programs(tmp_path, source):
    facts = facts_from_source(source)
    write_facts(facts, str(tmp_path / "facts"))
    loaded = read_facts(str(tmp_path / "facts"))
    assert facts_equal(facts, loaded)


def test_files_are_sorted_and_tab_separated(tmp_path):
    facts = facts_from_source(FIGURE_1)
    write_facts(facts, str(tmp_path))
    with open(tmp_path / "AssignHeapAllocation.facts") as handle:
        lines = handle.read().splitlines()
    assert lines == sorted(lines)
    assert all(line.count("\t") == 2 for line in lines)


def test_param_index_order_follows_doop(tmp_path):
    facts = facts_from_source(FIGURE_1)
    write_facts(facts, str(tmp_path))
    with open(tmp_path / "ActualParam.facts") as handle:
        first = handle.readline().rstrip("\n").split("\t")
    # Doop convention: index, invocation, variable.
    assert first[0].isdigit()


def test_missing_files_read_as_empty(tmp_path):
    os.makedirs(tmp_path / "sparse", exist_ok=True)
    facts = read_facts(str(tmp_path / "sparse"))
    assert facts.main_method is None
    assert not facts.assign


def test_not_a_directory(tmp_path):
    with pytest.raises(DoopFactsError, match="not a directory"):
        read_facts(str(tmp_path / "nope"))


def test_bad_arity_rejected(tmp_path):
    os.makedirs(tmp_path / "bad", exist_ok=True)
    with open(tmp_path / "bad" / "AssignLocal.facts", "w") as handle:
        handle.write("only-one-column\n")
    with pytest.raises(DoopFactsError, match="columns"):
        read_facts(str(tmp_path / "bad"))


def test_bad_param_index_rejected(tmp_path):
    os.makedirs(tmp_path / "bad", exist_ok=True)
    with open(tmp_path / "bad" / "ActualParam.facts", "w") as handle:
        handle.write("zero\tc1\tx\n")
    with pytest.raises(DoopFactsError, match="not an integer"):
        read_facts(str(tmp_path / "bad"))


def test_multiple_mains_rejected(tmp_path):
    os.makedirs(tmp_path / "bad", exist_ok=True)
    with open(tmp_path / "bad" / "MainMethod.facts", "w") as handle:
        handle.write("A.main\nB.main\n")
    with pytest.raises(DoopFactsError, match="more than one"):
        read_facts(str(tmp_path / "bad"))


def test_tab_in_value_rejected(tmp_path):
    facts = FactSet()
    facts.assign.add(("a\tb", "c"))
    with pytest.raises(DoopFactsError, match="tab"):
        write_facts(facts, str(tmp_path / "out"))


def test_blank_lines_skipped(tmp_path):
    os.makedirs(tmp_path / "d", exist_ok=True)
    with open(tmp_path / "d" / "AssignLocal.facts", "w") as handle:
        handle.write("a\tb\n\nc\td\n")
    facts = read_facts(str(tmp_path / "d"))
    assert facts.assign == {("a", "b"), ("c", "d")}
