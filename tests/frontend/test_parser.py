"""Tests for the Java-subset parser, including the paper's figures."""

import pytest

from repro.frontend import ir
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5, FIGURE_7
from repro.frontend.parser import ParseError, parse_program


def body_of(program, cls, signature):
    return program.classes[cls].methods[signature].body


class TestClassStructure:
    def test_single_class(self):
        p = parse_program("class A { }")
        assert set(p.classes) == {"A"}
        assert p.classes["A"].superclass is None

    def test_extends(self):
        p = parse_program("class A { } class B extends A { }")
        assert p.classes["B"].superclass == "A"

    def test_fields(self):
        p = parse_program("class A { Object f; A next; }")
        assert p.classes["A"].fields == ["f", "next"]

    def test_duplicate_class_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_program("class A { } class A { }")

    def test_unknown_superclass_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            parse_program("class A extends Nope { }")

    def test_main_detected(self):
        p = parse_program(
            "class A { public static void main(String[] args) { } }"
        )
        assert p.main_class == "A"
        assert p.main_method.qualified_name == "A.main"

    def test_methods_registered_by_signature(self):
        p = parse_program("class A { void m() { } void m(Object x) { } }")
        assert set(p.classes["A"].methods) == {"m/0", "m/1"}

    def test_static_modifier(self):
        p = parse_program("class A { static void s() { } void i() { } }")
        assert p.classes["A"].methods["s/0"].is_static
        assert not p.classes["A"].methods["i/0"].is_static


class TestStatements:
    def test_local_assign(self):
        p = parse_program("class A { void m(Object y) { Object x = y; } }")
        assert body_of(p, "A", "m/1") == [ir.Assign("A.m/x", "A.m/y")]

    def test_assignment_between_locals(self):
        p = parse_program(
            "class A { void m(Object y) { Object x; x = y; } }"
        )
        assert body_of(p, "A", "m/1") == [ir.Assign("A.m/x", "A.m/y")]

    def test_new_with_label(self):
        p = parse_program(
            "class A { void m() { Object x = new A(); // h1\n } }"
        )
        assert body_of(p, "A", "m/0") == [ir.New("A.m/x", "A", "h1")]

    def test_new_without_label_autogenerates(self):
        p = parse_program("class A { void m() { Object x = new A(); } }")
        (stmt,) = body_of(p, "A", "m/0")
        assert isinstance(stmt, ir.New)
        assert stmt.label == "A.m/new$1"

    def test_field_load(self):
        p = parse_program(
            "class A { Object f; void m(A y) { Object z = y.f; } }"
        )
        assert body_of(p, "A", "m/1") == [ir.Load("A.m/z", "A.m/y", "f")]

    def test_field_store(self):
        p = parse_program(
            "class A { Object f; void m(A y, Object v) { y.f = v; } }"
        )
        assert body_of(p, "A", "m/2") == [ir.Store("A.m/y", "f", "A.m/v")]

    def test_this_field_store_explicit(self):
        p = parse_program(
            "class A { Object f; void m(Object v) { this.f = v; } }"
        )
        assert body_of(p, "A", "m/1") == [ir.Store("A.m/this", "f", "A.m/v")]

    def test_this_field_store_implicit(self):
        p = parse_program(
            "class A { Object f; void m(Object v) { f = v; } }"
        )
        assert body_of(p, "A", "m/1") == [ir.Store("A.m/this", "f", "A.m/v")]

    def test_this_field_load_implicit(self):
        p = parse_program(
            "class A { Object f; void m() { Object v; v = f; } }"
        )
        assert body_of(p, "A", "m/0") == [ir.Load("A.m/v", "A.m/this", "f")]

    def test_return_variable(self):
        p = parse_program("class A { Object m(Object p) { return p; } }")
        assert body_of(p, "A", "m/1") == [ir.Return("A.m/p")]

    def test_return_new_desugars(self):
        p = parse_program(
            "class A { Object m() { return new A(); // m1\n } }"
        )
        assert body_of(p, "A", "m/0") == [
            ir.New("A.m/$t1", "A", "m1"),
            ir.Return("A.m/$t1"),
        ]

    def test_return_void(self):
        p = parse_program("class A { void m() { return; } }")
        assert body_of(p, "A", "m/0") == []

    def test_null_assignment_produces_nothing(self):
        p = parse_program("class A { void m() { Object x = null; } }")
        assert body_of(p, "A", "m/0") == []

    def test_if_flattens_both_branches(self):
        p = parse_program(
            """
            class A { void m(Object a, Object b) {
                Object x;
                if (a == b) { x = a; } else { x = b; }
            } }
            """
        )
        assert body_of(p, "A", "m/2") == [
            ir.Assign("A.m/x", "A.m/a"),
            ir.Assign("A.m/x", "A.m/b"),
        ]

    def test_ellipsis_condition(self):
        p = parse_program(
            "class A { void m(Object a) { Object x; if (...) { x = a; } } }"
        )
        assert body_of(p, "A", "m/1") == [ir.Assign("A.m/x", "A.m/a")]

    def test_while_flattens(self):
        p = parse_program(
            "class A { void m(Object a) { Object x; while (a != null) { x = a; } } }"
        )
        assert body_of(p, "A", "m/1") == [ir.Assign("A.m/x", "A.m/a")]

    def test_nested_blocks(self):
        p = parse_program(
            "class A { void m(Object a) { { Object x = a; } } }"
        )
        assert body_of(p, "A", "m/1") == [ir.Assign("A.m/x", "A.m/a")]


class TestCalls:
    def test_virtual_call_with_result(self):
        p = parse_program(
            "class A { Object id(Object p) { return p; }"
            " void m(A r, Object x) { Object y = r.id(x); // c9\n } }"
        )
        assert ir.VirtualCall(
            "A.m/y", "A.m/r", "id", ("A.m/x",), "c9"
        ) in body_of(p, "A", "m/2")

    def test_bare_virtual_call(self):
        p = parse_program(
            "class A { void go() { } void m(A r) { r.go(); // c1\n } }"
        )
        assert body_of(p, "A", "m/1") == [
            ir.VirtualCall(None, "A.m/r", "go", (), "c1")
        ]

    def test_static_call_through_class_name(self):
        p = parse_program(
            "class A { static Object make() { return null; }"
            " void m() { Object x = A.make(); // s1\n } }"
        )
        assert body_of(p, "A", "m/0") == [
            ir.StaticCall("A.m/x", "A", "make", (), "s1")
        ]

    def test_unqualified_static_call(self):
        p = parse_program(
            "class A { static Object make() { return null; }"
            " static void m() { Object x = make(); // s2\n } }"
        )
        assert body_of(p, "A", "m/0") == [
            ir.StaticCall("A.m/x", "A", "make", (), "s2")
        ]

    def test_unqualified_instance_call_is_virtual_on_this(self):
        p = parse_program(
            "class A { Object id(Object p) { return p; }"
            " Object m(Object q) { Object t = id(q); // c1\n return t; } }"
        )
        assert ir.VirtualCall(
            "A.m/t", "A.m/this", "id", ("A.m/q",), "c1"
        ) in body_of(p, "A", "m/1")

    def test_call_argument_desugars_expression(self):
        p = parse_program(
            "class A { void go(Object o) { }"
            " void m(A r) { r.go(new A()); // c1\n } }"
        )
        body = body_of(p, "A", "m/1")
        assert isinstance(body[0], ir.New)
        assert body[1] == ir.VirtualCall(
            None, "A.m/r", "go", ("A.m/$t1",), "c1"
        )

    def test_unqualified_unknown_in_static_context_rejected(self):
        with pytest.raises(ParseError):
            parse_program("class A { static void m() { nope(); } }")

    def test_this_in_static_context_rejected(self):
        with pytest.raises(ParseError):
            parse_program("class A { static void m() { Object x = this; } }")

    def test_constructor_arguments_rejected(self):
        with pytest.raises(ParseError):
            parse_program("class A { void m(Object v) { Object x = new A(v); } }")


class TestPaperFigures:
    def test_figure1_parses(self):
        p = parse_program(FIGURE_1)
        assert p.main_class == "T"
        assert set(p.classes["T"].methods) == {
            "id/1", "id2/1", "m/0", "main/1",
        }

    def test_figure1_main_site_labels(self):
        p = parse_program(FIGURE_1)
        labels = {
            s.label
            for s in p.classes["T"].methods["main/1"].body
            if isinstance(s, (ir.New, ir.VirtualCall, ir.StaticCall))
        }
        assert labels == {"h1", "h2", "h3", "h4", "h5", "c2", "c3", "c4",
                          "c5", "c6", "c7"}

    def test_figure1_id2_calls_id_on_this(self):
        p = parse_program(FIGURE_1)
        body = p.classes["T"].methods["id2/1"].body
        assert ir.VirtualCall(
            "T.id2/t", "T.id2/this", "id", ("T.id2/q",), "c1"
        ) in body

    def test_figure5_parses_with_static_calls(self):
        p = parse_program(FIGURE_5)
        body = p.classes["T"].methods["main/1"].body
        assert ir.StaticCall("T.main/x", "T", "m", (), "m1") in body
        assert ir.StaticCall("T.main/y", "T", "m", (), "m2") in body

    def test_figure7_parses(self):
        p = parse_program(FIGURE_7)
        body = p.classes["T"].methods["m/0"].body
        assert ir.New("T.m/v", "Object", "h1") in body
        assert ir.Store("T.m/this", "f", "T.m/v") in body
        assert ir.Load("T.m/v", "T.m/this", "f") in body


class TestHierarchyQueries:
    def test_superclass_chain(self):
        p = parse_program(
            "class A { } class B extends A { } class C extends B { }"
        )
        assert p.superclass_chain("C") == ["C", "B", "A"]

    def test_resolve_method_inherited(self):
        p = parse_program(
            "class A { void m() { } } class B extends A { }"
        )
        assert p.resolve_method("B", "m/0").qualified_name == "A.m"

    def test_resolve_method_overridden(self):
        p = parse_program(
            "class A { void m() { } } class B extends A { void m() { } }"
        )
        assert p.resolve_method("B", "m/0").qualified_name == "B.m"

    def test_resolve_field_inherited(self):
        p = parse_program(
            "class A { Object f; } class B extends A { }"
        )
        assert p.resolve_field("B", "f") == "A"

    def test_subclasses_of(self):
        p = parse_program(
            "class A { } class B extends A { } class C { }"
        )
        assert sorted(p.subclasses_of("A")) == ["A", "B"]

    def test_inheritance_cycle_detected(self):
        p = ir.Program()
        p.add_class(ir.ClassDecl("A", "B"))
        p.add_class(ir.ClassDecl("B", "A"))
        with pytest.raises(ValueError, match="cycle"):
            p.superclass_chain("A")
