"""Tests for the Java-subset lexer."""

import pytest

from repro.frontend.lexer import LexError, Token, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "EOF"]


class TestBasicTokens:
    def test_identifiers_and_keywords(self):
        assert kinds("class Foo extends Bar") == [
            ("KEYWORD", "class"),
            ("ID", "Foo"),
            ("KEYWORD", "extends"),
            ("ID", "Bar"),
        ]

    def test_punctuation(self):
        assert kinds("{ } ( ) ; , . =") == [
            ("PUNCT", p) for p in ["{", "}", "(", ")", ";", ",", ".", "="]
        ]

    def test_array_brackets(self):
        assert kinds("String[] args")[1:3] == [("PUNCT", "["), ("PUNCT", "]")]

    def test_ellipsis(self):
        assert ("PUNCT", "...") in kinds("if (...) {}")

    def test_numbers(self):
        assert kinds("42")[0] == ("NUMBER", "42")

    def test_strings(self):
        assert kinds('"hi there"')[0] == ("STRING", '"hi there"')

    def test_string_with_escape(self):
        assert kinds(r'"a\"b"')[0] == ("STRING", r'"a\"b"')

    def test_underscored_identifier(self):
        assert kinds("_foo x_1") == [("ID", "_foo"), ("ID", "x_1")]

    def test_eof_always_last(self):
        assert tokenize("x")[-1].kind == "EOF"

    def test_empty_source(self):
        assert tokenize("")[0].kind == "EOF"


class TestComments:
    def test_line_comment_kept(self):
        tokens = tokenize("x = y; // h1\n")
        comments = [t for t in tokens if t.kind == "COMMENT"]
        assert len(comments) == 1
        assert comments[0].text == "h1"

    def test_comment_line_number(self):
        tokens = tokenize("a;\nb; // lab\n")
        comment = next(t for t in tokens if t.kind == "COMMENT")
        assert comment.line == 2

    def test_comment_at_eof_without_newline(self):
        tokens = tokenize("x; // tail")
        assert any(t.kind == "COMMENT" and t.text == "tail" for t in tokens)

    def test_block_comment_dropped(self):
        assert kinds("a /* ignore me */ b") == [("ID", "a"), ("ID", "b")]

    def test_multiline_block_comment(self):
        tokens = tokenize("a /* one\ntwo */ b")
        b = [t for t in tokens if t.kind == "ID"][1]
        assert b.line == 2

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* nope")


class TestPositions:
    def test_line_tracking(self):
        tokens = tokenize("a\nb\n c")
        a, b, c = [t for t in tokens if t.kind == "ID"]
        assert (a.line, b.line, c.line) == (1, 2, 3)
        assert c.column == 2

    def test_unexpected_character(self):
        with pytest.raises(LexError, match="line 1"):
            tokenize("a @ b")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')


class TestOperatorsInConditions:
    def test_comparison_operators_lex(self):
        assert kinds("a == b != c") == [
            ("ID", "a"), ("PUNCT", "=="), ("ID", "b"),
            ("PUNCT", "!="), ("ID", "c"),
        ]

    def test_boolean_operators(self):
        assert ("PUNCT", "&&") in kinds("a && b || !c")
        assert ("PUNCT", "||") in kinds("a && b || !c")
        assert ("PUNCT", "!") in kinds("a && b || !c")
