"""Error-path and corner-case coverage for the Java-subset parser."""

import pytest

from repro.frontend import ir
from repro.frontend.parser import ParseError, parse_program


def body_of(program, cls, signature):
    return program.classes[cls].methods[signature].body


class TestMalformedInput:
    @pytest.mark.parametrize(
        "source,pattern",
        [
            ("class { }", "expected"),
            ("class A extends { }", "expected"),
            ("class A { void m( { } }", "expected"),
            ("class A { void m() { Object x = ; } }", "expected"),
            ("class A { void m() { x 3; } }", "expected"),
            ("class A { void m() { return }", "expected"),
            ("class A { void m() { if x { } } }", "expected"),
            ("class A { Object f = null; }", "initializers"),
            ("class A { void m(Object v) { Object x = new A(v); } }",
             "constructor"),
            ("class A { void m() { Object x = this; } "
             "static void s() { } }", None),
        ],
    )
    def test_rejected(self, source, pattern):
        if pattern is None:
            parse_program(source)  # static/instance mix itself is fine
            return
        with pytest.raises(ParseError, match=pattern):
            parse_program(source)

    def test_unterminated_condition(self):
        with pytest.raises(ParseError, match="unterminated"):
            parse_program("class A { void m() { if ( { } } }")

    def test_call_with_null_argument_rejected(self):
        with pytest.raises(ParseError, match="argument"):
            parse_program(
                "class A { void go(Object o) { } "
                "void m(A r) { r.go(null); } }"
            )


class TestCornerCases:
    def test_empty_class_body(self):
        assert parse_program("class A { }").classes["A"].methods == {}

    def test_deeply_nested_conditions_skipped(self):
        p = parse_program(
            "class A { void m(Object a) { Object x;"
            " if (((a == a) && (a != a))) { x = a; } } }"
        )
        assert body_of(p, "A", "m/1") == [ir.Assign("A.m/x", "A.m/a")]

    def test_chained_method_result_requires_temp(self):
        # a call used as a call argument desugars through a temp.
        p = parse_program(
            "class A { Object id(Object p) { return p; }"
            " void m(A r, Object v) { Object y = r.id(r.id(v)); } }"
        )
        body = body_of(p, "A", "m/2")
        inner = [s for s in body if isinstance(s, ir.VirtualCall)]
        assert len(inner) == 2
        assert inner[0].dst == inner[1].args[0]

    def test_boolean_and_numeric_rhs_ignored(self):
        p = parse_program(
            "class A { void m() { Object x = true; Object y = 42;"
            ' Object z = "str"; } }'
        )
        assert body_of(p, "A", "m/0") == []

    def test_while_with_comparison(self):
        p = parse_program(
            "class A { void m(Object a) { Object x;"
            " while (x <= a) { x = a; } } }"
        )
        assert ir.Assign("A.m/x", "A.m/a") in body_of(p, "A", "m/1")

    def test_array_type_parameters(self):
        p = parse_program("class A { void m(String[] args, int[][] grid) { } }")
        assert "m/2" in p.classes["A"].methods

    def test_label_comment_with_extra_words(self):
        p = parse_program(
            "class A { void m() { Object x = new A(); // h1 the widget\n } }"
        )
        (stmt,) = body_of(p, "A", "m/0")
        assert stmt.label == "h1"

    def test_two_classes_same_method_names(self):
        p = parse_program(
            "class A { Object id(Object p) { return p; } } "
            "class B { Object id(Object p) { return p; } }"
        )
        assert p.classes["A"].methods["id/1"].qualified_name == "A.id"
        assert p.classes["B"].methods["id/1"].qualified_name == "B.id"

    def test_this_passed_as_argument(self):
        p = parse_program(
            "class A { void go(Object o) { } "
            "void m() { go(this); // c1\n } }"
        )
        body = body_of(p, "A", "m/0")
        assert ir.VirtualCall(
            None, "A.m/this", "go", ("A.m/this",), "c1"
        ) in body

    def test_return_this(self):
        p = parse_program("class A { A self() { return this; } }")
        assert body_of(p, "A", "self/0") == [ir.Return("A.self/this")]

    def test_modifier_soup_accepted(self):
        p = parse_program(
            "public final class A { private static final Object mk() "
            "{ return null; } }"
        )
        assert p.classes["A"].methods["mk/0"].is_static
