"""Frontend tests for the paper's elided extensions: static fields and
exceptions (throw / try / catch)."""

import pytest

from repro.frontend import ir
from repro.frontend.factgen import FactGenError, facts_from_source
from repro.frontend.parser import ParseError, parse_program


def body_of(program, cls, signature):
    return program.classes[cls].methods[signature].body


class TestStaticFieldParsing:
    def test_static_field_declaration(self):
        p = parse_program("class A { static Object cache; Object f; }")
        assert p.classes["A"].static_fields == ["cache"]
        assert p.classes["A"].fields == ["f"]

    def test_static_store(self):
        p = parse_program(
            "class A { static Object cache; "
            "static void m(Object v) { A.cache = v; } }"
        )
        assert body_of(p, "A", "m/1") == [
            ir.StaticStore("A", "cache", "A.m/v")
        ]

    def test_static_load(self):
        p = parse_program(
            "class A { static Object cache; "
            "static void m() { Object x = A.cache; } }"
        )
        assert body_of(p, "A", "m/0") == [
            ir.StaticLoad("A.m/x", "A", "cache")
        ]

    def test_forward_class_reference(self):
        # B is declared after A but A.m accesses B.shared.
        p = parse_program(
            "class A { static void m(Object v) { B.shared = v; } } "
            "class B { static Object shared; }"
        )
        assert body_of(p, "A", "m/1") == [
            ir.StaticStore("B", "shared", "A.m/v")
        ]

    def test_local_shadows_class_name(self):
        # A local named like a class is an instance-field store.
        p = parse_program(
            "class B { Object f; } "
            "class A { static void m(B B, Object v) { B.f = v; } }"
        )
        assert body_of(p, "A", "m/2") == [ir.Store("A.m/B", "f", "A.m/v")]

    def test_static_load_in_rhs_of_declaration(self):
        p = parse_program(
            "class A { static Object cache; "
            "static void m() { Object x; x = A.cache; } }"
        )
        assert body_of(p, "A", "m/0") == [
            ir.StaticLoad("A.m/x", "A", "cache")
        ]


class TestExceptionParsing:
    def test_throw_variable(self):
        p = parse_program(
            "class A { static void m(Object e) { throw e; } }"
        )
        assert body_of(p, "A", "m/1") == [ir.Throw("A.m/e")]

    def test_throw_new_desugars(self):
        p = parse_program(
            "class Exc { } class A { static void m() { throw new Exc(); // he\n } }"
        )
        assert body_of(p, "A", "m/0") == [
            ir.New("A.m/$t1", "Exc", "he"),
            ir.Throw("A.m/$t1"),
        ]

    def test_try_catch_flattens_and_binds(self):
        p = parse_program(
            """
            class A { static void m(Object v) {
                Object x;
                try { x = v; } catch (Exception e) { Object y = e; }
            } }
            """
        )
        method = p.classes["A"].methods["m/1"]
        assert ir.Assign("A.m/x", "A.m/v") in method.body
        assert ir.Assign("A.m/y", "A.m/e") in method.body
        assert method.catch_vars() == ["A.m/e"]

    def test_multiple_catches(self):
        p = parse_program(
            """
            class A { static void m() {
                try { } catch (E1 a) { } catch (E2 b) { }
            } }
            """
        )
        assert p.classes["A"].methods["m/0"].catch_vars() == [
            "A.m/a", "A.m/b",
        ]

    def test_try_finally_without_catch(self):
        p = parse_program(
            "class A { static void m(Object v) "
            "{ Object x; try { x = v; } finally { x = v; } } }"
        )
        assert body_of(p, "A", "m/1").count(ir.Assign("A.m/x", "A.m/v")) == 2

    def test_bare_try_rejected(self):
        with pytest.raises(ParseError, match="catch or finally"):
            parse_program("class A { static void m() { try { } } }")


class TestExtensionFacts:
    SOURCE = """
    class Exc { }
    class Base { static Object slot; }
    class Sub extends Base { }
    class A {
        static void m(Object v) {
            Sub.slot = v;
            Object r = Base.slot;
            try { throw v; } catch (Exc e) { Object c = e; }
        }
        public static void main(String[] args) { }
    }
    """

    def test_static_field_resolved_to_declaring_class(self):
        facts = facts_from_source(self.SOURCE)
        assert ("A.m/v", "Base.slot") in facts.static_store
        assert ("Base.slot", "A.m/r", "A.m") in facts.static_load

    def test_throw_and_catch_facts(self):
        facts = facts_from_source(self.SOURCE)
        assert ("A.m/v", "A.m") in facts.throw_var
        assert ("A.m/e", "A.m") in facts.catch_var

    def test_unknown_static_field_rejected(self):
        with pytest.raises(FactGenError, match="static field"):
            facts_from_source(
                "class B { } class A { static void m(Object v) "
                "{ B.nope = v; } "
                "public static void main(String[] args) { } }"
            )

    def test_counts_include_extensions(self):
        facts = facts_from_source(self.SOURCE)
        counts = facts.counts()
        assert counts["static_store"] == 1
        assert counts["static_load"] == 1
        assert counts["throw_var"] == 1
        assert counts["catch_var"] == 1


class TestDoopRoundtrip:
    def test_extension_relations_roundtrip(self, tmp_path):
        from repro.frontend.doopfacts import facts_equal, read_facts, write_facts

        facts = facts_from_source(TestExtensionFacts.SOURCE)
        write_facts(facts, str(tmp_path))
        assert facts_equal(facts, read_facts(str(tmp_path)))
        assert (tmp_path / "StoreStaticField.facts").exists()
        assert (tmp_path / "ThrowVar.facts").exists()
