"""Tests for fact generation from IR programs."""

import pytest

from repro.frontend import ir
from repro.frontend.factgen import FactGenError, facts_from_source, generate_facts
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5, FIGURE_7

MINIMAL = """
class A {
    public static void main(String[] args) {
        Object x = new A(); // h1
    }
}
"""


class TestBasicFacts:
    def test_assign_new(self):
        facts = facts_from_source(MINIMAL)
        assert ("h1", "A.main/x", "A.main") in facts.assign_new
        assert ("h1", "A") in facts.heap_type
        assert facts.class_of["h1"] == "A"

    def test_main_method(self):
        facts = facts_from_source(MINIMAL)
        assert facts.main_method == "A.main"

    def test_missing_main_rejected(self):
        with pytest.raises(FactGenError, match="entry point"):
            facts_from_source("class A { void m() { } }")

    def test_formals_and_this(self):
        facts = facts_from_source(
            "class A { void m(Object p, Object q) { } "
            "public static void main(String[] args) { } }"
        )
        assert ("A.m/p", "A.m", 0) in facts.formal
        assert ("A.m/q", "A.m", 1) in facts.formal
        assert ("A.m/this", "A.m") in facts.this_var
        # static methods have no this.
        assert not any(m == "A.main" for (_, m) in facts.this_var)

    def test_assign(self):
        facts = facts_from_source(
            "class A { void m(Object y) { Object x = y; } "
            "public static void main(String[] args) { } }"
        )
        assert ("A.m/y", "A.m/x") in facts.assign

    def test_load_store(self):
        facts = facts_from_source(
            "class A { Object f; void m(A b, Object v) "
            "{ b.f = v; Object z = b.f; } "
            "public static void main(String[] args) { } }"
        )
        assert ("A.m/v", "f", "A.m/b") in facts.store
        assert ("A.m/b", "f", "A.m/z") in facts.load

    def test_return_var(self):
        facts = facts_from_source(
            "class A { Object id(Object p) { return p; } "
            "public static void main(String[] args) { } }"
        )
        assert ("A.id/p", "A.id") in facts.return_var


class TestInvocationFacts:
    SOURCE = """
    class A {
        Object id(Object p) { return p; }
        static Object mk() { return null; }
        public static void main(String[] args) {
            A r = new A(); // h1
            Object x = new A(); // h2
            Object y = r.id(x); // c1
            Object z = A.mk(); // s1
        }
    }
    """

    def test_virtual_invoke(self):
        facts = facts_from_source(self.SOURCE)
        assert ("c1", "A.main/r", "id/1") in facts.virtual_invoke
        assert ("A.main/x", "c1", 0) in facts.actual
        assert ("c1", "A.main/y") in facts.assign_return
        assert facts.invocation_parent["c1"] == "A.main"

    def test_static_invoke(self):
        facts = facts_from_source(self.SOURCE)
        assert ("s1", "A.mk", "A.main") in facts.static_invoke
        assert ("s1", "A.main/z") in facts.assign_return

    def test_static_call_resolves_through_hierarchy(self):
        facts = facts_from_source(
            "class A { static Object mk() { return null; } } "
            "class B extends A { } "
            "class C { public static void main(String[] args) "
            "{ Object x = B.mk(); // s1\n } }"
        )
        assert ("s1", "A.mk", "C.main") in facts.static_invoke

    def test_unresolvable_static_call_rejected(self):
        program = ir.Program()
        cls = program.add_class(ir.ClassDecl("A"))
        main = cls.add_method(
            ir.Method("main", "A", ("A.main/args",), is_static=True)
        )
        main.body.append(ir.StaticCall(None, "A", "nope", (), "s1"))
        with pytest.raises(FactGenError, match="cannot resolve"):
            generate_facts(program)

    def test_duplicate_labels_rejected(self):
        program = ir.Program()
        cls = program.add_class(ir.ClassDecl("A"))
        main = cls.add_method(
            ir.Method("main", "A", ("A.main/args",), is_static=True)
        )
        main.body.append(ir.New("A.main/x", "A", "h1"))
        main.body.append(ir.New("A.main/y", "A", "h1"))
        with pytest.raises(FactGenError, match="h1"):
            generate_facts(program)


class TestImplements:
    def test_direct_implementation(self):
        facts = facts_from_source(
            "class A { void m() { } "
            "public static void main(String[] args) { } }"
        )
        assert ("A.m", "A", "m/0") in facts.implements

    def test_inherited_implementation(self):
        facts = facts_from_source(
            "class A { void m() { } } class B extends A { } "
            "class C { public static void main(String[] args) { } }"
        )
        assert ("A.m", "B", "m/0") in facts.implements
        assert ("A.m", "A", "m/0") in facts.implements

    def test_override_shadows(self):
        facts = facts_from_source(
            "class A { void m() { } } "
            "class B extends A { void m() { } } "
            "class C { public static void main(String[] args) { } }"
        )
        assert ("B.m", "B", "m/0") in facts.implements
        assert ("A.m", "B", "m/0") not in facts.implements

    def test_static_methods_not_in_implements(self):
        facts = facts_from_source(
            "class A { static void s() { } "
            "public static void main(String[] args) { } }"
        )
        assert not any(sig == "s/0" for (_, _, sig) in facts.implements)


class TestPaperPrograms:
    def test_figure1_fact_counts(self):
        facts = facts_from_source(FIGURE_1)
        counts = facts.counts()
        assert counts["assign_new"] == 6  # h1-h5 and m1
        assert counts["virtual_invoke"] == 7  # c1-c7
        assert counts["static_invoke"] == 0
        assert counts["store"] == 1
        assert counts["load"] == 1

    def test_figure5_fact_counts(self):
        facts = facts_from_source(FIGURE_5)
        counts = facts.counts()
        assert counts["assign_new"] == 1
        assert counts["static_invoke"] == 3  # id1, m1, m2
        assert counts["virtual_invoke"] == 0

    def test_figure7_fact_counts(self):
        facts = facts_from_source(FIGURE_7)
        counts = facts.counts()
        assert counts["assign_new"] == 2
        assert counts["virtual_invoke"] == 1
        assert counts["store"] == 1
        assert counts["load"] == 1

    def test_counts_cover_all_relations(self):
        facts = facts_from_source(MINIMAL)
        assert set(facts.counts()) == set(facts.relation_names())
