"""Round-trip tests for the IR pretty-printer.

Printing an IR program and re-parsing it must yield a program whose
analysis behaviour is identical: equal context-insensitive results under
several configurations (variable names are re-qualified by the parser,
so raw fact equality is checked modulo that renaming via analysis
results on label-stable queries).
"""

import pytest

from repro import analyze, config_by_name
from repro.bench.fuzz import random_program
from repro.bench.workloads import DACAPO_NAMES, dacapo_program
from repro.frontend.factgen import generate_facts
from repro.frontend.parser import parse_program
from repro.frontend.printer import format_program


def roundtrip_equal(program, config_names=("insensitive", "1-call+H",
                                           "2-object+H")):
    source = format_program(program)
    reparsed = parse_program(source)
    original_facts = generate_facts(program)
    reparsed_facts = generate_facts(reparsed)
    for config_name in config_names:
        config = config_by_name(config_name)
        original = analyze(original_facts, config)
        result = analyze(reparsed_facts, config)
        # Heap labels survive the round trip verbatim, so the points-to
        # relation projected onto heap sites must match per variable tail.
        def by_tail(res):
            out = {}
            for (var, heap) in res.pts_ci():
                out.setdefault(var.rsplit("/", 1)[-1].replace("$", "t_"),
                               set()).add(heap)
            return out

        assert by_tail(original) == by_tail(result), config_name
        assert original.call_graph() == result.call_graph(), config_name
        assert {(f, h) for (f, h, _) in original.spts} == {
            (f, h) for (f, h, _) in result.spts
        }, config_name
    return source


class TestWorkloadRoundTrips:
    @pytest.mark.parametrize("name", DACAPO_NAMES)
    def test_dacapo_analogue(self, name):
        roundtrip_equal(dacapo_program(name))

    def test_printed_source_is_readable(self):
        source = format_program(dacapo_program("luindex"))
        assert "class luindex_Util" in source
        assert "// luindex/h1" in source
        assert "public static void main(String[] args)" in source


class TestFuzzRoundTrips:
    @pytest.mark.parametrize("seed", range(8))
    def test_fuzz_program(self, seed):
        roundtrip_equal(random_program(seed, size=3))


class TestPrinterShapes:
    def test_empty_class(self):
        from repro.frontend import ir

        program = ir.Program()
        program.add_class(ir.ClassDecl("Empty"))
        main_cls = program.add_class(ir.ClassDecl("M"))
        main_cls.add_method(
            ir.Method("main", "M", ("M.main/args",), is_static=True)
        )
        program.main_class = "M"
        source = format_program(program)
        assert "class Empty { }" in source
        parse_program(source)

    def test_static_fields_printed(self):
        from repro.frontend import ir

        program = ir.Program()
        reg = program.add_class(ir.ClassDecl("Reg"))
        reg.static_fields.append("slot")
        main_cls = program.add_class(ir.ClassDecl("M"))
        main = main_cls.add_method(
            ir.Method("main", "M", ("M.main/args",), is_static=True)
        )
        main.body.append(ir.New("M.main/v", "Reg", "hv"))
        main.body.append(ir.StaticStore("Reg", "slot", "M.main/v"))
        main.body.append(ir.StaticLoad("M.main/r", "Reg", "slot"))
        program.main_class = "M"
        source = roundtrip_equal(program)
        assert "static Object slot;" in source
        assert "Reg.slot = v;" in source

    def test_throw_and_catch_printed(self):
        from repro.frontend import ir

        program = ir.Program()
        main_cls = program.add_class(ir.ClassDecl("M"))
        main = main_cls.add_method(
            ir.Method("main", "M", ("M.main/args",), is_static=True)
        )
        main.body.append(ir.New("M.main/e", "M", "he"))
        main.body.append(ir.Throw("M.main/e"))
        main.add_catch_var("M.main/caught")
        program.main_class = "M"
        source = roundtrip_equal(program)
        assert "throw e;" in source
        assert "catch (Exception caught)" in source
