"""FactDelta: builders, inspection, application, inversion, the JSON
codec and the two diff builders."""

import pytest

from repro.core.analysis import _to_facts
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5
from repro.incremental import FactDelta, copy_facts, diff_facts, diff_programs
from repro.incremental.delta import INPUT_RELATIONS


class TestBuilders:
    def test_add_remove_chain(self):
        delta = (
            FactDelta()
            .add("assign", ("T.m/x", "T.m/y"))
            .remove("assign", ("T.m/a", "T.m/b"))
            .add("actual", ("T.m/x", "inv1", 0))
        )
        assert delta.added["assign"] == {("T.m/x", "T.m/y")}
        assert delta.removed["assign"] == {("T.m/a", "T.m/b")}
        assert delta.added["actual"] == {("T.m/x", "inv1", 0)}

    def test_rows_become_tuples(self):
        delta = FactDelta().add("assign", ["a", "b"])
        assert ("a", "b") in delta.added["assign"]

    def test_unknown_relation_rejected(self):
        with pytest.raises(ValueError, match="unknown input relation"):
            FactDelta().add("pts", ("v", "h"))
        with pytest.raises(ValueError, match="unknown input relation"):
            FactDelta().remove("nope", ("x",))

    def test_input_relations_cover_schema(self):
        assert "assign" in INPUT_RELATIONS
        assert "virtual_invoke" in INPUT_RELATIONS
        assert "pts" not in INPUT_RELATIONS


class TestInspection:
    def test_empty(self):
        assert FactDelta().is_empty()
        assert not FactDelta().add("assign", ("a", "b")).is_empty()
        aux = FactDelta()
        aux.class_of_added["h1"] = "C"
        assert not aux.is_empty()
        main = FactDelta()
        main.main_method_change = ("T.main", "U.main")
        assert not main.is_empty()

    def test_totals_and_counts(self):
        delta = (
            FactDelta()
            .add("assign", ("a", "b"))
            .add("assign", ("c", "d"))
            .remove("load", ("x", "f", "y"))
        )
        assert delta.total_added == 2
        assert delta.total_removed == 1
        assert delta.counts() == {"assign": (2, 0), "load": (0, 1)}

    def test_changed_entities(self):
        delta = (
            FactDelta()
            .add("assign", ("dst", "src"))
            .remove("virtual_invoke", ("inv1", "recv", "m"))
            .add("assign_new", ("h1", "v", "M"))
        )
        assert {"dst", "src", "recv", "v"} <= delta.changed_variables()
        assert "inv1" in delta.changed_sites()
        assert "h1" in delta.changed_heaps()

    def test_remaps_entity(self):
        assert not FactDelta().remaps_entity()
        same = FactDelta()
        same.class_of_added["h1"] = "C"
        same.class_of_removed["h1"] = "C"
        assert not same.remaps_entity()
        remap = FactDelta()
        remap.class_of_added["h1"] = "D"
        remap.class_of_removed["h1"] = "C"
        assert remap.remaps_entity()
        parent = FactDelta()
        parent.parent_added["inv1"] = "T.n"
        parent.parent_removed["inv1"] = "T.m"
        assert parent.remaps_entity()


class TestApplication:
    def test_apply_in_place_and_copy(self):
        facts = _to_facts(FIGURE_1)
        row = ("T.main/zz", "T.main/yy")
        delta = FactDelta().add("assign", row)
        patched = delta.applied_copy(facts)
        assert row in patched.assign
        assert row not in facts.assign  # the copy left the base alone
        delta.apply_to(facts)
        assert row in facts.assign

    def test_removal_of_absent_row_is_ignored(self):
        facts = _to_facts(FIGURE_1)
        before = set(facts.assign)
        FactDelta().remove("assign", ("no/such", "row/here")).apply_to(facts)
        assert facts.assign == before

    def test_inverted_round_trips(self):
        facts = _to_facts(FIGURE_5)
        # Remove a row that actually exists so the inverse restores it,
        # and add a fresh one so the inverse removes it.
        delta = FactDelta().add("assign", ("T.m/q", "T.m/r"))
        delta.remove("actual", sorted(facts.actual)[0])
        patched = delta.applied_copy(facts)
        restored = delta.inverted().applied_copy(patched)
        for name in INPUT_RELATIONS:
            assert getattr(restored, name) == getattr(facts, name), name
        assert restored.class_of == facts.class_of
        assert restored.main_method == facts.main_method

    def test_main_method_change_applies(self):
        facts = _to_facts(FIGURE_1)
        delta = FactDelta()
        delta.main_method_change = (facts.main_method, "U.main")
        delta.apply_to(facts)
        assert facts.main_method == "U.main"


class TestJsonCodec:
    def test_round_trip_preserves_int_positions(self):
        delta = (
            FactDelta()
            .add("actual", ("T.m/x", "inv1", 0))
            .remove("formal", ("T.n/p", "T.n", 1))
            .add("assign", ("a", "b"))
        )
        delta.class_of_added["h9"] = "C"
        delta.parent_removed["inv1"] = "T.m"
        delta.main_method_change = ("T.main", "T.main")
        back = FactDelta.from_json(delta.to_json())
        assert back.added == delta.added
        assert back.removed == delta.removed
        assert back.class_of_added == delta.class_of_added
        assert back.parent_removed == delta.parent_removed
        assert back.main_method_change == delta.main_method_change
        # The integer argument position survived the trip as an int.
        row = next(iter(back.added["actual"]))
        assert row[2] == 0 and isinstance(row[2], int)

    def test_wire_form_shape(self):
        payload = FactDelta().add("assign", ("a", "b")).to_json()
        assert payload["added"] == {"assign": [["a", "b"]]}
        assert payload["removed"] == {}
        assert payload["class_of"] == {"added": {}, "removed": {}}
        assert payload["invocation_parent"] == {"added": {}, "removed": {}}
        assert payload["main_method"] is None

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError, match="must be a JSON object"):
            FactDelta.from_json(["not", "a", "dict"])
        with pytest.raises(ValueError, match="'added' must be an object"):
            FactDelta.from_json({"added": []})
        with pytest.raises(ValueError, match="unknown input relation"):
            FactDelta.from_json({"added": {"pts": [["v", "h"]]}})
        with pytest.raises(ValueError, match="main_method"):
            FactDelta.from_json({"main_method": "just-a-string"})

    def test_describe(self):
        assert FactDelta().describe() == "(empty delta)"
        text = (
            FactDelta()
            .add("assign", ("a", "b"))
            .remove("assign", ("c", "d"))
            .describe()
        )
        assert "assign: +1 -1" in text


class TestDiffBuilders:
    def test_diff_facts_identity_is_empty(self):
        facts = _to_facts(FIGURE_1)
        assert diff_facts(facts, copy_facts(facts)).is_empty()

    def test_diff_facts_finds_edits(self):
        old = _to_facts(FIGURE_1)
        new = copy_facts(old)
        row = ("T.fresh/x", "T.fresh/y")
        new.assign.add(row)
        gone = sorted(old.actual)[0]
        new.actual.discard(gone)
        delta = diff_facts(old, new)
        assert delta.added == {"assign": {row}}
        assert delta.removed == {"actual": {gone}}
        assert delta.applied_copy(old).assign == new.assign

    def test_value_change_appears_on_both_sides(self):
        old = _to_facts(FIGURE_1)
        new = copy_facts(old)
        heap = sorted(old.class_of)[0]
        new.class_of[heap] = "entirely.Different"
        delta = diff_facts(old, new)
        assert delta.class_of_added[heap] == "entirely.Different"
        assert delta.class_of_removed[heap] == old.class_of[heap]
        assert delta.remaps_entity()

    def test_diff_programs_accepts_source(self):
        delta = diff_programs(FIGURE_1, FIGURE_1)
        assert delta.is_empty()
        cross = diff_programs(FIGURE_1, FIGURE_5)
        assert not cross.is_empty()
        assert diff_facts(
            _to_facts(FIGURE_1), _to_facts(FIGURE_5)
        ).counts() == cross.counts()

    def test_copy_facts_is_independent(self):
        facts = _to_facts(FIGURE_1)
        clone = copy_facts(facts)
        clone.assign.add(("only/in", "the/clone"))
        clone.class_of["hX"] = "C"
        assert ("only/in", "the/clone") not in facts.assign
        assert "hX" not in facts.class_of
