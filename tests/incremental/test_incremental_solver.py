"""IncrementalSolver: bit-identical equivalence with from-scratch
solves under random edit churn, DRed counters, and the fallback paths.

The sweep is the subsystem's acceptance bar: for the paper's example
programs under both abstractions and all three context flavours, a
random sequence of edits applied incrementally must leave every derived
relation identical to a from-scratch solve after *each* edit.
"""

import pytest

from repro.core.analysis import _to_facts
from repro.core.config import config_by_name
from repro.core.domains import make_domain
from repro.core.solver import Solver
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5
from repro.incremental import FactDelta, IncrementalSolver, copy_facts
from repro.incremental.edits import random_edits

PROGRAMS = {"figure1": FIGURE_1, "figure5": FIGURE_5}
FLAVOURS = ("1-call", "1-object", "1-type")
ABSTRACTIONS = ("transformer-string", "context-string")
DERIVED = ("pts", "hpts", "hload", "call", "reach", "spts", "texc")


def scratch_rows(facts, config):
    """Derived rows of a from-scratch solve (the ground truth)."""
    domain = make_domain(
        config.abstraction, config.flavour, config.m, config.h,
        class_of=facts.class_of_heap,
    )
    solver = Solver(
        facts, domain,
        eliminate_subsumed=config.eliminate_subsumed,
        naive_transformer_index=config.naive_transformer_index,
        track_provenance=config.track_provenance,
    )
    solver.solve()
    return {
        kind: set(getattr(solver, f"{kind}_rel")) for kind in DERIVED
    }


@pytest.mark.parametrize("abstraction", ABSTRACTIONS)
@pytest.mark.parametrize("flavour", FLAVOURS)
@pytest.mark.parametrize("program", sorted(PROGRAMS))
def test_equivalence_sweep(program, flavour, abstraction):
    """20 random edits, each bit-identical to a scratch solve."""
    base = _to_facts(PROGRAMS[program])
    config = config_by_name(flavour, abstraction)
    solver = IncrementalSolver(copy_facts(base), config)
    rolling = copy_facts(base)
    for step, (kind, delta) in enumerate(random_edits(base, 20, seed=42)):
        delta.apply_to(rolling)
        solver.apply_delta(delta)
        want = scratch_rows(copy_facts(rolling), config)
        got = solver.relation_rows()
        for relation in DERIVED:
            assert got[relation] == want[relation], (
                f"{program}/{flavour}/{abstraction} edit {step} ({kind}):"
                f" {relation} diverged"
                f" (missing {sorted(want[relation] - got[relation])[:3]},"
                f" extra {sorted(got[relation] - want[relation])[:3]})"
            )


class TestDeltaResult:
    def test_addition_reports_net_changes(self):
        facts = _to_facts(FIGURE_5)
        config = config_by_name("1-call", "transformer-string")
        solver = IncrementalSolver(facts, config)
        before = solver.relation_rows()
        result = solver.apply_delta(
            FactDelta().add("assign", ("T.m/h", "T.m/x"))
        )
        assert not result.fallback
        assert result.total_added > 0
        assert "pts" in result.changed_relations()
        after = solver.relation_rows()
        for kind in DERIVED:
            assert after[kind] - before[kind] == result.added.get(kind, set())
            assert before[kind] - after[kind] == result.removed.get(
                kind, set()
            )
        summary = result.as_dict()
        assert summary["fallback"] is False
        assert summary["changed"]["pts"]["added"] == len(result.added["pts"])

    def test_add_then_inverted_remove_round_trips(self):
        facts = _to_facts(FIGURE_5)
        config = config_by_name("1-object", "transformer-string")
        solver = IncrementalSolver(facts, config)
        baseline = solver.relation_rows()
        delta = FactDelta().add("assign", ("T.m/h", "T.m/x"))
        forward = solver.apply_delta(delta)
        backward = solver.apply_delta(delta.inverted())
        assert solver.relation_rows() == baseline
        assert forward.total_added == backward.total_removed
        assert backward.deleted == forward.total_added

    def test_removal_counts_deletions(self):
        facts = _to_facts(FIGURE_1)
        config = config_by_name("1-call", "transformer-string")
        solver = IncrementalSolver(facts, config)
        base = copy_facts(facts)
        row = sorted(facts.assign_new)[0]
        delta = FactDelta().remove("assign_new", row)
        result = solver.apply_delta(delta)
        assert not result.fallback
        assert result.deleted > 0
        assert "pts" in result.changed_relations()
        assert solver.relation_rows() == scratch_rows(
            delta.applied_copy(base), config
        )

    def test_stats_accumulate(self):
        facts = _to_facts(FIGURE_5)
        config = config_by_name("1-call", "transformer-string")
        solver = IncrementalSolver(facts, config)
        solver.apply_delta(FactDelta().add("assign", ("T.m/h", "T.m/x")))
        solver.apply_delta(FactDelta().remove("assign", ("T.m/h", "T.m/x")))
        stats = solver.stats.as_dict()
        assert stats["deltas_applied"] == 2
        assert stats["input_rows_added"] == 1
        assert stats["input_rows_removed"] == 1
        assert stats["fallback_solves"] == 0
        assert stats["delta_seconds"] > 0


class TestFallbacks:
    def test_eliminate_subsumed_always_falls_back(self):
        facts = _to_facts(FIGURE_5)
        config = config_by_name(
            "1-call", "transformer-string", eliminate_subsumed=True
        )
        solver = IncrementalSolver(facts, config)
        assert solver.always_fallback
        result = solver.apply_delta(
            FactDelta().add("assign", ("T.m/h", "T.m/x"))
        )
        assert result.fallback
        assert "eliminate_subsumed" in result.reason
        assert solver.stats.fallback_solves == 1

    def test_main_method_change_falls_back(self):
        facts = _to_facts(FIGURE_1)
        solver = IncrementalSolver(
            facts, config_by_name("1-call", "transformer-string")
        )
        delta = FactDelta()
        delta.main_method_change = (facts.main_method, facts.main_method)
        result = solver.apply_delta(delta)
        assert result.fallback
        assert "entry point" in result.reason

    def test_entity_remap_falls_back(self):
        facts = _to_facts(FIGURE_1)
        solver = IncrementalSolver(
            facts, config_by_name("1-call", "transformer-string")
        )
        heap = sorted(facts.class_of)[0]
        delta = FactDelta()
        delta.class_of_removed[heap] = facts.class_of[heap]
        delta.class_of_added[heap] = "entirely.Different"
        result = solver.apply_delta(delta)
        assert result.fallback
        assert "re-mapped" in result.reason

    def test_fallback_is_still_correct(self):
        base = _to_facts(FIGURE_5)
        config = config_by_name(
            "1-call", "transformer-string", eliminate_subsumed=True
        )
        solver = IncrementalSolver(copy_facts(base), config)
        delta = FactDelta().add("assign", ("T.m/h", "T.m/x"))
        solver.apply_delta(delta)
        assert solver.relation_rows() == scratch_rows(
            delta.applied_copy(base), config
        )
