"""Live service updates: ``AnalysisService.apply_delta`` (generation,
selective cache invalidation, the upgrade path), snapshot generation
round-trips, and the serve protocol's ``update`` op."""

import json

import pytest

from repro.core.analysis import _to_facts, analyze
from repro.core.config import config_by_name
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5
from repro.incremental import FactDelta, copy_facts
from repro.service.server import handle_request
from repro.service.service import AnalysisService, variables_of
from repro.service.snapshot import read_snapshot


CONFIG = config_by_name("1-call", "transformer-string")
#: assign rows are (src, dst): a fresh destination variable — derives
#: new pts rows without touching any program variable's answer.
EDIT = ("T.m/h", "T.m/x")
#: An edit whose destination is a *program* variable, so cached query
#: answers actually go stale.
STALE_EDIT = ("T.main/x", "T.m/r")


def _expected_pts(facts, config=CONFIG):
    result = analyze(copy_facts(facts), config)
    by_var = {}
    for (var, heap) in result.pts_ci():
        by_var.setdefault(var, set()).add(heap)
    return by_var


class TestApplyDelta:
    def test_update_parity_and_generation(self):
        facts = _to_facts(FIGURE_5)
        service = AnalysisService.from_facts(
            copy_facts(facts), CONFIG, solve=True, incremental=True
        )
        assert service.generation == 0
        delta = FactDelta().add("assign", EDIT)
        result = service.apply_delta(delta)
        assert not result.fallback
        assert service.generation == 1
        expected = _expected_pts(delta.applied_copy(facts))
        for var in variables_of(service.facts):
            assert service.points_to(var) == frozenset(
                expected.get(var, set())
            ), var

    def test_selective_cache_invalidation(self):
        facts = _to_facts(FIGURE_5)
        service = AnalysisService.from_facts(
            facts, CONFIG, solve=True, incremental=True
        )
        for var in variables_of(facts):
            service.points_to(var)
        result = service.apply_delta(FactDelta().add("assign", STALE_EDIT))
        changed = result.changed_variables() & variables_of(facts)
        unchanged = sorted(variables_of(facts) - changed)
        assert changed and unchanged  # the edit is selective
        assert service.metrics.entries_invalidated == len(changed)
        # Untouched entries keep serving from cache; touched ones were
        # evicted and recompute.
        assert service.query("points_to", var=unchanged[0]).cached
        assert not service.query("points_to", var=sorted(changed)[0]).cached

    def test_fallback_update_clears_whole_cache(self):
        facts = _to_facts(FIGURE_1)
        service = AnalysisService.from_facts(
            facts, CONFIG, solve=True, incremental=True
        )
        variables = sorted(variables_of(facts))
        for var in variables:
            service.points_to(var)
        delta = FactDelta()
        delta.main_method_change = (facts.main_method, facts.main_method)
        result = service.apply_delta(delta)
        assert result.fallback
        assert service.metrics.fallback_updates == 1
        assert not service.query("points_to", var=variables[0]).cached

    def test_plain_service_upgrades_on_first_update(self):
        facts = _to_facts(FIGURE_5)
        service = AnalysisService.from_facts(
            copy_facts(facts), CONFIG, solve=True
        )
        delta = FactDelta().add("assign", EDIT)
        result = service.apply_delta(delta)
        assert result.fallback
        assert "no incremental engine" in result.reason
        assert result.total_added > 0  # diffed against the solved rows
        assert service.generation == 1
        expected = _expected_pts(delta.applied_copy(facts))
        for var in variables_of(service.facts):
            assert service.points_to(var) == frozenset(
                expected.get(var, set())
            ), var
        # The second update goes through the engine proper.
        second = service.apply_delta(FactDelta().remove("assign", EDIT))
        assert not second.fallback
        assert service.generation == 2

    def test_stats_surface(self):
        facts = _to_facts(FIGURE_5)
        service = AnalysisService.from_facts(
            facts, CONFIG, solve=True, incremental=True
        )
        service.apply_delta(FactDelta().add("assign", EDIT))
        stats = service.stats()
        assert stats["generation"] == 1
        assert stats["updates"]["applied"] == 1
        assert stats["updates"]["fallbacks"] == 0
        assert stats["updates"]["seconds"] > 0
        assert stats["delta"]["deltas_applied"] == 1


class TestSnapshotGeneration:
    def test_generation_survives_save_and_load(self, tmp_path):
        facts = _to_facts(FIGURE_5)
        service = AnalysisService.from_facts(
            facts, CONFIG, solve=True, incremental=True
        )
        service.apply_delta(FactDelta().add("assign", EDIT))
        service.apply_delta(FactDelta().remove("assign", EDIT))
        path = str(tmp_path / "gen.snap")
        service.save_snapshot(path)
        snapshot = read_snapshot(path)
        assert snapshot.generation == 2
        loaded = AnalysisService.from_snapshot(path)
        assert loaded.generation == 2

    def test_snapshot_loaded_service_updates(self, tmp_path):
        facts = _to_facts(FIGURE_5)
        path = str(tmp_path / "live.snap")
        AnalysisService.from_facts(
            copy_facts(facts), CONFIG, solve=True
        ).save_snapshot(path)
        service = AnalysisService.from_snapshot(path)
        delta = FactDelta().add("assign", EDIT)
        result = service.apply_delta(delta)
        assert result.fallback  # snapshot backends have no engine
        assert service.generation == 1
        expected = _expected_pts(delta.applied_copy(facts))
        for var in variables_of(service.facts):
            assert service.points_to(var) == frozenset(
                expected.get(var, set())
            ), var


class TestServeUpdateOp:
    def _service(self):
        return AnalysisService.from_facts(
            _to_facts(FIGURE_5), CONFIG, solve=True, incremental=True
        )

    def test_update_with_delta_object(self):
        service = self._service()
        delta = FactDelta().add("assign", EDIT)
        response = handle_request(service, {
            "id": 1, "op": "update", "delta": delta.to_json(),
        })
        assert response["ok"], response
        result = response["result"]
        assert result["generation"] == 1
        assert result["fallback"] is False
        assert result["changed"]["pts"]["added"] > 0
        assert result["micros"] >= 0
        # The response is exactly what a JSON-lines client would see.
        json.dumps(response)

    def test_update_with_source_program(self):
        service = self._service()
        response = handle_request(service, {
            "id": 2, "op": "update", "source": FIGURE_1,
        })
        assert response["ok"], response
        assert response["result"]["generation"] == 1
        expected = _expected_pts(_to_facts(FIGURE_1))
        for var in variables_of(service.facts):
            assert service.points_to(var) == frozenset(
                expected.get(var, set())
            ), var

    def test_update_requires_delta_or_source(self):
        response = handle_request(self._service(), {"id": 3, "op": "update"})
        assert not response["ok"]
        assert "requires a 'delta' object or a 'source'" in response["error"]

    def test_update_rejects_malformed_delta(self):
        response = handle_request(self._service(), {
            "id": 4, "op": "update", "delta": {"added": {"pts": [["v"]]}},
        })
        assert not response["ok"]
        assert "unknown input relation" in response["error"]

    def test_cache_invalidated_count_reported(self):
        service = self._service()
        for var in variables_of(service.facts):
            service.points_to(var)
        delta = FactDelta().add("assign", STALE_EDIT)
        response = handle_request(service, {
            "id": 5, "op": "update", "delta": delta.to_json(),
        })
        assert response["ok"]
        assert response["result"]["cache_invalidated"] > 0
