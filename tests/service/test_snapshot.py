"""Snapshot format: round-trip, integrity, mismatch errors, and the
"loads without solving" guarantee."""

import json

import pytest

from repro.core.analysis import analyze
from repro.core.config import AnalysisConfig, config_by_name
from repro.core.solver import Solver
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_1
from repro.service import (
    SNAPSHOT_SCHEMA,
    SnapshotError,
    describe_snapshot,
    read_snapshot,
    write_snapshot,
)
from repro.service.service import AnalysisService
from repro.service.snapshot import DERIVED_RELATIONS, snapshot_from_relations


@pytest.fixture(scope="module")
def facts():
    return facts_from_source(FIGURE_1)


def _solved_snapshot(facts, config=AnalysisConfig()):
    result = analyze(facts, config)
    relations = {
        name: getattr(result._solver, name)
        for name, _arity in DERIVED_RELATIONS
    }
    return result, snapshot_from_relations(result.config, facts, relations)


class TestRoundTrip:
    def test_relations_and_facts_survive(self, facts, tmp_path):
        result, snapshot = _solved_snapshot(facts)
        path = str(tmp_path / "fig1.snap")
        write_snapshot(snapshot, path)
        loaded = read_snapshot(path)

        assert loaded.config == result.config
        assert loaded.coverage is None
        for name, arity in DERIVED_RELATIONS:
            assert (
                loaded.store.relation(name, arity).rows
                == getattr(result._solver, name)
            )
        assert loaded.facts.counts() == facts.counts()
        assert loaded.facts.main_method == facts.main_method

    def test_partial_coverage_survives(self, facts, tmp_path):
        _result, snapshot = _solved_snapshot(facts)
        snapshot.coverage = frozenset({"T.id/p", "T.main/a"})
        path = str(tmp_path / "partial.snap")
        write_snapshot(snapshot, path)
        loaded = read_snapshot(path)
        assert loaded.coverage == frozenset({"T.id/p", "T.main/a"})
        assert loaded.covers("T.id/p")
        assert not loaded.covers("T.id/q")

    def test_expected_config_accepts_match(self, facts, tmp_path):
        _result, snapshot = _solved_snapshot(facts)
        path = str(tmp_path / "fig1.snap")
        write_snapshot(snapshot, path)
        read_snapshot(path, expected_config=AnalysisConfig())  # no raise


class TestIntegrity:
    def test_digest_tamper_detected(self, facts, tmp_path):
        _result, snapshot = _solved_snapshot(facts)
        path = tmp_path / "fig1.snap"
        write_snapshot(snapshot, str(path))
        document = json.loads(path.read_text())
        document["body"]["counts"]["pts"] += 1
        path.write_text(json.dumps(document))
        with pytest.raises(SnapshotError, match="integrity"):
            read_snapshot(str(path))

    def test_schema_mismatch_rejected(self, facts, tmp_path):
        _result, snapshot = _solved_snapshot(facts)
        path = tmp_path / "fig1.snap"
        write_snapshot(snapshot, str(path))
        document = json.loads(path.read_text())
        document["schema"] = "repro-snapshot/99"
        path.write_text(json.dumps(document))
        with pytest.raises(SnapshotError, match="repro-snapshot/99"):
            read_snapshot(str(path))

    def test_config_mismatch_names_fields(self, facts, tmp_path):
        _result, snapshot = _solved_snapshot(facts)
        path = str(tmp_path / "fig1.snap")
        write_snapshot(snapshot, path)
        other = config_by_name("1-call", "context-string")
        with pytest.raises(SnapshotError, match="abstraction"):
            read_snapshot(path, expected_config=other)

    def test_not_json_rejected(self, tmp_path):
        path = tmp_path / "garbage.snap"
        path.write_text("class T { }")
        with pytest.raises(SnapshotError, match="cannot read"):
            read_snapshot(str(path))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            read_snapshot(str(tmp_path / "absent.snap"))


class TestDescribe:
    def test_reports_counts_and_digest(self, facts, tmp_path):
        _result, snapshot = _solved_snapshot(facts)
        path = str(tmp_path / "fig1.snap")
        write_snapshot(snapshot, path)
        report = describe_snapshot(path)
        assert report["schema"] == SNAPSHOT_SCHEMA
        assert report["coverage"] == "full"
        assert report["relations"] == snapshot.relation_counts()
        assert report["input_facts"] == sum(facts.counts().values())

    def test_count_mismatch_detected(self, facts, tmp_path):
        _result, snapshot = _solved_snapshot(facts)
        path = tmp_path / "fig1.snap"
        write_snapshot(snapshot, str(path))
        document = json.loads(path.read_text())
        document["body"]["counts"]["pts"] += 1
        # Re-digest so only the count lie remains.
        from repro.service.snapshot import _digest

        document["digest"] = _digest(document["body"])
        path.write_text(json.dumps(document))
        with pytest.raises(SnapshotError, match="declares counts"):
            describe_snapshot(str(path))


class TestNoSolverRun:
    def test_snapshot_service_never_invokes_solver(self, facts, tmp_path):
        _result, snapshot = _solved_snapshot(facts)
        path = str(tmp_path / "fig1.snap")
        write_snapshot(snapshot, path)

        before = Solver.invocations
        service = AnalysisService.from_snapshot(path)
        answers = {
            var: service.points_to(var)
            for var in ("T.id/p", "T.main/a", "T.id2/q")
        }
        for row in facts.virtual_invoke:
            service.callees(row[0])
        assert Solver.invocations == before  # zero solver runs
        assert answers["T.id/p"]  # and the answers are real
        assert service.stats()["mode"] == "snapshot"
