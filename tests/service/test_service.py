"""AnalysisService: parity with the exhaustive solver on every query
path (solved, snapshot-served, demand fallback), caching, metrics,
partial-coverage routing and thread safety."""

import threading

import pytest

from repro.core.analysis import analyze
from repro.core.config import config_by_name
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5
from repro.service.service import AnalysisService, variables_of

PROGRAMS = {"figure1": FIGURE_1, "figure5": FIGURE_5}
ABSTRACTIONS = ("transformer-string", "context-string")


def _expected(facts, config):
    result = analyze(facts, config)
    by_var = {}
    for (var, heap) in result.pts_ci():
        by_var.setdefault(var, set()).add(heap)
    return result, by_var


@pytest.mark.parametrize("program", sorted(PROGRAMS))
@pytest.mark.parametrize("abstraction", ABSTRACTIONS)
class TestParity:
    """Every variable of every program, against the exhaustive solver."""

    def test_presolved_service(self, program, abstraction):
        facts = facts_from_source(PROGRAMS[program])
        config = config_by_name("2-object+H", abstraction)
        _result, expected = _expected(facts, config)
        service = AnalysisService.from_facts(facts, config, solve=True)
        for var in variables_of(facts):
            assert service.points_to(var) == frozenset(
                expected.get(var, set())
            ), f"{program}/{abstraction}: {var}"

    def test_snapshot_served(self, program, abstraction, tmp_path):
        facts = facts_from_source(PROGRAMS[program])
        config = config_by_name("2-object+H", abstraction)
        _result, expected = _expected(facts, config)
        path = str(tmp_path / f"{program}.snap")
        AnalysisService.from_facts(facts, config).save_snapshot(path)
        service = AnalysisService.from_snapshot(path)
        for var in variables_of(facts):
            assert service.points_to(var) == frozenset(
                expected.get(var, set())
            ), f"{program}/{abstraction}: {var}"
        assert service.stats()["paths"]["cold"] == 0

    def test_demand_fallback(self, program, abstraction):
        facts = facts_from_source(PROGRAMS[program])
        config = config_by_name("2-object+H", abstraction)
        _result, expected = _expected(facts, config)
        service = AnalysisService.from_facts(facts, config, solve=False)
        for var in variables_of(facts):
            assert service.points_to(var) == frozenset(
                expected.get(var, set())
            ), f"{program}/{abstraction}: {var}"
        stats = service.stats()
        assert stats["paths"]["warm"] == 0
        assert stats["paths"]["cold"] > 0


class TestOtherQueryKinds:
    @pytest.fixture(scope="class")
    def facts(self):
        return facts_from_source(FIGURE_1)

    @pytest.fixture(scope="class")
    def config(self):
        return config_by_name("2-object+H", "transformer-string")

    def test_callees_parity(self, facts, config):
        result = analyze(facts, config)
        warm = AnalysisService.from_facts(facts, config, solve=True)
        cold = AnalysisService.from_facts(facts, config, solve=False)
        sites = {row[0] for row in facts.virtual_invoke} | {
            row[0] for row in facts.static_invoke
        }
        for site in sites:
            expected = frozenset(
                method for (inv, method) in result.call_graph() if inv == site
            )
            assert warm.callees(site) == expected, site
            assert cold.callees(site) == expected, site

    def test_fields_of_parity(self, facts, config):
        result = analyze(facts, config)
        warm = AnalysisService.from_facts(facts, config, solve=True)
        cold = AnalysisService.from_facts(facts, config, solve=False)
        heaps = {row[0] for row in facts.assign_new}
        for heap in heaps:
            expected = {}
            for (base, field, pointee) in result.hpts_ci():
                if base == heap:
                    expected.setdefault(field, set()).add(pointee)
            expected = {f: frozenset(s) for f, s in expected.items()}
            assert warm.fields_of(heap) == expected, heap
            assert cold.fields_of(heap) == expected, heap

    def test_alias_parity(self, facts, config):
        result = analyze(facts, config)
        warm = AnalysisService.from_facts(facts, config, solve=True)
        cold = AnalysisService.from_facts(facts, config, solve=False)
        variables = sorted(variables_of(facts))[:8]
        for a in variables:
            for b in variables:
                expected = result.may_alias(a, b)
                assert warm.alias(a, b) == expected, (a, b)
                assert cold.alias(a, b) == expected, (a, b)


class TestPartialCoverage:
    def test_covered_warm_uncovered_demand(self, tmp_path):
        facts = facts_from_source(FIGURE_1)
        config = config_by_name("2-object+H", "transformer-string")
        _result, expected = _expected(facts, config)

        # A demand-mode service that has only seen one variable saves a
        # partial snapshot pinned to its demanded slice.
        seed = AnalysisService.from_facts(facts, config, solve=False)
        seed.points_to("T.id/p")
        path = str(tmp_path / "partial.snap")
        snapshot = seed.save_snapshot(path)
        assert snapshot.coverage is not None
        assert "T.id/p" in snapshot.coverage

        service = AnalysisService.from_snapshot(path)
        in_cover = service.query("points_to", var="T.id/p")
        assert in_cover.path == "snapshot"
        assert in_cover.value == frozenset(expected["T.id/p"])

        outside = sorted(variables_of(facts) - snapshot.coverage)
        assert outside, "partial snapshot unexpectedly covers everything"
        out = service.query("points_to", var=outside[0])
        assert out.path == "demand"
        assert out.value == frozenset(expected.get(outside[0], set()))


class TestCacheAndMetrics:
    def test_repeat_hits_cache(self):
        facts = facts_from_source(FIGURE_1)
        config = config_by_name("2-object+H", "transformer-string")
        service = AnalysisService.from_facts(facts, config, solve=True)
        first = service.query("points_to", var="T.id/p")
        second = service.query("points_to", var="T.id/p")
        assert not first.cached and second.cached
        assert second.path == "cache"
        assert first.value == second.value
        stats = service.stats()
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["misses"] == 1
        assert stats["cache"]["hit_rate"] == 0.5
        assert stats["latency_us"]["points_to"]["count"] == 2
        assert stats["latency_us"]["points_to"]["p50_us"] >= 0

    def test_lru_evicts(self):
        facts = facts_from_source(FIGURE_1)
        config = config_by_name("2-object+H", "transformer-string")
        service = AnalysisService.from_facts(
            facts, config, solve=True, cache_size=2
        )
        variables = sorted(variables_of(facts))[:3]
        for var in variables:
            service.points_to(var)
        service.points_to(variables[0])  # evicted by the two after it
        assert service.stats()["cache"]["hits"] == 0

    def test_unknown_op_rejected(self):
        facts = facts_from_source(FIGURE_1)
        service = AnalysisService.from_facts(
            facts, config_by_name("2-object+H"), solve=False
        )
        with pytest.raises(ValueError, match="unknown query op"):
            service.query("pointsto", var="x")


class TestThreadSafety:
    def test_concurrent_mixed_queries(self):
        facts = facts_from_source(FIGURE_5)
        config = config_by_name("2-object+H", "transformer-string")
        _result, expected = _expected(facts, config)
        service = AnalysisService.from_facts(facts, config, solve=False)
        variables = sorted(variables_of(facts))
        errors = []

        def worker(offset):
            try:
                for index in range(len(variables)):
                    var = variables[(index + offset) % len(variables)]
                    got = service.points_to(var)
                    assert got == frozenset(expected.get(var, set()))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        total = service.stats()["cache"]
        assert total["hits"] + total["misses"] == 4 * len(variables)


class TestKernelBackend:
    """``from_facts(backend="kernel")`` must be bit-identical to the
    worklist solver and report which engine actually ran."""

    @pytest.mark.parametrize("source_name", sorted(PROGRAMS))
    @pytest.mark.parametrize(
        "abstraction", ["transformer-string", "context-string"]
    )
    def test_parity_with_worklist(self, source_name, abstraction):
        facts = facts_from_source(PROGRAMS[source_name])
        config = config_by_name("1-call", abstraction)
        worklist = AnalysisService.from_facts(
            facts, config, backend="worklist"
        )
        kernel = AnalysisService.from_facts(facts, config, backend="kernel")
        for name in ("pts", "hpts", "call", "reach", "spts", "texc"):
            assert (
                set(getattr(worklist._backend, name))
                == set(getattr(kernel._backend, name))
            ), (source_name, abstraction, name)
        assert worklist.stats()["solve_backend"] == "worklist"
        assert kernel.stats()["solve_backend"] == "kernel"
        for var in sorted(variables_of(facts))[:5]:
            assert worklist.points_to(var) == kernel.points_to(var)

    def test_incompatible_config_falls_back(self):
        from dataclasses import replace

        facts = facts_from_source(PROGRAMS["figure1"])
        config = replace(config_by_name("1-call"), eliminate_subsumed=True)
        service = AnalysisService.from_facts(facts, config, backend="kernel")
        assert service.stats()["solve_backend"] == "worklist"

    def test_unknown_backend_rejected(self):
        facts = facts_from_source(PROGRAMS["figure1"])
        with pytest.raises(ValueError, match="unknown solve backend"):
            AnalysisService.from_facts(
                facts, config_by_name("1-call"), backend="llvm"
            )

    def test_kernel_solved_service_snapshots_and_updates(self, tmp_path):
        from repro.incremental import FactDelta

        facts = facts_from_source(PROGRAMS["figure1"])
        config = config_by_name("1-call")
        service = AnalysisService.from_facts(facts, config, backend="kernel")
        path = str(tmp_path / "kernel.json")
        service.save_snapshot(path)
        restored = AnalysisService.from_snapshot(path)
        assert set(restored._backend.pts) == set(service._backend.pts)
        before = service.generation
        service.apply_delta(FactDelta())
        assert service.generation == before + 1
