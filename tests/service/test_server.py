"""JSON-lines server: stdio round-trips, error handling, TCP mode."""

import io
import json
import socket
import threading

import pytest

from repro.core.analysis import analyze
from repro.core.config import config_by_name
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_1
from repro.service.server import (
    ERROR_CODES,
    PROTOCOL,
    ServiceTCPServer,
    handle_line,
    handle_request,
    serve_stdio,
)
from repro.service.service import AnalysisService


@pytest.fixture(scope="module")
def facts():
    return facts_from_source(FIGURE_1)


@pytest.fixture(scope="module")
def config():
    return config_by_name("2-object+H", "transformer-string")


@pytest.fixture()
def service(facts, config):
    return AnalysisService.from_facts(facts, config, solve=True)


def _run_stdio(service, requests):
    lines = "\n".join(json.dumps(r) for r in requests) + "\n"
    out = io.StringIO()
    answered = serve_stdio(service, io.StringIO(lines), out)
    responses = [json.loads(line) for line in out.getvalue().splitlines()]
    return answered, responses


class TestStdio:
    def test_session_round_trip(self, facts, config, service):
        result = analyze(facts, config)
        answered, responses = _run_stdio(service, [
            {"id": 1, "op": "ping"},
            {"id": 2, "op": "points_to", "var": "T.id/p"},
            {"id": 3, "op": "alias", "a": "T.id/p", "b": "T.id2/q"},
            {"id": 4, "op": "stats"},
            {"id": 5, "op": "shutdown"},
        ])
        assert answered == 5
        by_id = {r["id"]: r for r in responses}
        assert by_id[1]["result"] == PROTOCOL
        assert by_id[2]["ok"]
        assert by_id[2]["result"] == sorted(result.points_to("T.id/p"))
        assert by_id[2]["meta"]["path"] == "solved"
        assert by_id[3]["result"] == result.may_alias("T.id/p", "T.id2/q")
        assert by_id[4]["result"]["cache"]["misses"] == 2
        assert by_id[5]["result"] == "bye"

    def test_shutdown_stops_reading(self, service):
        answered, responses = _run_stdio(service, [
            {"id": 1, "op": "shutdown"},
            {"id": 2, "op": "ping"},  # never reached
        ])
        assert answered == 1
        assert len(responses) == 1

    def test_blank_lines_skipped(self, service):
        out = io.StringIO()
        answered = serve_stdio(
            service, io.StringIO('\n\n{"id": 1, "op": "ping"}\n\n'), out
        )
        assert answered == 1

    def test_malformed_json_answered_not_fatal(self, service):
        out = io.StringIO()
        answered = serve_stdio(
            service,
            io.StringIO('this is not json\n{"id": 7, "op": "ping"}\n'),
            out,
        )
        assert answered == 2
        first, second = [
            json.loads(line) for line in out.getvalue().splitlines()
        ]
        assert first == {
            "id": None, "ok": False, "code": "bad-json",
            "error": first["error"],
        } and "bad JSON" in first["error"]
        assert second["ok"] and second["id"] == 7


class TestHandleRequest:
    def test_unknown_op(self, service):
        response = handle_request(service, {"id": 9, "op": "pointsto"})
        assert not response["ok"]
        assert response["code"] == "unknown-op"
        assert "unknown op" in response["error"]

    def test_missing_field(self, service):
        response = handle_request(service, {"id": 9, "op": "points_to"})
        assert not response["ok"]
        assert response["code"] == "missing-field"
        assert "var" in response["error"]

    def test_non_object_request(self, service):
        response = handle_request(service, ["op", "ping"])
        assert not response["ok"]
        assert response["code"] == "bad-request"

    def test_every_error_carries_a_stable_code(self, service):
        cases = {
            "bad-json": handle_line(service, "{nope"),
            "bad-request": handle_request(service, {"id": 1}),
            "unknown-op": handle_request(service, {"op": "zap"}),
            "missing-field": handle_request(service, {"op": "alias"}),
            "oversized": handle_line(
                service, "x" * 64, max_line_bytes=32
            ),
        }
        for code, response in cases.items():
            assert response["ok"] is False, code
            assert response["code"] == code
            assert code in ERROR_CODES


class TestLineBounds:
    def test_oversized_line_answered(self, service):
        line = json.dumps({"id": 1, "op": "ping", "pad": "x" * 100})
        response = handle_line(service, line, max_line_bytes=32)
        assert response["code"] == "oversized"
        assert response["id"] is None

    def test_within_bound_line_served(self, service):
        response = handle_line(
            service, '{"id": 1, "op": "ping"}', max_line_bytes=1024
        )
        assert response["ok"] and response["result"] == PROTOCOL

    def test_stdio_respects_bound_and_recovers(self, service):
        big = json.dumps({"id": 1, "op": "ping", "pad": "y" * 2048})
        out = io.StringIO()
        answered = serve_stdio(
            service,
            io.StringIO(big + "\n" + '{"id": 2, "op": "ping"}\n'),
            out,
            max_line_bytes=256,
        )
        assert answered == 2
        first, second = [
            json.loads(line) for line in out.getvalue().splitlines()
        ]
        assert first["code"] == "oversized"
        assert second["ok"] and second["id"] == 2

    def test_fields_of_serializes_as_dict_of_lists(self, facts, service):
        heap = sorted(row[0] for row in facts.assign_new)[0]
        response = handle_request(
            service, {"id": 1, "op": "fields_of", "heap": heap}
        )
        assert response["ok"]
        for field, sites in response["result"].items():
            assert isinstance(field, str)
            assert sites == sorted(sites)


class TestTCP:
    def test_concurrent_connections(self, service):
        server = ServiceTCPServer(("127.0.0.1", 0), service)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            def one_session(var):
                with socket.create_connection((host, port), timeout=5) as s:
                    handle = s.makefile("rw", encoding="utf-8")
                    handle.write(json.dumps(
                        {"id": 1, "op": "points_to", "var": var}
                    ) + "\n")
                    handle.write(json.dumps(
                        {"id": 2, "op": "shutdown"}
                    ) + "\n")
                    handle.flush()
                    return [json.loads(handle.readline()) for _ in range(2)]

            results = {}

            def client(var):
                results[var] = one_session(var)

            threads = [
                threading.Thread(target=client, args=(var,))
                for var in ("T.id/p", "T.id2/q")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for var, (first, second) in results.items():
                assert first["ok"], var
                assert first["result"], var
                assert second["result"] == "bye"
        finally:
            server.shutdown()
            server.server_close()

    def test_oversized_line_recovers_on_the_wire(self, service):
        server = ServiceTCPServer(
            ("127.0.0.1", 0), service, max_line_bytes=256
        )
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with socket.create_connection((host, port), timeout=5) as s:
                handle = s.makefile("rw", encoding="utf-8")
                handle.write("z" * 4096 + "\n")
                handle.write('{"id": 2, "op": "ping"}\n')
                handle.flush()
                first = json.loads(handle.readline())
                second = json.loads(handle.readline())
            assert first["code"] == "oversized" and not first["ok"]
            # The connection survived: the next request is served.
            assert second["ok"] and second["id"] == 2
        finally:
            server.shutdown()
            server.server_close()

    def test_drain_stops_reading_further_requests(self, service):
        server = ServiceTCPServer(("127.0.0.1", 0), service)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with socket.create_connection((host, port), timeout=5) as s:
                handle = s.makefile("rw", encoding="utf-8")
                handle.write('{"id": 1, "op": "ping"}\n')
                handle.flush()
                assert json.loads(handle.readline())["ok"]
                server.draining.set()
                # A read already in flight when the flag went up still
                # gets its answer (that is the "graceful" in the
                # drain); a handler that re-checked the flag first
                # closes cleanly instead.  Which happens is a race —
                # both are correct, hanging or dying is not.
                handle.write('{"id": 2, "op": "ping"}\n')
                handle.flush()
                line = handle.readline()
                if line:
                    assert json.loads(line)["id"] == 2
                    # Served once more at most: the flag is re-checked
                    # before the next read, which now closes.
                    handle.write('{"id": 3, "op": "ping"}\n')
                    handle.flush()
                    assert handle.readline() == ""
        finally:
            server.shutdown()
            server.server_close()

    def test_active_connection_counter(self, service):
        import time as time_module

        server = ServiceTCPServer(("127.0.0.1", 0), service)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            assert server.active_connections == 0
            with socket.create_connection((host, port), timeout=5) as s:
                handle = s.makefile("rw", encoding="utf-8")
                handle.write('{"id": 1, "op": "ping"}\n')
                handle.flush()
                handle.readline()
                assert server.active_connections == 1
                handle.close()  # makefile holds the socket open
            deadline = time_module.monotonic() + 5
            while (
                server.active_connections
                and time_module.monotonic() < deadline
            ):
                time_module.sleep(0.01)
            assert server.active_connections == 0
        finally:
            server.shutdown()
            server.server_close()
