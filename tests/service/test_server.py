"""JSON-lines server: stdio round-trips, error handling, TCP mode."""

import io
import json
import socket
import threading

import pytest

from repro.core.analysis import analyze
from repro.core.config import config_by_name
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_1
from repro.service.server import (
    PROTOCOL,
    ServiceTCPServer,
    handle_request,
    serve_stdio,
)
from repro.service.service import AnalysisService


@pytest.fixture(scope="module")
def facts():
    return facts_from_source(FIGURE_1)


@pytest.fixture(scope="module")
def config():
    return config_by_name("2-object+H", "transformer-string")


@pytest.fixture()
def service(facts, config):
    return AnalysisService.from_facts(facts, config, solve=True)


def _run_stdio(service, requests):
    lines = "\n".join(json.dumps(r) for r in requests) + "\n"
    out = io.StringIO()
    answered = serve_stdio(service, io.StringIO(lines), out)
    responses = [json.loads(line) for line in out.getvalue().splitlines()]
    return answered, responses


class TestStdio:
    def test_session_round_trip(self, facts, config, service):
        result = analyze(facts, config)
        answered, responses = _run_stdio(service, [
            {"id": 1, "op": "ping"},
            {"id": 2, "op": "points_to", "var": "T.id/p"},
            {"id": 3, "op": "alias", "a": "T.id/p", "b": "T.id2/q"},
            {"id": 4, "op": "stats"},
            {"id": 5, "op": "shutdown"},
        ])
        assert answered == 5
        by_id = {r["id"]: r for r in responses}
        assert by_id[1]["result"] == PROTOCOL
        assert by_id[2]["ok"]
        assert by_id[2]["result"] == sorted(result.points_to("T.id/p"))
        assert by_id[2]["meta"]["path"] == "solved"
        assert by_id[3]["result"] == result.may_alias("T.id/p", "T.id2/q")
        assert by_id[4]["result"]["cache"]["misses"] == 2
        assert by_id[5]["result"] == "bye"

    def test_shutdown_stops_reading(self, service):
        answered, responses = _run_stdio(service, [
            {"id": 1, "op": "shutdown"},
            {"id": 2, "op": "ping"},  # never reached
        ])
        assert answered == 1
        assert len(responses) == 1

    def test_blank_lines_skipped(self, service):
        out = io.StringIO()
        answered = serve_stdio(
            service, io.StringIO('\n\n{"id": 1, "op": "ping"}\n\n'), out
        )
        assert answered == 1

    def test_malformed_json_answered_not_fatal(self, service):
        out = io.StringIO()
        answered = serve_stdio(
            service,
            io.StringIO('this is not json\n{"id": 7, "op": "ping"}\n'),
            out,
        )
        assert answered == 2
        first, second = [
            json.loads(line) for line in out.getvalue().splitlines()
        ]
        assert first == {
            "id": None, "ok": False, "error": first["error"],
        } and "bad JSON" in first["error"]
        assert second["ok"] and second["id"] == 7


class TestHandleRequest:
    def test_unknown_op(self, service):
        response = handle_request(service, {"id": 9, "op": "pointsto"})
        assert not response["ok"]
        assert "unknown op" in response["error"]

    def test_missing_field(self, service):
        response = handle_request(service, {"id": 9, "op": "points_to"})
        assert not response["ok"]
        assert "var" in response["error"]

    def test_non_object_request(self, service):
        response = handle_request(service, ["op", "ping"])
        assert not response["ok"]

    def test_fields_of_serializes_as_dict_of_lists(self, facts, service):
        heap = sorted(row[0] for row in facts.assign_new)[0]
        response = handle_request(
            service, {"id": 1, "op": "fields_of", "heap": heap}
        )
        assert response["ok"]
        for field, sites in response["result"].items():
            assert isinstance(field, str)
            assert sites == sorted(sites)


class TestTCP:
    def test_concurrent_connections(self, service):
        server = ServiceTCPServer(("127.0.0.1", 0), service)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            def one_session(var):
                with socket.create_connection((host, port), timeout=5) as s:
                    handle = s.makefile("rw", encoding="utf-8")
                    handle.write(json.dumps(
                        {"id": 1, "op": "points_to", "var": var}
                    ) + "\n")
                    handle.write(json.dumps(
                        {"id": 2, "op": "shutdown"}
                    ) + "\n")
                    handle.flush()
                    return [json.loads(handle.readline()) for _ in range(2)]

            results = {}

            def client(var):
                results[var] = one_session(var)

            threads = [
                threading.Thread(target=client, args=(var,))
                for var in ("T.id/p", "T.id2/q")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for var, (first, second) in results.items():
                assert first["ok"], var
                assert first["result"], var
                assert second["result"] == "bye"
        finally:
            server.shutdown()
            server.server_close()
