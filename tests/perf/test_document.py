"""The repro-bench/1 document: byte stability, digests, validation."""

import copy

import pytest

from repro.perf.document import (
    BENCH_SCHEMA,
    BenchDocumentError,
    bench_document,
    describe_document,
    entries_by_key,
    load_document,
    render_document,
    validate_document,
    write_document,
)
from repro.perf.result import RunResult
from repro.perf.suite import SUITES


ENVIRONMENT = {
    "commit": "a" * 40,
    "fingerprint": "0" * 12,
    "host": {"python": "3.11.7"},
}


def _results():
    return [
        RunResult(
            benchmark="luindex", surface="worklist",
            configuration="1-call", scale=1,
            warmup_seconds=[0.2], steady_seconds=[0.1, 0.11],
            phases={"solve": 0.1}, certified=True, reference=True,
        ),
        RunResult(
            benchmark="luindex", surface="engine",
            configuration="1-call", scale=1,
            warmup_seconds=[], steady_seconds=[0.5],
            phases={"compile": 0.05, "solve": 0.45}, certified=True,
        ),
    ]


def _document(created="2026-08-08T00:00:00Z"):
    return bench_document(
        SUITES["micro"], _results(),
        environment=copy.deepcopy(ENVIRONMENT), created=created,
    )


class TestByteStability:
    def test_same_inputs_same_bytes(self):
        assert render_document(_document()) == render_document(_document())

    def test_created_excluded_from_digest(self):
        a = _document(created="2026-08-08T00:00:00Z")
        b = _document(created="2027-01-01T12:00:00Z")
        assert a["digest"] == b["digest"]

    def test_roundtrips_through_disk(self, tmp_path):
        path = str(tmp_path / "bench.json")
        document = _document()
        write_document(document, path)
        assert load_document(path) == document


class TestValidation:
    def test_valid_document_passes(self):
        validate_document(_document())

    def test_wrong_schema(self):
        document = _document()
        document["schema"] = "repro-bench/0"
        with pytest.raises(BenchDocumentError, match="schema"):
            validate_document(document)

    def test_tampered_body_fails_digest(self):
        document = _document()
        document["body"]["entries"][0]["steady"]["seconds"][0] = 0.0001
        with pytest.raises(BenchDocumentError, match="digest mismatch"):
            validate_document(document)

    def test_bad_fingerprint(self):
        results = _results()
        environment = copy.deepcopy(ENVIRONMENT)
        environment["fingerprint"] = "not-a-digest"
        document = bench_document(
            SUITES["micro"], results, environment=environment
        )
        with pytest.raises(BenchDocumentError, match="fingerprint"):
            validate_document(document)

    def test_bad_commit(self):
        environment = copy.deepcopy(ENVIRONMENT)
        environment["commit"] = "abc"
        document = bench_document(
            SUITES["micro"], _results(), environment=environment
        )
        with pytest.raises(BenchDocumentError, match="commit"):
            validate_document(document)

    def test_warmup_leak_detected(self):
        # A document whose steady.best is not min(steady.seconds) has
        # mixed warmup into steady stats somewhere upstream.
        document = _document()
        entry = document["body"]["entries"][0]
        entry["steady"]["best"] = 0.05
        document["digest"] = _redigest(document)
        with pytest.raises(BenchDocumentError, match="warmup"):
            validate_document(document)

    def test_duplicate_entry_keys(self):
        results = _results()
        results[1].surface = "worklist"
        document = bench_document(
            SUITES["micro"], results,
            environment=copy.deepcopy(ENVIRONMENT),
        )
        with pytest.raises(BenchDocumentError, match="duplicate"):
            validate_document(document)

    def test_entry_key_must_match_fields(self):
        document = _document()
        document["body"]["entries"][0]["key"] = "other/worklist/1-call/s1"
        document["digest"] = _redigest(document)
        with pytest.raises(BenchDocumentError, match="does not match"):
            validate_document(document)

    def test_empty_entries(self):
        document = _document()
        document["body"]["entries"] = []
        document["digest"] = _redigest(document)
        with pytest.raises(BenchDocumentError, match="empty"):
            validate_document(document)


def _redigest(document):
    from repro.perf.document import _digest

    return _digest(document["body"])


class TestDescribe:
    def test_summary(self, tmp_path):
        path = str(tmp_path / "bench.json")
        write_document(_document(), path)
        report = describe_document(path)
        assert report["schema"] == BENCH_SCHEMA
        assert report["suite"] == "micro"
        assert report["entries"] == 2
        assert report["certified"] == 2
        assert report["uncertified"] == 0
        assert report["surfaces"] == ["engine", "worklist"]

    def test_entries_by_key(self):
        indexed = entries_by_key(_document())
        assert set(indexed) == {
            "luindex/worklist/1-call/s1", "luindex/engine/1-call/s1",
        }
