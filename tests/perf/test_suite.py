"""Named suites: grid shape, reference discipline, the runner."""

import pytest

from repro.perf.registry import DEFAULT_REGISTRY
from repro.perf.suite import SUITES, Suite, SuiteEntry, run_suite


class TestSuiteShapes:
    def test_the_three_suites_exist(self):
        assert set(SUITES) == {"smoke", "micro", "corpus"}

    def test_smoke_covers_the_acceptance_surfaces(self):
        surfaces = set(SUITES["smoke"].surfaces())
        # The acceptance floor: kernel backend (source and cost order),
        # parallel shards, incremental churn, and serving, plus the
        # reference.
        assert {
            "worklist", "kernel", "kernel-cost", "parallel-2",
            "incremental", "serving",
        } <= surfaces

    def test_smoke_includes_the_new_corpus_entries(self):
        benchmarks = {e.benchmark for e in SUITES["smoke"].entries}
        assert {"towers", "fanout"} <= benchmarks

    def test_every_measured_cell_has_its_reference(self):
        for suite in SUITES.values():
            references = {
                (e.benchmark, e.configuration, e.scale)
                for e in suite.entries if e.surface == "worklist"
            }
            for entry in suite.entries:
                assert (
                    entry.benchmark, entry.configuration, entry.scale,
                ) in references, (
                    "%s: %s has no worklist reference row"
                    % (suite.name, entry)
                )

    def test_every_suite_benchmark_is_registered(self):
        for suite in SUITES.values():
            for entry in suite.entries:
                assert entry.benchmark in DEFAULT_REGISTRY

    def test_corpus_covers_the_whole_registry(self):
        benchmarks = {e.benchmark for e in SUITES["corpus"].entries}
        assert benchmarks == set(DEFAULT_REGISTRY.names())


class TestRunner:
    def test_micro_runs_in_order(self):
        results = run_suite(SUITES["micro"])
        assert [r.key for r in results] == [
            "luindex/worklist/1-call/s1",
            "luindex/engine/1-call/s1",
        ]
        assert all(r.certified for r in results)

    def test_progress_callback_sees_every_cell(self):
        seen = []
        run_suite(SUITES["micro"], progress=seen.append)
        assert seen == [
            "luindex/worklist/1-call/s1",
            "luindex/engine/1-call/s1",
        ]

    def test_duplicate_cells_rejected(self):
        entry = SuiteEntry("luindex", "worklist", warmup=0, iterations=1)
        broken = Suite("broken", "duplicate cell", (entry, entry))
        with pytest.raises(ValueError, match="duplicate"):
            run_suite(broken)
