"""Regression gating: absolute vs relative mode, thresholds, verdicts."""

import copy

import pytest

from repro.perf.document import bench_document
from repro.perf.gate import (
    compare_documents,
    format_compare,
    format_gate,
    gate_documents,
)
from repro.perf.result import RunResult
from repro.perf.suite import SUITES


def _entry(surface, best, certified=True, reference=False,
           benchmark="luindex"):
    return RunResult(
        benchmark=benchmark, surface=surface,
        configuration="1-call", scale=1,
        steady_seconds=[best, best * 1.2],
        phases={"solve": best},
        certified=certified, reference=reference,
    )


def _document(entries, fingerprint="0" * 12, commit="a" * 40):
    environment = {
        "commit": commit,
        "fingerprint": fingerprint,
        "host": {"python": "3.11.7"},
    }
    return bench_document(
        SUITES["micro"], entries, environment=environment,
        created="2026-08-08T00:00:00Z",
    )


def _baseline(fingerprint="0" * 12):
    return _document([
        _entry("worklist", 0.1, reference=True),
        _entry("engine", 0.5),
    ], fingerprint=fingerprint)


class TestAbsoluteMode:
    def test_identical_documents_pass(self):
        outcome = gate_documents(_baseline(), _baseline())
        assert outcome.mode == "absolute"
        assert outcome.passed is True

    def test_within_tolerance_passes(self):
        current = _document([
            _entry("worklist", 0.1, reference=True),
            _entry("engine", 0.9),   # 1.8x < 2x default
        ])
        assert gate_documents(current, _baseline()).passed is True

    def test_regression_fails(self):
        current = _document([
            _entry("worklist", 0.1, reference=True),
            _entry("engine", 1.2),   # 2.4x > 2x default
        ])
        outcome = gate_documents(current, _baseline())
        assert outcome.passed is False
        assert outcome.regressions[0]["kind"] == "timing"
        assert "FAIL" in format_gate(outcome)

    def test_per_entry_tolerance_override(self):
        current = _document([
            _entry("worklist", 0.1, reference=True),
            _entry("engine", 0.8),   # 1.6x
        ])
        outcome = gate_documents(
            current, _baseline(),
            per_entry_tolerance={"luindex/engine/1-call/s1": 0.5},
        )
        assert outcome.passed is False

    def test_injected_slowdown_trips_the_gate(self):
        outcome = gate_documents(
            _baseline(), _baseline(), inject_slowdown=10.0
        )
        assert outcome.passed is False
        assert any("synthetic slowdown" in n for n in outcome.notes)

    def test_injection_spares_reference_entries(self):
        outcome = gate_documents(
            _baseline(), _baseline(), inject_slowdown=10.0
        )
        keys = {r["key"] for r in outcome.regressions}
        assert "luindex/worklist/1-call/s1" not in keys


class TestRelativeMode:
    def test_fingerprint_change_switches_mode(self):
        current = _document([
            # A 3x slower machine: both entries scale together, so the
            # worklist-normalised ratio is unchanged.
            _entry("worklist", 0.3, reference=True),
            _entry("engine", 1.5),
        ], fingerprint="f" * 12)
        outcome = gate_documents(current, _baseline())
        assert outcome.mode == "relative"
        assert outcome.passed is True

    def test_relative_regression_still_caught(self):
        current = _document([
            _entry("worklist", 0.1, reference=True),
            _entry("engine", 1.2),   # normalised 12 vs baseline 5
        ], fingerprint="f" * 12)
        outcome = gate_documents(current, _baseline())
        assert outcome.passed is False

    def test_reference_entries_skipped(self):
        current = _document([
            _entry("worklist", 5.0, reference=True),
            _entry("engine", 25.0),
        ], fingerprint="f" * 12)
        outcome = gate_documents(current, _baseline())
        keys = {c["key"] for c in outcome.comparisons}
        assert "luindex/worklist/1-call/s1" not in keys
        assert outcome.passed is True


class TestStructuralRegressions:
    def test_missing_entry_fails(self):
        current = _document([_entry("worklist", 0.1, reference=True)])
        outcome = gate_documents(current, _baseline())
        assert outcome.passed is False
        assert outcome.regressions[0]["kind"] == "missing"

    def test_lost_certification_fails(self):
        current = _document([
            _entry("worklist", 0.1, reference=True),
            _entry("engine", 0.5, certified=False),
        ])
        outcome = gate_documents(current, _baseline())
        assert outcome.passed is False
        assert any(
            r["kind"] == "certification" for r in outcome.regressions
        )

    def test_new_entry_noted_not_gated(self):
        current = _document([
            _entry("worklist", 0.1, reference=True),
            _entry("engine", 0.5),
            _entry("kernel", 9.9),
        ])
        outcome = gate_documents(current, _baseline())
        assert outcome.passed is True
        assert any("no baseline" in note for note in outcome.notes)


class TestCompare:
    def test_rows_cover_both_documents(self):
        current = _document([
            _entry("worklist", 0.1, reference=True),
            _entry("kernel", 0.2),
        ])
        mode, rows = compare_documents(current, _baseline())
        assert mode == "absolute"
        keys = {row["key"] for row in rows}
        assert keys == {
            "luindex/worklist/1-call/s1",
            "luindex/engine/1-call/s1",
            "luindex/kernel/1-call/s1",
        }
        assert "bench compare" in format_compare(mode, rows)
