"""Shared timing/percentile helpers: the one implementation everyone uses."""

import pytest

from repro.perf.stats import (
    best_of,
    latency_summary_us,
    percentile,
    speedup,
    stopwatch,
    timed_samples,
    to_ms,
)


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 0.5) is None

    def test_single_sample(self):
        assert percentile([3.0], 0.99) == 3.0

    def test_nearest_rank(self):
        ordered = [float(v) for v in range(1, 101)]
        assert percentile(ordered, 0.50) == 51.0
        assert percentile(ordered, 0.99) == 99.0
        assert percentile(ordered, 1.0) == 100.0

    def test_zero_fraction_is_minimum(self):
        assert percentile([1.0, 2.0, 3.0], 0.0) == 1.0

    def test_matches_loadbench_alias(self):
        # loadbench re-exports this implementation under its old name.
        from repro.bench.loadbench import _percentile

        assert _percentile is percentile


class TestLatencySummary:
    def test_empty(self):
        assert latency_summary_us([]) == {
            "count": 0, "p50_us": 0, "p95_us": 0,
        }

    def test_microsecond_ints(self):
        summary = latency_summary_us([0.001, 0.002, 0.003])
        assert summary == {"count": 3, "p50_us": 2000, "p95_us": 3000}

    def test_accepts_unsorted_input(self):
        assert (
            latency_summary_us([0.003, 0.001, 0.002])
            == latency_summary_us([0.001, 0.002, 0.003])
        )


class TestToMs:
    def test_none_passes(self):
        assert to_ms(None) is None

    def test_rounds_to_three_places(self):
        assert to_ms(0.0012345) == 1.234


class TestTiming:
    def test_stopwatch_returns_result_and_seconds(self):
        value, seconds = stopwatch(lambda: 42)
        assert value == 42
        assert seconds >= 0.0

    def test_best_of_is_minimum(self):
        calls = []
        best = best_of(lambda: calls.append(1), 5)
        assert len(calls) == 5
        assert best >= 0.0

    def test_best_of_clamps_repetitions(self):
        calls = []
        best_of(lambda: calls.append(1), 0)
        assert len(calls) == 1

    def test_timed_samples_split(self):
        warmup, steady = timed_samples(lambda: None, warmup=2, iterations=3)
        assert len(warmup) == 2
        assert len(steady) == 3

    def test_timed_samples_without_warmup(self):
        warmup, steady = timed_samples(lambda: None, warmup=0, iterations=1)
        assert warmup == []
        assert len(steady) == 1


class TestSpeedup:
    def test_ratio(self):
        assert speedup(2.0, 1.0) == 2.0

    def test_degenerate_is_zero(self):
        assert speedup(1.0, 0.0) == 0.0
