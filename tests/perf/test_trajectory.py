"""Trajectory hygiene: run ids, comparability flags, v1 migration."""

import json

import pytest

from repro.perf.document import bench_document
from repro.perf.result import RunResult
from repro.perf.suite import SUITES
from repro.perf.trajectory import (
    TRAJECTORY_SCHEMA,
    TrajectoryError,
    append_point,
    format_trend,
    load_trajectory,
    migrate_v1,
    trajectory_point,
    write_trajectory,
)


def _bench(commit="a" * 40, fingerprint="0" * 12, best=0.1):
    results = [RunResult(
        benchmark="luindex", surface="worklist",
        configuration="1-call", scale=1,
        steady_seconds=[best], phases={"solve": best},
        certified=True, reference=True,
    )]
    return bench_document(
        SUITES["micro"], results,
        environment={
            "commit": commit, "fingerprint": fingerprint,
            "host": {"python": "3.11.7"},
        },
        created="2026-08-08T00:00:00Z",
    )


class TestPoint:
    def test_keyed_by_commit_and_run_id(self):
        point = trajectory_point(_bench())
        assert point["commit"] == "a" * 40
        assert point["run_id"] == _bench()["digest"].split(":")[1][:12]
        assert point["certified"] is True
        assert point["date"] == "2026-08-08"

    def test_run_id_tracks_the_document(self):
        a = trajectory_point(_bench(best=0.1))
        b = trajectory_point(_bench(best=0.2))
        assert a["run_id"] != b["run_id"]


class TestAppend:
    def test_first_point_has_null_comparable(self, tmp_path):
        path = str(tmp_path / "BENCH_t.json")
        document = append_point(path, trajectory_point(_bench()))
        assert document["schema"] == TRAJECTORY_SCHEMA
        assert document["points"][0]["comparable"] is None

    def test_same_host_is_comparable(self, tmp_path):
        path = str(tmp_path / "BENCH_t.json")
        append_point(path, trajectory_point(_bench(best=0.1)))
        document = append_point(
            path, trajectory_point(_bench(best=0.2))
        )
        assert document["points"][1]["comparable"] is True

    def test_host_change_flags_non_comparable(self, tmp_path):
        path = str(tmp_path / "BENCH_t.json")
        append_point(path, trajectory_point(_bench()))
        document = append_point(
            path,
            trajectory_point(_bench(best=0.2, fingerprint="f" * 12)),
        )
        assert document["points"][1]["comparable"] is False
        assert "not comparable" in format_trend(document)

    def test_duplicate_run_id_rejected(self, tmp_path):
        path = str(tmp_path / "BENCH_t.json")
        append_point(path, trajectory_point(_bench()))
        with pytest.raises(TrajectoryError, match="already recorded"):
            append_point(path, trajectory_point(_bench()))

    def test_persisted_file_reloads(self, tmp_path):
        path = str(tmp_path / "BENCH_t.json")
        append_point(path, trajectory_point(_bench()))
        assert len(load_trajectory(path)["points"]) == 1


V1_DOCUMENT = {
    "schema": "repro-bench-trajectory/1",
    "date": "2026-08-08",
    "description": "legacy",
    "host": {"python": "3.11.7", "platform": "linux", "cpus": 1},
    "workloads": [
        {"benchmark": "bloat", "certified": True, "seconds": 12.0},
        {"benchmark": "bloat", "parity": {"ok": True}, "seconds": 1.0},
    ],
}


class TestMigration:
    def test_v1_points_become_legacy_points(self):
        document = migrate_v1(V1_DOCUMENT)
        assert document["schema"] == TRAJECTORY_SCHEMA
        points = document["points"]
        assert [p["run_id"] for p in points] == ["legacy-0", "legacy-1"]
        assert points[0]["commit"] is None
        assert points[0]["comparable"] is None
        assert points[1]["comparable"] is True
        assert points[0]["legacy"]["seconds"] == 12.0

    def test_parity_ok_counts_as_certified(self):
        document = migrate_v1(V1_DOCUMENT)
        assert document["points"][1]["certified"] is True

    def test_load_migrates_transparently(self, tmp_path):
        path = str(tmp_path / "BENCH_v1.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(V1_DOCUMENT, handle)
        assert load_trajectory(path)["schema"] == TRAJECTORY_SCHEMA

    def test_appending_to_v1_flags_host_break(self, tmp_path):
        # A real fingerprint can never equal the "legacy-" prefixed
        # one, so the first post-migration point is non-comparable.
        path = str(tmp_path / "BENCH_v1.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(V1_DOCUMENT, handle)
        document = append_point(path, trajectory_point(_bench()))
        assert document["points"][-1]["comparable"] is False
        reloaded = load_trajectory(path)
        assert reloaded["schema"] == TRAJECTORY_SCHEMA
        assert len(reloaded["points"]) == 3

    def test_repo_trajectory_file_loads(self):
        # The committed BENCH file must always stay loadable.
        import glob

        for path in sorted(glob.glob("BENCH_*.json")):
            document = load_trajectory(path)
            assert document["schema"] == TRAJECTORY_SCHEMA
            assert document["points"]


class TestValidationErrors:
    def test_unknown_schema(self, tmp_path):
        path = str(tmp_path / "BENCH_bad.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"schema": "repro-bench-trajectory/9"}, handle)
        with pytest.raises(TrajectoryError, match="schema"):
            load_trajectory(path)

    def test_not_json(self, tmp_path):
        path = str(tmp_path / "BENCH_bad.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json")
        with pytest.raises(TrajectoryError, match="not JSON"):
            load_trajectory(path)

    def test_write_then_load(self, tmp_path):
        path = str(tmp_path / "BENCH_rt.json")
        document = migrate_v1(V1_DOCUMENT)
        write_trajectory(document, path)
        assert load_trajectory(path) == document
