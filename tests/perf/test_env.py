"""Environment capture: commit sha and the host fingerprint."""

from repro.perf.env import (
    capture_environment,
    git_sha,
    host_fingerprint,
    host_properties,
)


class TestGitSha:
    def test_shape_in_this_checkout(self):
        sha = git_sha()
        # The repo's tests run inside a checkout, so a sha is expected;
        # the contract elsewhere is None.
        assert sha is None or (
            len(sha) == 40 and all(c in "0123456789abcdef" for c in sha)
        )

    def test_none_outside_a_checkout(self, tmp_path):
        assert git_sha(str(tmp_path)) is None


class TestFingerprint:
    def test_stable_across_calls(self):
        assert host_fingerprint() == host_fingerprint()

    def test_twelve_hex_digits(self):
        fingerprint = host_fingerprint()
        assert len(fingerprint) == 12
        assert all(c in "0123456789abcdef" for c in fingerprint)

    def test_depends_on_properties(self):
        props = dict(host_properties())
        props["cpus"] = str(int(props["cpus"]) + 1)
        assert host_fingerprint(props) != host_fingerprint()

    def test_property_order_is_irrelevant(self):
        props = host_properties()
        reordered = dict(reversed(list(props.items())))
        assert host_fingerprint(props) == host_fingerprint(reordered)


class TestCaptureEnvironment:
    def test_block_shape(self):
        environment = capture_environment()
        assert set(environment) == {"commit", "fingerprint", "host"}
        assert environment["fingerprint"] == host_fingerprint()
        assert environment["host"] == host_properties()
