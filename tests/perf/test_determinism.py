"""Workload determinism: benchmark inputs are stable by construction.

Every corpus entry (the seven DaCapo analogues plus ``towers`` and
``fanout``) must produce a byte-identical fact set for the same seed
and scale across independent generator invocations — otherwise no two
benchmark runs measure the same input and the whole baseline/gate
machinery is comparing noise.
"""

import pytest

from repro.bench.workloads import DACAPO_NAMES, dacapo_program
from repro.frontend.factgen import generate_facts
from repro.perf.registry import CORPUS_NAMES, DEFAULT_REGISTRY


@pytest.mark.parametrize("name", CORPUS_NAMES)
def test_fact_digest_stable_across_invocations(name):
    definition = DEFAULT_REGISTRY.get(name)
    assert definition.fact_digest(1) == definition.fact_digest(1)


@pytest.mark.parametrize("name", DACAPO_NAMES)
def test_registry_agrees_with_direct_generation(name):
    # The registry route and the historical dacapo_program route must
    # describe the same program.
    direct = generate_facts(dacapo_program(name, 1)).digest()
    assert DEFAULT_REGISTRY.get(name).fact_digest(1) == direct


def test_scale_changes_the_digest():
    definition = DEFAULT_REGISTRY.get("bloat")
    assert definition.fact_digest(1) != definition.fact_digest(2)


def test_benchmarks_have_distinct_digests():
    digests = {
        name: DEFAULT_REGISTRY.get(name).fact_digest(1)
        for name in CORPUS_NAMES
    }
    assert len(set(digests.values())) == len(digests)


class TestFactSetDigest:
    def test_sensitive_to_rows(self):
        facts_a = generate_facts(dacapo_program("luindex", 1))
        facts_b = generate_facts(dacapo_program("luindex", 1))
        assert facts_a.digest() == facts_b.digest()
        facts_b.assign.add(("extra/x", "extra/y"))
        assert facts_a.digest() != facts_b.digest()

    def test_sensitive_to_auxiliary_maps(self):
        facts_a = generate_facts(dacapo_program("luindex", 1))
        facts_b = generate_facts(dacapo_program("luindex", 1))
        facts_b.class_of["extra/h"] = "Extra"
        assert facts_a.digest() != facts_b.digest()

    def test_insertion_order_is_irrelevant(self):
        facts = generate_facts(dacapo_program("luindex", 1))
        digest = facts.digest()
        rows = sorted(facts.assign)
        facts.assign.clear()
        for row in reversed(rows):
            facts.assign.add(row)
        assert facts.digest() == digest
