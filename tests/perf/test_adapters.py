"""Suite adapters: every surface certifies against the worklist solver.

These run real (tiny) workloads end to end — the point of the perf
subsystem is that a timed number is only reported next to a
bit-identical-parity verdict, so the tests assert certification, not
timing.
"""

import pytest

from repro.perf.adapters import (
    ADAPTERS,
    AdapterError,
    IncrementalAdapter,
    ParallelAdapter,
    adapter_for,
    relation_rows,
)
from repro.perf.registry import DEFAULT_REGISTRY


@pytest.fixture(scope="module")
def luindex():
    return DEFAULT_REGISTRY.get("luindex")


def _run(surface_or_adapter, definition, warmup=0, iterations=1):
    adapter = (
        adapter_for(surface_or_adapter)
        if isinstance(surface_or_adapter, str)
        else surface_or_adapter
    )
    return adapter.run(definition, "1-call", 1, warmup, iterations)


class TestLookup:
    def test_every_registered_surface_instantiates(self):
        for surface in ADAPTERS:
            assert adapter_for(surface).surface == surface

    def test_unknown_surface(self):
        with pytest.raises(AdapterError, match="unknown surface"):
            adapter_for("gpu")

    def test_parallel_needs_two_shards(self):
        with pytest.raises(AdapterError, match=">= 2 shards"):
            ParallelAdapter(1)


class TestWorklist(object):
    def test_certified_reference(self, luindex):
        result = _run("worklist", luindex, warmup=1, iterations=2)
        assert result.reference is True
        assert result.certified is True
        assert result.surface == "worklist"
        assert len(result.warmup_seconds) == 1
        assert len(result.steady_seconds) == 2
        assert result.phases["factgen"] > 0
        assert result.phases["solve"] == result.best()


class TestDatalogSurfaces:
    @pytest.mark.parametrize("surface", ["engine", "compiled", "kernel"])
    def test_certified_with_compile_phase(self, luindex, surface):
        result = _run(surface, luindex)
        assert result.certified is True
        assert result.phases["compile"] > 0
        assert result.phases["solve"] > 0
        assert result.reference is False


class TestKernelCost:
    def test_certified_with_reorder_metric(self, luindex):
        result = _run("kernel-cost", luindex)
        assert result.surface == "kernel-cost"
        assert result.certified is True
        # Planning is charged to the compile phase, not the solve.
        assert result.phases["compile"] > 0
        assert result.metrics["reordered_rules"] >= 0


class TestParallel:
    def test_two_shards_certified(self, luindex):
        result = _run(ParallelAdapter(2), luindex)
        assert result.surface == "parallel-2"
        assert result.certified is True
        assert result.metrics["cross_shard_probes_local"] == 0
        assert result.metrics["ownership_violations"] == 0


class TestIncremental:
    def test_churn_certified_against_scratch(self, luindex):
        result = _run(IncrementalAdapter(edits=4, seed=1), luindex)
        assert result.surface == "incremental"
        assert result.certified is True
        assert result.metrics["edits"] == 4

    def test_iterations_replay_identical_streams(self, luindex):
        result = _run(
            IncrementalAdapter(edits=3, seed=2), luindex,
            warmup=1, iterations=2,
        )
        assert result.certified is True
        assert len(result.steady_seconds) == 2


class TestRelationRows:
    def test_covers_the_six_relations(self, luindex):
        from repro.core.analysis import analyze
        from repro.core.config import config_by_name

        rows = relation_rows(
            analyze(luindex.facts(1), config_by_name("1-call"))
        )
        assert set(rows) == {
            "pts", "hpts", "call", "reach", "spts", "texc",
        }
