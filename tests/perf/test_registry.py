"""The benchmark registry: names, versions, and the two new entries."""

import pytest

from repro.bench.workloads import DACAPO_NAMES
from repro.perf.registry import (
    CORPUS_NAMES,
    DEFAULT_REGISTRY,
    EXTRA_NAMES,
    BenchmarkDef,
    BenchmarkRegistry,
    corpus_facts,
    corpus_program,
)


class TestDefaultRegistry:
    def test_contains_every_dacapo_analogue(self):
        for name in DACAPO_NAMES:
            assert name in DEFAULT_REGISTRY

    def test_contains_the_new_corpus_entries(self):
        assert "towers" in DEFAULT_REGISTRY
        assert "fanout" in DEFAULT_REGISTRY
        assert EXTRA_NAMES == ("towers", "fanout")

    def test_corpus_names_order(self):
        assert CORPUS_NAMES == DACAPO_NAMES + ("towers", "fanout")

    def test_every_entry_is_versioned(self):
        versions = DEFAULT_REGISTRY.versions()
        assert set(versions) == set(CORPUS_NAMES)
        assert all(v >= 1 for v in versions.values())

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            DEFAULT_REGISTRY.get("jruby")

    def test_towers_is_chain_deep(self):
        towers = DEFAULT_REGISTRY.get("towers").spec(1)
        fanout = DEFAULT_REGISTRY.get("fanout").spec(1)
        assert towers.chain_depth > fanout.chain_depth
        assert fanout.hierarchy_width > towers.hierarchy_width

    def test_scale_grows_the_program(self):
        small = corpus_facts("towers", 1)
        large = corpus_facts("towers", 2)
        assert (
            sum(large.counts().values()) > sum(small.counts().values())
        )


class TestRegistryMechanics:
    def _definition(self, name="demo"):
        from repro.bench.workloads import WorkloadSpec

        return BenchmarkDef(
            name=name, version=1, description="demo",
            build_spec=lambda s: WorkloadSpec(name, seed=5),
        )

    def test_duplicate_registration_rejected(self):
        registry = BenchmarkRegistry()
        registry.register(self._definition())
        with pytest.raises(ValueError, match="already registered"):
            registry.register(self._definition())

    def test_iteration_preserves_order(self):
        registry = BenchmarkRegistry()
        registry.register(self._definition("b"))
        registry.register(self._definition("a"))
        assert registry.names() == ("b", "a")


class TestCorpusHelpers:
    def test_corpus_program_solves(self):
        program = corpus_program("fanout", 1)
        assert program.main_class is not None

    def test_corpus_facts_nonempty(self):
        facts = corpus_facts("bloat", 1)
        assert sum(facts.counts().values()) > 0
