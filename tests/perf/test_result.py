"""RunResult: keys, steady-state discipline, serialisation."""

import pytest

from repro.perf.result import RunResult, results_by_key


def _result(**overrides):
    defaults = dict(
        benchmark="bloat",
        surface="kernel",
        configuration="1-call",
        scale=1,
        warmup_seconds=[0.9],
        steady_seconds=[0.5, 0.3, 0.4],
        phases={"factgen": 0.01, "solve": 0.3},
        certified=True,
    )
    defaults.update(overrides)
    return RunResult(**defaults)


class TestKey:
    def test_shape(self):
        assert _result().key == "bloat/kernel/1-call/s1"

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            results_by_key([_result(), _result()])

    def test_distinct_keys_indexed(self):
        indexed = results_by_key([
            _result(), _result(surface="worklist"),
        ])
        assert set(indexed) == {
            "bloat/kernel/1-call/s1", "bloat/worklist/1-call/s1",
        }


class TestSteadyStats:
    def test_best_is_min_of_steady(self):
        assert _result().best() == 0.3

    def test_warmup_never_enters_stats(self):
        # The warmup sample (0.9) is worse than every steady sample;
        # if it leaked, worst would be 0.9.
        stats = _result().steady_stats()
        assert stats["n"] == 3
        assert stats["worst"] == 0.5
        assert stats["best"] == 0.3

    def test_empty_steady(self):
        result = _result(steady_seconds=[], warmup_seconds=[])
        assert result.best() == 0.0
        assert result.steady_stats()["n"] == 0


class TestSerialisation:
    def test_roundtrip(self):
        original = _result(metrics={"facts": 100}, notes=["note"])
        entry = original.to_json()
        restored = RunResult.from_json(entry)
        assert restored.key == original.key
        assert restored.steady_seconds == [
            round(s, 6) for s in original.steady_seconds
        ]
        assert restored.certified is True
        assert restored.metrics == {"facts": 100}
        assert restored.notes == ["note"]

    def test_entry_shape(self):
        entry = _result().to_json()
        assert entry["key"] == "bloat/kernel/1-call/s1"
        assert entry["warmup"]["n"] == 1
        assert entry["steady"]["n"] == 3
        assert entry["steady"]["best"] == 0.3
        assert entry["phases"] == {"factgen": 0.01, "solve": 0.3}

    def test_phases_follow_reporting_order(self):
        entry = _result(
            phases={"solve": 0.3, "compile": 0.1, "factgen": 0.01}
        ).to_json()
        assert list(entry["phases"]) == ["factgen", "compile", "solve"]
