"""The ``repro bench`` CLI: run, gate, record, trend, lint self-check."""

import json
import os

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def bench_doc(tmp_path_factory):
    """One micro-suite run shared by the read-only CLI tests."""
    path = str(tmp_path_factory.mktemp("bench") / "bench.json")
    assert main(["bench", "run", "--suite", "micro", "--quiet",
                 "--json", path]) == 0
    return path


class TestBenchRun:
    def test_emits_a_valid_document(self, bench_doc):
        with open(bench_doc, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["schema"] == "repro-bench/1"
        keys = [e["key"] for e in document["body"]["entries"]]
        assert keys == [
            "luindex/worklist/1-call/s1",
            "luindex/engine/1-call/s1",
        ]

    def test_progress_and_summary(self, tmp_path, capsys):
        assert main(["bench", "run", "--suite", "micro"]) == 0
        out = capsys.readouterr().out
        assert "running luindex/worklist/1-call/s1" in out
        assert "2/2 certified" in out


class TestBenchGate:
    def test_update_baseline_then_pass(self, bench_doc, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        assert main(["bench", "gate", bench_doc,
                     "--baseline", baseline, "--update-baseline"]) == 0
        assert main(["bench", "gate", bench_doc,
                     "--baseline", baseline]) == 0

    def test_injected_slowdown_exits_nonzero(self, bench_doc, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        main(["bench", "gate", bench_doc,
              "--baseline", baseline, "--update-baseline"])
        assert main(["bench", "gate", bench_doc,
                     "--baseline", baseline,
                     "--inject-slowdown", "10"]) == 1

    def test_missing_baseline_reports(self, bench_doc, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["bench", "gate", bench_doc,
                     "--baseline", missing]) == 1
        assert "nope.json" in capsys.readouterr().err

    def test_bad_entry_tolerance_rejected(self, bench_doc, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        main(["bench", "gate", bench_doc,
              "--baseline", baseline, "--update-baseline"])
        assert main(["bench", "gate", bench_doc,
                     "--baseline", baseline,
                     "--entry-tolerance", "nonsense"]) == 1

    def test_compare_renders(self, bench_doc, capsys):
        assert main(["bench", "compare", bench_doc, bench_doc]) == 0
        assert "absolute mode" in capsys.readouterr().out


class TestBenchRecord:
    def test_records_a_certified_point(self, bench_doc, tmp_path, capsys):
        trajectory = str(tmp_path / "BENCH_x.json")
        assert main(["bench", "record", bench_doc,
                     "--trajectory", trajectory]) == 0
        assert "recorded certified point" in capsys.readouterr().out
        assert main(["bench", "trend", trajectory]) == 0

    def test_duplicate_point_rejected(self, bench_doc, tmp_path):
        trajectory = str(tmp_path / "BENCH_x.json")
        assert main(["bench", "record", bench_doc,
                     "--trajectory", trajectory]) == 0
        assert main(["bench", "record", bench_doc,
                     "--trajectory", trajectory]) == 1

    def test_uncertified_document_refused(self, bench_doc, tmp_path,
                                          capsys):
        with open(bench_doc, encoding="utf-8") as handle:
            document = json.load(handle)
        for entry in document["body"]["entries"]:
            entry["certified"] = False
        from repro.perf.document import _digest

        document["digest"] = _digest(document["body"])
        tampered = str(tmp_path / "uncertified.json")
        with open(tampered, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        trajectory = str(tmp_path / "BENCH_y.json")
        assert main(["bench", "record", tampered,
                     "--trajectory", trajectory]) == 1
        assert "refusing" in capsys.readouterr().err
        assert not os.path.exists(trajectory)


class TestLintSelfCheck:
    def test_lint_accepts_a_bench_document(self, bench_doc, capsys):
        assert main(["lint", bench_doc]) == 0
        out = capsys.readouterr().out
        assert "bench document ok" in out
        assert "(verified)" in out

    def test_lint_rejects_a_tampered_document(self, bench_doc, tmp_path,
                                              capsys):
        with open(bench_doc, encoding="utf-8") as handle:
            document = json.load(handle)
        document["body"]["entries"][0]["steady"]["seconds"][0] = 0.0
        tampered = str(tmp_path / "tampered.json")
        with open(tampered, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        assert main(["lint", tampered]) == 1
        assert "digest mismatch" in capsys.readouterr().err

    def test_trajectory_files_do_not_match_the_heuristic(self):
        from repro.cli import _looks_like_bench_document

        source = json.dumps({"schema": "repro-bench-trajectory/2"})
        assert not _looks_like_bench_document("BENCH_x.json", source)
