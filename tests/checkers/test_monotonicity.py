"""The acceptance sweep: precision monotonicity and abstraction parity.

Two properties, checked over figure1 / figure5 / the event-bus program,
the full paper configuration matrix, and both abstractions:

* per checker, every context-sensitive configuration's finding
  identities are a subset of the insensitive baseline's — precision can
  only *remove* client findings;
* at equal ``(m, h)``, the context-string and transformer-string
  abstractions produce bit-identical findings (Theorem 6.2 lifted to
  the client layer), measured by ``CheckReport.findings_digest``.
"""

import pytest

from repro.bench.checkbench import (
    ABSTRACTIONS,
    AUDIT_CONFIGURATIONS,
    AUDIT_SCHEMA,
    format_audit,
    run_precision_audit,
)
from repro.checkers import checker_names, run_checks
from repro.core.analysis import analyze
from repro.core.config import config_by_name
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5

from tests.checkers.test_checks import _example_program

PROGRAMS = {
    "figure1": FIGURE_1,
    "figure5": FIGURE_5,
    "eventbus": _example_program(),
}

CONFIGURATIONS = AUDIT_CONFIGURATIONS  # insensitive first, then paper's


@pytest.fixture(scope="module", params=sorted(PROGRAMS))
def program_facts(request):
    return request.param, facts_from_source(PROGRAMS[request.param])


def _reports(facts):
    """Every configuration × abstraction cell's report."""
    out = {}
    for configuration in CONFIGURATIONS:
        for abstraction in ABSTRACTIONS:
            config = config_by_name(configuration, abstraction=abstraction)
            out[(configuration, abstraction)] = run_checks(
                analyze(facts, config), facts
            )
    return out


@pytest.fixture(scope="module")
def cell_reports(program_facts):
    return _reports(program_facts[1])


def test_precision_only_removes_findings(program_facts, cell_reports):
    name, _facts = program_facts
    for abstraction in ABSTRACTIONS:
        baseline = cell_reports[("insensitive", abstraction)].by_checker()
        for configuration in CONFIGURATIONS:
            cell = cell_reports[(configuration, abstraction)].by_checker()
            for checker in checker_names():
                found = {f.identity for f in cell.get(checker, ())}
                allowed = {f.identity for f in baseline.get(checker, ())}
                assert found <= allowed, (
                    f"{name}/{configuration}/{abstraction}: {checker}"
                    f" added findings {sorted(found - allowed)}"
                )


def test_abstractions_agree_bit_for_bit(program_facts, cell_reports):
    name, _facts = program_facts
    for configuration in CONFIGURATIONS:
        digests = {
            abstraction:
            cell_reports[(configuration, abstraction)].findings_digest()
            for abstraction in ABSTRACTIONS
        }
        assert len(set(digests.values())) == 1, (
            f"{name}/{configuration}: abstractions disagree: {digests}"
        )


def test_audit_document_agrees_with_the_sweep(program_facts, cell_reports):
    _name, facts = program_facts
    audit = run_precision_audit(facts)
    assert audit["schema"] == AUDIT_SCHEMA
    assert audit["baseline"] == "insensitive"
    assert audit["checkers"] == list(checker_names())
    assert all(audit["monotone"].values())
    assert audit["abstractions_agree"]
    # The audit's cell counts are the sweep's finding counts.
    assert len(audit["cells"]) == len(CONFIGURATIONS) * len(ABSTRACTIONS)
    for cell in audit["cells"]:
        report = cell_reports[(cell["configuration"], cell["abstraction"])]
        assert cell["total"] == len(report.findings)
        by_checker = report.by_checker()
        for checker, count in cell["counts"].items():
            assert count == len(by_checker.get(checker, ()))
    # The rendered table carries both verdicts.
    text = format_audit(audit)
    assert "monotone vs insensitive" in text
    assert "abstractions agree" in text
