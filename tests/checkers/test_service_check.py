"""`AnalysisService.check`: serving-mode parity, caching, eviction.

The acceptance criterion: a live solve, a loaded snapshot, a demand-only
service grown on demand, and a service patched via ``FactDelta`` must
all emit byte-identical ``repro-check/1`` report bodies (equal digests);
only the ``generation`` header distinguishes them.
"""

import pytest

from repro.checkers import CheckConfig, CheckReport
from repro.core.config import config_by_name
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_1
from repro.incremental import FactDelta
from repro.service.server import handle_request
from repro.service.service import AnalysisService

CONFIG = config_by_name("2-object+H")


def _facts():
    return facts_from_source(FIGURE_1)


def _delta():
    # Route h2 into T.id as well: pts changes, the call graph does not.
    return FactDelta().add("assign", ("T.main/y", "T.main/x"))


class TestServingModeParity:
    def test_live_snapshot_demand_and_patched_reports_agree(self, tmp_path):
        live = AnalysisService.from_facts(_facts(), CONFIG, solve=True)
        live_report = live.check()

        path = str(tmp_path / "figure1.snap")
        live.save_snapshot(path)
        loaded = AnalysisService.from_snapshot(path)
        loaded_report = loaded.check()

        demand = AnalysisService.from_facts(_facts(), CONFIG, solve=False)
        demand_report = demand.check()

        assert live_report.digest() == loaded_report.digest()
        assert live_report.digest() == demand_report.digest()
        assert live_report.body() == demand_report.body()

    def test_patched_service_matches_a_fresh_solve(self, tmp_path):
        incremental = AnalysisService.from_facts(
            _facts(), CONFIG, solve=True, incremental=True
        )
        incremental.check()  # warm the check cache pre-edit
        incremental.apply_delta(_delta())
        patched_report = incremental.check()

        # The reference: the edited program, solved from scratch.
        reference_facts = _facts()
        _delta().apply_to(reference_facts)
        reference = AnalysisService.from_facts(
            reference_facts, CONFIG, solve=True
        )
        assert patched_report.digest() == reference.check().digest()

        # A snapshot-loaded service patched with the same delta (the
        # upgrade-solve path) lands on the same report too.
        pristine = AnalysisService.from_facts(_facts(), CONFIG, solve=True)
        path = str(tmp_path / "figure1.snap")
        pristine.save_snapshot(path)
        loaded = AnalysisService.from_snapshot(path)
        loaded.apply_delta(_delta())
        assert loaded.check().digest() == patched_report.digest()

    def test_generation_stamps_the_header_not_the_digest(self):
        service = AnalysisService.from_facts(
            _facts(), CONFIG, solve=True, incremental=True
        )
        assert service.check().generation == 0
        service.apply_delta(_delta())
        report = service.check()
        assert report.generation == 1
        assert report.to_json()["generation"] == 1


class TestCheckCache:
    def test_second_check_reuses_every_checker(self):
        service = AnalysisService.from_facts(_facts(), CONFIG, solve=True)
        first = service.check()
        assert service.metrics.checkers_run == len(first.checks)
        assert service.metrics.checkers_reused == 0
        second = service.check()
        assert second.digest() == first.digest()
        assert service.metrics.checkers_run == len(first.checks)
        assert service.metrics.checkers_reused == len(first.checks)
        stats = service.metrics.as_dict()["checks"]
        assert stats["runs"] == 2
        assert stats["checkers_reused"] == len(first.checks)

    def test_changed_check_config_bypasses_the_cache(self):
        service = AnalysisService.from_facts(_facts(), CONFIG, solve=True)
        service.check()
        service.check(check_config=CheckConfig(thread_roots=("T.id",)))
        # Different knobs: nothing may be served from the old entries.
        assert service.metrics.checkers_reused == 0
        assert service.metrics.checkers_run == 2 * 5

    def test_delta_reruns_only_touched_checkers(self):
        service = AnalysisService.from_facts(
            _facts(), CONFIG, solve=True, incremental=True
        )
        baseline = service.check()
        ran_before = service.metrics.checkers_run
        result = service.apply_delta(_delta())
        assert not result.fallback  # else the test measures nothing
        service.check()
        reran = service.metrics.checkers_run - ran_before
        # An assign edit changes pts but not the call graph: checkers
        # whose inputs exclude the changed relations keep their cache.
        assert 0 < reran < len(baseline.checks)
        assert service.metrics.checkers_reused >= (
            len(baseline.checks) - reran
        )

    def test_fallback_update_clears_the_whole_cache(self, tmp_path):
        pristine = AnalysisService.from_facts(_facts(), CONFIG, solve=True)
        path = str(tmp_path / "figure1.snap")
        pristine.save_snapshot(path)
        loaded = AnalysisService.from_snapshot(path)
        count = len(loaded.check().checks)
        # A snapshot service has no incremental engine: the first update
        # is an upgrade solve (fallback), which loses the change sets.
        result = loaded.apply_delta(_delta())
        assert result.fallback
        loaded.check()
        assert loaded.metrics.checkers_run == 2 * count
        assert loaded.metrics.checkers_reused == 0

    def test_subset_check_only_runs_selected_checkers(self):
        service = AnalysisService.from_facts(_facts(), CONFIG, solve=True)
        report = service.check(checks=["races", "CK1"])
        assert report.checks == ("downcast", "races")
        assert service.metrics.checkers_run == 2


class TestServerCheckOp:
    def test_check_op_returns_a_verifiable_document(self):
        service = AnalysisService.from_facts(_facts(), CONFIG, solve=True)
        response = handle_request(service, {"op": "check", "id": 7})
        assert response["ok"], response
        assert response["id"] == 7
        document = response["result"]
        assert document["schema"] == "repro-check/1"
        report = CheckReport.from_json(document)  # digest verifies
        assert report.checks == (
            "downcast", "devirt", "races", "leaks", "deadcode"
        )

    def test_check_op_accepts_selection_and_config(self):
        service = AnalysisService.from_facts(_facts(), CONFIG, solve=True)
        response = handle_request(service, {
            "op": "check", "id": 1, "checks": ["leaks"],
            "taint_sources": ["h1"], "thread_roots": ["T.id"],
        })
        assert response["ok"], response
        report = CheckReport.from_json(response["result"])
        assert report.checks == ("leaks",)
        assert report.check_config.taint_sources == ("h1",)
        assert report.check_config.thread_roots == ("T.id",)

    def test_check_op_reports_errors_without_dying(self):
        service = AnalysisService.from_facts(_facts(), CONFIG, solve=True)
        response = handle_request(
            service, {"op": "check", "id": 2, "checks": ["nonsense"]}
        )
        assert response["ok"] is False
        assert "unknown checker" in response["error"]


class TestDemandOnlyCoverage:
    def test_demand_service_answers_check_without_prior_queries(self):
        service = AnalysisService.from_facts(_facts(), CONFIG, solve=False)
        report = service.check()
        assert report.findings is not None
        assert set(report.metrics) == set(report.checks)

    def test_check_after_partial_queries_still_whole_program(self):
        demand = AnalysisService.from_facts(_facts(), CONFIG, solve=False)
        demand.points_to("T.main/x1")  # a narrow slice first
        full = AnalysisService.from_facts(_facts(), CONFIG, solve=True)
        assert demand.check().digest() == full.check().digest()
