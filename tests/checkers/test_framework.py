"""Framework-level behaviour: severities, findings, reports, registry."""

import json

import pytest

from repro.checkers import (
    REPORT_SCHEMA,
    CheckConfig,
    CheckError,
    CheckReport,
    Finding,
    Severity,
    all_checkers,
    checker_names,
    describe_report,
    get_checkers,
    run_checks,
)
from repro.core.analysis import analyze
from repro.core.config import config_by_name
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_1


def _finding(code="CK301", subject="s", severity=Severity.WARNING):
    return Finding(
        code=code, checker="races", severity=severity, subject=subject,
        message="m", witness=(("pts", "v", "h"),),
    )


def _report(findings=(), generation=0, seconds=0.0):
    return CheckReport(
        config_description="insensitive/context-string",
        checks=("races",),
        findings=tuple(findings),
        metrics={"races": {"pairs": len(findings)}},
        generation=generation,
        seconds=seconds,
    )


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_parse_round_trip(self):
        for severity in Severity:
            assert Severity.parse(severity.label) is severity
            assert Severity.parse(severity.label.upper()) is severity

    def test_parse_rejects_unknown(self):
        with pytest.raises(CheckError, match="unknown severity"):
            Severity.parse("fatal")


class TestFinding:
    def test_identity_and_sort_key(self):
        finding = _finding()
        assert finding.identity == ("CK301", "s")
        assert finding.sort_key() == ("CK301", "s")

    def test_json_round_trip(self):
        finding = _finding()
        assert Finding.from_json(finding.to_json()) == finding

    def test_from_json_rejects_missing_fields(self):
        with pytest.raises(CheckError, match="malformed finding"):
            Finding.from_json({"code": "CK301"})

    def test_explain_without_provenance_lists_witnesses(self):
        facts = facts_from_source(FIGURE_1)
        result = analyze(facts, config_by_name("insensitive"))
        (var, heap) = sorted(result.pts_ci())[0]
        finding = Finding(
            code="CK999", checker="races", severity=Severity.INFO,
            subject="x", message="m", witness=(("pts", var, heap),),
        )
        text = finding.explain(result)
        assert "CK999" in text
        assert "track_provenance" in text

    def test_explain_with_provenance_expands_witnesses(self):
        from dataclasses import replace

        facts = facts_from_source(FIGURE_1)
        config = replace(
            config_by_name("insensitive"), track_provenance=True
        )
        result = analyze(facts, config)
        (var, heap) = sorted(result.pts_ci())[0]
        finding = Finding(
            code="CK999", checker="races", severity=Severity.INFO,
            subject="x", message="m", witness=(("pts", var, heap),),
        )
        text = finding.explain(result, max_depth=4)
        assert "track_provenance" not in text
        assert heap in text


class TestRegistry:
    def test_builtins_registered_in_order(self):
        names = checker_names()
        assert names == ("downcast", "devirt", "races", "leaks", "deadcode")
        prefixes = [c.prefix for c in all_checkers()]
        assert prefixes == ["CK1", "CK2", "CK3", "CK4", "CK5"]

    def test_every_checker_declares_inputs(self):
        for checker in all_checkers():
            assert checker.inputs, checker.name
            assert checker.codes, checker.name

    def test_get_checkers_none_returns_all(self):
        assert get_checkers(None) == all_checkers()
        assert get_checkers([]) == all_checkers()

    @pytest.mark.parametrize("selector", ["races", "CK3", "CK301", "CK3xx"])
    def test_get_checkers_by_name_or_code(self, selector):
        selected = get_checkers([selector])
        assert [c.name for c in selected] == ["races"]

    def test_get_checkers_preserves_registry_order(self):
        selected = get_checkers(["races", "downcast"])
        assert [c.name for c in selected] == ["downcast", "races"]

    def test_get_checkers_rejects_unknown(self):
        with pytest.raises(CheckError, match="unknown checker"):
            get_checkers(["nonsense"])
        with pytest.raises(CheckError, match="unknown checker"):
            get_checkers(["CK9"])


class TestCheckReport:
    def test_findings_sorted_deterministically(self):
        report = _report([_finding(subject="b"), _finding(subject="a")])
        assert [f.subject for f in report.findings] == ["a", "b"]

    def test_counts_and_max_severity(self):
        report = _report([
            _finding(subject="a", severity=Severity.INFO),
            _finding(subject="b", severity=Severity.ERROR),
        ])
        counts = report.counts_by_severity()
        assert counts == {"info": 1, "warning": 0, "error": 1}
        assert report.max_severity() is Severity.ERROR
        assert report.count("CK3") == 2

    def test_failed_gating(self):
        report = _report([_finding(severity=Severity.WARNING)])
        assert report.failed(Severity.WARNING)
        assert report.failed(Severity.INFO)
        assert not report.failed(Severity.ERROR)
        assert not report.failed(None)  # "never"
        assert not _report().failed(Severity.INFO)  # no findings

    def test_json_round_trip(self):
        report = _report([_finding()], generation=3, seconds=0.25)
        document = report.to_json()
        assert document["schema"] == REPORT_SCHEMA
        decoded = CheckReport.from_json(document)
        assert decoded.findings == report.findings
        assert decoded.generation == 3
        assert decoded.digest() == report.digest()

    def test_digest_excludes_generation_and_seconds(self):
        baseline = _report([_finding()])
        relabelled = _report([_finding()], generation=7, seconds=9.9)
        assert baseline.digest() == relabelled.digest()

    def test_findings_digest_excludes_config_description(self):
        a = _report([_finding()])
        b = _report([_finding()])
        b.config_description = "2-object+H/transformer-string"
        assert a.digest() != b.digest()
        assert a.findings_digest() == b.findings_digest()

    def test_from_json_rejects_wrong_schema(self):
        document = _report().to_json()
        document["schema"] = "repro-check/999"
        with pytest.raises(CheckError, match="schema"):
            CheckReport.from_json(document)

    def test_from_json_detects_tampered_body(self):
        document = _report([_finding()]).to_json()
        document["body"]["findings"][0]["subject"] = "edited"
        with pytest.raises(CheckError, match="digest mismatch"):
            CheckReport.from_json(document)

    def test_from_json_detects_inconsistent_counts(self):
        document = _report([_finding()]).to_json()
        document["body"]["counts"]["error"] += 1
        import hashlib

        canonical = json.dumps(
            document["body"], sort_keys=True, separators=(",", ":"),
            ensure_ascii=True,
        )
        document["digest"] = (
            "sha256:" + hashlib.sha256(canonical.encode()).hexdigest()
        )
        with pytest.raises(CheckError, match="counts disagree"):
            CheckReport.from_json(document)

    def test_render_mentions_findings_and_metrics(self):
        report = _report([_finding()])
        text = report.render()
        assert "CK301" in text
        assert "[races]" in text
        assert "1 finding" in report.summary()


class TestDescribeReport:
    def test_round_trip_through_file(self, tmp_path):
        facts = facts_from_source(FIGURE_1)
        result = analyze(facts, config_by_name("2-object+H"))
        report = run_checks(result, facts)
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report.to_json()))
        summary = describe_report(str(path))
        assert summary["schema"] == REPORT_SCHEMA
        assert summary["digest"] == report.digest()

    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text("not json")
        with pytest.raises(CheckError):
            describe_report(str(path))


class TestRunChecks:
    def test_selects_checkers_and_stamps_generation(self):
        facts = facts_from_source(FIGURE_1)
        result = analyze(facts, config_by_name("insensitive"))
        report = run_checks(result, facts, checks=["CK2"], generation=5)
        assert report.checks == ("devirt",)
        assert report.generation == 5
        assert "devirt" in report.metrics

    def test_default_runs_every_checker(self):
        facts = facts_from_source(FIGURE_1)
        result = analyze(facts, config_by_name("insensitive"))
        report = run_checks(result, facts)
        assert report.checks == checker_names()
        assert set(report.metrics) == set(checker_names())

    def test_check_config_lands_in_body(self):
        facts = facts_from_source(FIGURE_1)
        result = analyze(facts, config_by_name("insensitive"))
        config = CheckConfig(thread_roots=("T.id",), taint_sources=("T",))
        report = run_checks(result, facts, config=config)
        body = report.body()
        assert body["check_config"]["thread_roots"] == ["T.id"]
        assert body["check_config"]["taint_sources"] == ["T"]
