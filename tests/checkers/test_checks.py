"""Per-checker behaviour of the builtin client analyses.

The richest fixture is the extended event-bus program shipped as
``examples/client_checkers.py`` — the tests import its ``PROGRAM``
constant so the example and the suite can never drift apart.
"""

import importlib.util
import os

import pytest

from repro.checkers import CheckConfig, run_checks
from repro.core.analysis import analyze
from repro.core.config import config_by_name
from repro.frontend.factgen import facts_from_source

_EXAMPLE = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir,
    "examples", "client_checkers.py",
)


def _example_program() -> str:
    spec = importlib.util.spec_from_file_location(
        "client_checkers_example", _EXAMPLE
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.PROGRAM


@pytest.fixture(scope="module")
def eventbus_facts():
    return facts_from_source(_example_program())


def _report(facts, configuration="insensitive", checks=None,
            config=CheckConfig()):
    result = analyze(facts, config_by_name(configuration))
    return run_checks(result, facts, checks=checks, config=config)


class TestDowncastChecker:
    def test_registry_conflation_fires_ck101_when_insensitive(
        self, eventbus_facts
    ):
        report = _report(eventbus_facts, "insensitive", checks=["downcast"])
        assert [f.identity for f in report.findings] == [
            ("CK101", "cReplay")
        ]
        finding = report.findings[0]
        # The witness is the CI points-to evidence behind the finding.
        assert all(fact[0] == "pts" for fact in finding.witness)
        assert report.metrics["downcast"]["unsafe_sites"] == 1

    def test_object_sensitivity_removes_ck101(self, eventbus_facts):
        report = _report(eventbus_facts, "2-object+H", checks=["downcast"])
        assert report.findings == ()
        assert report.metrics["downcast"]["unsafe_sites"] == 0

    def test_type_sensitivity_conflates_same_typed_registries(
        self, eventbus_facts
    ):
        # Both registries have type Registry: merging by type brings the
        # conflation (and the finding) back — the paper's precision
        # hierarchy made client-visible.
        report = _report(eventbus_facts, "2-type+H", checks=["downcast"])
        assert [f.identity for f in report.findings] == [
            ("CK101", "cReplay")
        ]

    def test_provably_bad_receiver_escalates_to_ck102(self):
        facts = facts_from_source("""
        class Box {
            Object slot;
            void put(Object o) { slot = o; }
            Object get() { Object r = slot; return r; }
        }
        class Plain { }
        class App {
            public static void main(String[] args) {
                Box box = new Box(); // hBox
                Plain p = new Plain(); // hPlain
                box.put(p); // c1
                Object got = box.get(); // c2
                Object out = got.handle(p); // cBad
            }
        }
        """)
        report = _report(facts, checks=["downcast"])
        (finding,) = report.findings
        assert finding.identity == ("CK102", "cBad")
        assert finding.severity.label == "error"


class TestDevirtualizationChecker:
    def test_monomorphic_program_reports_nothing(self, eventbus_facts):
        report = _report(eventbus_facts, "insensitive", checks=["devirt"])
        assert report.findings == ()
        metrics = report.metrics["devirt"]
        assert metrics["polymorphic"] == 0
        assert metrics["monomorphic"] == metrics["virtual_sites"]

    def test_polymorphic_site_reports_ck201_with_call_witness(self):
        facts = facts_from_source("""
        class Handler { Object handle(Object e) { return e; } }
        class Logger extends Handler {
            Object handle(Object e) { Object s = e; return s; }
        }
        class Box {
            Handler slot;
            void put(Handler h) { slot = h; }
            Handler get() { Handler r = slot; return r; }
        }
        class App {
            public static void main(String[] args) {
                Box box = new Box(); // hBox
                Handler plain = new Handler(); // hPlain
                Logger logger = new Logger(); // hLogger
                box.put(plain); // c1
                box.put(logger); // c2
                Handler h = box.get(); // c3
                Object out = h.handle(plain); // cPoly
            }
        }
        """)
        report = _report(facts, checks=["devirt"])
        (finding,) = report.findings
        assert finding.identity == ("CK201", "cPoly")
        assert set(finding.witness) == {
            ("call", "cPoly", "Handler.handle"),
            ("call", "cPoly", "Logger.handle"),
        }
        assert report.metrics["devirt"]["polymorphic"] == 1


class TestRaceChecker:
    def test_worker_thread_races_on_shared_bus(self, eventbus_facts):
        report = _report(eventbus_facts, "insensitive", checks=["races"])
        fields = {f.subject.split("|")[0] for f in report.findings}
        # The bus's `last` is written from both roots; `handler` is
        # written by main and read under the worker's publish.
        assert "last" in fields
        assert "handler" in fields
        assert report.metrics["races"]["thread_roots"] == 2
        assert report.metrics["races"]["races"] == len(report.findings) == 4

    def test_races_survive_precision(self, eventbus_facts):
        insensitive = _report(eventbus_facts, "insensitive",
                              checks=["races"])
        precise = _report(eventbus_facts, "2-object+H", checks=["races"])
        assert (
            {f.identity for f in precise.findings}
            == {f.identity for f in insensitive.findings}
        )

    def test_extra_thread_roots_create_races(self):
        facts = facts_from_source("""
        class Holder {
            Object v;
            void set(Object o) { v = o; }
            Object get() { Object r = v; return r; }
        }
        class App {
            static Holder shared;
            public static void main(String[] args) {
                Holder h = new Holder(); // hHolder
                App.shared = h;
                Object o = new Object(); // hO
                h.set(o); // c1
                Object seen = App.worker(h); // c2
            }
            static Object worker(Holder h) {
                Object o2 = new Object(); // hO2
                h.set(o2); // c3
                Object r = h.get(); // c4
                return r;
            }
        }
        """)
        # Without extra roots there is a single thread: no races.
        quiet = _report(facts, checks=["races"])
        assert quiet.findings == ()
        # Declaring the worker a thread root makes the Holder accesses
        # race between main and the worker.
        rooted = _report(
            facts, checks=["races"],
            config=CheckConfig(thread_roots=("App.worker",)),
        )
        assert rooted.metrics["races"]["thread_roots"] == 2
        assert {f.code for f in rooted.findings} == {"CK301"}
        assert all(f.subject.startswith("v|") for f in rooted.findings)


class TestLeakChecker:
    def test_static_field_retention_reports_ck401(self, eventbus_facts):
        report = _report(eventbus_facts, "insensitive", checks=["leaks"])
        assert [f.identity for f in report.findings] == [
            ("CK401", "Config.theme<-hTheme")
        ]

    def test_taint_sources_filter_by_label_and_type(self, eventbus_facts):
        by_label = _report(
            eventbus_facts, checks=["leaks"],
            config=CheckConfig(taint_sources=("hTheme",)),
        )
        assert [f.subject for f in by_label.findings] == [
            "Config.theme<-hTheme"
        ]
        by_type = _report(
            eventbus_facts, checks=["leaks"],
            config=CheckConfig(taint_sources=("Config",)),
        )
        assert [f.subject for f in by_type.findings] == [
            "Config.theme<-hTheme"
        ]
        unrelated = _report(
            eventbus_facts, checks=["leaks"],
            config=CheckConfig(taint_sources=("hClick",)),
        )
        assert unrelated.findings == ()


class TestDeadCodeChecker:
    def test_unreachable_methods_reported(self, eventbus_facts):
        report = _report(eventbus_facts, "insensitive", checks=["deadcode"])
        subjects = {f.subject for f in report.findings}
        # Debug.dump is never called; no Handler (base) is allocated, so
        # Handler.handle never receives a receiver.
        assert subjects == {"Debug.dump", "Handler.handle"}
        assert all(f.severity.label == "info" for f in report.findings)
        metrics = report.metrics["deadcode"]
        assert metrics["dead"] == 2
        assert metrics["declared"] == metrics["reachable"] + metrics["dead"]
