"""Client-checker suite tests."""
