"""Tests for the L_F grammar and the generic CFL-reachability solver."""

import pytest

from repro.cfl.grammar import CFLSolver, Grammar, Production, bar, lf_grammar


class TestBar:
    def test_involutive(self):
        assert bar("assign") == "assign_bar"
        assert bar(bar("assign")) == "assign"

    def test_field_labels(self):
        assert bar("store[f]") == "store[f]_bar"


class TestGrammarConstruction:
    def test_productions_normalized(self):
        grammar = lf_grammar(["f", "g"])
        assert all(1 <= len(p.rhs) <= 2 for p in grammar.productions)

    def test_field_instantiation(self):
        grammar = lf_grammar(["f"])
        symbols = grammar.symbols()
        assert "store[f]" in symbols
        assert "load[f]_bar" in symbols

    def test_no_fields(self):
        grammar = lf_grammar([])
        assert "flows" in grammar.symbols()

    def test_unnormalized_production_rejected(self):
        with pytest.raises(ValueError):
            Production("a", ("b", "c", "d"))
        with pytest.raises(ValueError):
            Production("a", ())


class TestGenericSolver:
    def test_balanced_parentheses(self):
        # matched → ( matched ) | matched matched | ε is not directly
        # expressible (ε); use: m → o c | o mc ; mc → m c  (one-or-more).
        grammar = Grammar(
            (
                Production("m", ("open", "close")),
                Production("m", ("open", "mc")),
                Production("mc", ("m", "close")),
                Production("m", ("m", "m")),
            )
        )
        solver = CFLSolver(grammar)
        edges = {
            ("1", "open", "2"),
            ("2", "open", "3"),
            ("3", "close", "4"),
            ("4", "close", "5"),
        }
        derived = solver.solve(edges)
        assert ("2", "m", "4") in derived
        assert ("1", "m", "5") in derived
        assert ("1", "m", "4") not in derived

    def test_unary_chains(self):
        grammar = Grammar(
            (
                Production("b", ("a",)),
                Production("c", ("b",)),
            )
        )
        derived = CFLSolver(grammar).solve({("x", "a", "y")})
        assert ("x", "c", "y") in derived

    def test_transitive_closure_grammar(self):
        grammar = Grammar(
            (
                Production("path", ("edge",)),
                Production("path", ("path", "path")),
            )
        )
        edges = {(str(i), "edge", str(i + 1)) for i in range(6)}
        derived = CFLSolver(grammar).solve(edges)
        paths = {(s, t) for (s, sym, t) in derived if sym == "path"}
        assert len(paths) == 21

    def test_flowsto_through_field(self):
        # h -new-> w ; w -store[f]-> x ; h2 -new-> x ; h2 -new-> y ;
        # y -load[f]-> z : h flows to z.
        grammar = lf_grammar(["f"])
        edges = set()
        for (s, label, t) in [
            ("h", "new", "w"),
            ("w", "store[f]", "x"),
            ("h2", "new", "x"),
            ("h2", "new", "y"),
            ("y", "load[f]", "z"),
        ]:
            edges.add((s, label, t))
            edges.add((t, bar(label), s))
        derived = CFLSolver(grammar).solve(edges)
        assert ("h", "flowsto", "z") in derived
        assert ("h2", "flowsto", "z") not in derived

    def test_mismatched_fields_blocked(self):
        grammar = lf_grammar(["f", "g"])
        edges = set()
        for (s, label, t) in [
            ("h", "new", "w"),
            ("w", "store[f]", "x"),
            ("h2", "new", "x"),
            ("h2", "new", "y"),
            ("y", "load[g]", "z"),
        ]:
            edges.add((s, label, t))
            edges.add((t, bar(label), s))
        derived = CFLSolver(grammar).solve(edges)
        assert ("h", "flowsto", "z") not in derived
