"""Tests for PAG construction (paper Figure 2)."""

from repro.cfl.pag import Edge, analysis_call_graph, build_pag, cha_call_graph
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_1

SIMPLE = """
class Box { Object f; }
class M {
    static Object id(Object p) { return p; }
    public static void main(String[] args) {
        Box b = new Box(); // hb
        Object o = new M(); // ho
        b.f = o;
        Object r = b.f;
        Object s = M.id(o); // c1
    }
}
"""


class TestEdges:
    def test_new_edges(self):
        pag = build_pag(facts_from_source(SIMPLE))
        assert any(
            e.label == "new" and e.source == "hb" and e.target == "M.main/b"
            for e in pag.edges
        )

    def test_store_edge_orientation(self):
        """Figure 2: ``x.f = y`` induces ``y --store[f]--> x``."""
        pag = build_pag(facts_from_source(SIMPLE))
        stores = [e for e in pag.edges if e.label == "store"]
        assert stores == [
            Edge("M.main/o", "M.main/b", "store", field="f")
        ]

    def test_load_edge_orientation(self):
        """Figure 2: ``x = y.f`` induces ``y --load[f]--> x``."""
        pag = build_pag(facts_from_source(SIMPLE))
        loads = [e for e in pag.edges if e.label == "load"]
        assert loads == [Edge("M.main/b", "M.main/r", "load", field="f")]

    def test_param_edge_tagged_with_call_site(self):
        pag = build_pag(facts_from_source(SIMPLE))
        param_edges = [
            e for e in pag.edges
            if e.call_site == "c1" and e.target == "M.id/p"
        ]
        assert len(param_edges) == 1
        assert param_edges[0].entering

    def test_return_edge_is_exit(self):
        pag = build_pag(facts_from_source(SIMPLE))
        ret_edges = [
            e for e in pag.edges
            if e.call_site == "c1" and e.source == "M.id/p"
        ]
        assert len(ret_edges) == 1
        assert not ret_edges[0].entering

    def test_this_binding_for_virtual_calls(self):
        # With the default (analysis-derived) PAG, receiver objects are
        # bound to `this` directly, filtered by dispatch.
        pag = build_pag(facts_from_source(FIGURE_1))
        assert any(
            e.label == "new" and e.source == "h3" and e.target == "T.id/this"
            for e in pag.edges
        )

    def test_this_edge_conservative_under_cha(self):
        facts = facts_from_source(FIGURE_1)
        pag = build_pag(facts, call_graph=cha_call_graph(facts))
        assert any(
            e.call_site == "c2" and e.target == "T.id/this"
            for e in pag.edges
        )

    def test_indexed_access(self):
        pag = build_pag(facts_from_source(SIMPLE))
        assert pag.out_edges("assign", "nothing") == []
        assert pag.heap_nodes() == {"hb", "ho"}
        assert pag.fields() == {"f"}
        assert pag.edge_count() == len(pag.edges)


class TestCallGraphs:
    def test_cha_includes_all_implementations(self):
        facts = facts_from_source(
            """
            class A { void go() { } }
            class B extends A { void go() { } }
            class M {
                public static void main(String[] args) {
                    A o = new A(); // h
                    o.go(); // c1
                }
            }
            """
        )
        cha = cha_call_graph(facts)
        assert ("c1", "A.go") in cha
        assert ("c1", "B.go") in cha  # conservative over-approximation

    def test_analysis_call_graph_is_precise(self):
        facts = facts_from_source(
            """
            class A { void go() { } }
            class B extends A { void go() { } }
            class M {
                public static void main(String[] args) {
                    A o = new A(); // h
                    o.go(); // c1
                }
            }
            """
        )
        graph, reachable = analysis_call_graph(facts)
        assert ("c1", "A.go") in graph
        assert ("c1", "B.go") not in graph
        assert "B.go" not in reachable

    def test_unreachable_allocations_gated(self):
        facts = facts_from_source(
            "class M { static void dead() { Object d = new M(); // h9\n }"
            " public static void main(String[] args) { } }"
        )
        pag = build_pag(facts)
        assert not any(e.label == "new" for e in pag.edges)
        pag_cha = build_pag(facts, call_graph=cha_call_graph(facts))
        assert any(e.label == "new" for e in pag_cha.edges)
