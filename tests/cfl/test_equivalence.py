"""Experiment E9: the three context-insensitive solvers agree.

The generic Melski–Reps CFL solver over ``L_F``, the specialized
flows-to fixpoint, and the context-insensitive (m = 0) instantiation of
the parameterized deduction rules must all compute the same points-to
relation — the paper's Section 2.1.1 claim that "x points-to h iff there
exists an L_F-path from h to x"."""

import pytest

from repro import analyze, config_by_name
from repro.cfl.grammar import flows_to_pairs
from repro.cfl.pag import build_pag
from repro.cfl.solver import FlowsToSolver
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import ALL_PROGRAMS

EXTRA = {
    "aliasing_chain": """
    class Box { Object f; }
    class M {
        public static void main(String[] args) {
            Box a = new Box(); // hb
            Box b = a;
            Box c = b;
            Object o = new M(); // ho
            a.f = o;
            Object r1 = b.f;
            Object r2 = c.f;
        }
    }
    """,
    "nested_fields": """
    class Inner { Object v; }
    class Outer { Inner inner; }
    class M {
        public static void main(String[] args) {
            Outer o = new Outer(); // ho
            Inner i = new Inner(); // hi
            Object x = new M(); // hx
            o.inner = i;
            Inner j = o.inner;
            j.v = x;
            Inner k = o.inner;
            Object y = k.v;
        }
    }
    """,
    "recursive_structure": """
    class Node { Node next; }
    class M {
        public static void main(String[] args) {
            Node a = new Node(); // ha
            Node b = new Node(); // hb
            a.next = b;
            b.next = a;
            Node c = a.next;
            Node d = c.next;
        }
    }
    """,
}

PROGRAMS = dict(ALL_PROGRAMS, **EXTRA)


@pytest.fixture(scope="module")
def prepared():
    out = {}
    for name, source in PROGRAMS.items():
        facts = facts_from_source(source)
        out[name] = (facts, build_pag(facts))
    return out


@pytest.mark.parametrize("program_name", sorted(PROGRAMS))
class TestThreeWayEquivalence:
    def test_generic_cfl_equals_specialized_fixpoint(self, prepared, program_name):
        _, pag = prepared[program_name]
        generic = flows_to_pairs(pag)
        specialized = FlowsToSolver(pag).solve().flows_to_pairs()
        assert generic == specialized

    def test_specialized_fixpoint_equals_m0_rules(self, prepared, program_name):
        facts, pag = prepared[program_name]
        specialized = FlowsToSolver(pag).solve().flows_to_pairs()
        rules = analyze(facts, config_by_name("insensitive"))
        from_rules = {(h, y) for (y, h) in rules.pts_ci()}
        assert specialized == from_rules

    def test_hpts_agrees_with_m0_rules(self, prepared, program_name):
        facts, pag = prepared[program_name]
        solver = FlowsToSolver(pag).solve()
        rules = analyze(facts, config_by_name("insensitive"))
        assert solver.hpts == set(rules.hpts_ci())


class TestSanity:
    def test_figure1_flowsto(self, prepared):
        _, pag = prepared["figure1"]
        solver = FlowsToSolver(pag).solve()
        assert solver.points_to("T.main/x1") == {"h1", "h2"}
        assert "h1" in solver.points_to("T.main/z")

    def test_nested_fields_resolution(self, prepared):
        _, pag = prepared["nested_fields"]
        solver = FlowsToSolver(pag).solve()
        assert solver.points_to("M.main/y") == {"hx"}
        assert solver.points_to("M.main/j") == {"hi"}

    def test_recursive_structure(self, prepared):
        _, pag = prepared["recursive_structure"]
        solver = FlowsToSolver(pag).solve()
        assert solver.points_to("M.main/c") == {"hb"}
        assert solver.points_to("M.main/d") == {"ha"}
