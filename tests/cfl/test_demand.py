"""Tests for demand-driven points-to queries."""

import pytest

from repro.cfl.demand import DemandPointsTo
from repro.cfl.pag import build_pag
from repro.cfl.solver import FlowsToSolver
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import ALL_PROGRAMS

TWO_ISLANDS = """
class Box { Object f; }
class M {
    static Object idA(Object p) { return p; }
    static Object idB(Object q) { return q; }
    public static void main(String[] args) {
        Object a = new M(); // ha
        Object r1 = M.idA(a); // c1
        Box bigBox = new Box(); // hbox
        Object b = new M(); // hb
        bigBox.f = b;
        Object r2 = bigBox.f;
        Object r3 = M.idB(r2); // c2
    }
}
"""


@pytest.fixture()
def islands():
    return build_pag(facts_from_source(TWO_ISLANDS))


class TestDemandAnswers:
    @pytest.mark.parametrize("program_name", sorted(ALL_PROGRAMS))
    def test_matches_exhaustive_for_every_variable(self, program_name):
        pag = build_pag(facts_from_source(ALL_PROGRAMS[program_name]))
        exhaustive = FlowsToSolver(pag).solve()
        demand = DemandPointsTo(pag)
        variables = sorted(pag.nodes() - pag.heap_nodes())
        for var in variables:
            assert demand.query(var) == exhaustive.points_to(var), var

    def test_through_heap(self, islands):
        demand = DemandPointsTo(islands)
        assert demand.query("M.main/r3") == {"hb"}

    def test_simple_chain(self, islands):
        demand = DemandPointsTo(islands)
        assert demand.query("M.main/r1") == {"ha"}


class TestLocality:
    def test_query_explores_only_its_island(self, islands):
        demand = DemandPointsTo(islands)
        demand.query("M.main/r1")
        demanded, total = demand.coverage()
        assert demanded < total
        # The Box island is untouched by the idA query.
        assert "M.main/bigBox" not in demand.demanded

    def test_queries_accumulate(self, islands):
        demand = DemandPointsTo(islands)
        demand.query("M.main/r1")
        first, _ = demand.coverage()
        demand.query("M.main/r3")
        second, _ = demand.coverage()
        assert second > first

    def test_coverage_bounds(self, islands):
        demand = DemandPointsTo(islands)
        demanded, total = demand.coverage()
        assert demanded == 0 and total > 0
