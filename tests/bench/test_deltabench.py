"""Edit-churn workload: structure of the reports, parity-free smoke of
``measure_churn``, and the loose single-edit speedup floor (the precise
number is ``deltabench``'s to report; see docs/api.md)."""

from repro.bench.deltabench import (
    format_churn,
    measure_churn,
    measure_single_edit,
    run_delta_churn,
)
from repro.core.analysis import _to_facts
from repro.frontend.paper_programs import FIGURE_1


def test_single_edit_is_much_faster_than_scratch():
    report = measure_single_edit(repetitions=15)
    assert report["program"] == "figure5"
    assert report["incremental_seconds"] > 0
    assert report["scratch_seconds"] > 0
    # The acceptance target is 5x; assert a loose floor here so CI
    # timer noise cannot flake the suite.
    assert report["speedup"] >= 3.0, report


def test_measure_churn_structure():
    facts = _to_facts(FIGURE_1)
    report = measure_churn(
        facts, configuration="1-call", abstraction="transformer-string",
        edits=6, seed=7,
    )
    assert report["edits"] == 6
    assert report["seed"] == 7
    assert report["fallbacks"] == 0  # random edits stay maintainable
    assert report["incremental_seconds"] > 0
    assert report["speedup"] is None or report["speedup"] > 0
    assert sum(b["edits"] for b in report["by_kind"].values()) == 6
    for bucket in report["by_kind"].values():
        assert set(bucket) == {
            "edits", "incremental_seconds", "scratch_seconds", "speedup"
        }
    assert report["engine"]["deltas_applied"] == 6


def test_run_delta_churn_embeds_single_edit():
    report = run_delta_churn(
        benchmarks=(), configuration="1-call", edits=0, repetitions=1
    )
    assert report["benchmarks"] == {}
    assert report["single_edit"]["program"] == "figure5"
    assert report["configuration"] == "1-call"
    assert report["edits_per_benchmark"] == 0


def test_format_churn():
    facts = _to_facts(FIGURE_1)
    report = {
        "configuration": "1-call",
        "abstraction": "transformer-string",
        "scale": 1,
        "edits_per_benchmark": 2,
        "single_edit": measure_single_edit(repetitions=1),
        "benchmarks": {
            "figure1": measure_churn(
                facts, configuration="1-call", edits=2, seed=0
            ),
        },
    }
    text = format_churn(report)
    assert "Edit churn" in text
    assert "figure1" in text
    assert "single edit (figure5" in text
    assert "fallbacks" in text
