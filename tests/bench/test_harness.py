"""Tests for the Figure 6 harness and report formatter."""

import pytest

from repro.bench.harness import Figure6, run_cell, run_figure6
from repro.bench.report import format_cell_summary, format_figure6
from repro.bench.workloads import dacapo_program
from repro.frontend.factgen import generate_facts


@pytest.fixture(scope="module")
def small_table():
    return run_figure6(
        benchmarks=("luindex", "bloat"),
        configurations=("1-call", "2-object+H"),
        scale=1,
    )


class TestHarness:
    def test_cell_quantities(self):
        facts = generate_facts(dacapo_program("luindex"))
        cell = run_cell(facts, "luindex", "2-object+H")
        assert set(cell.context_string.sizes) == {"pts", "hpts", "call"}
        assert cell.context_string.total > 0
        assert cell.transformer_string.total > 0
        assert cell.context_string.seconds > 0

    def test_decrease_math(self):
        facts = generate_facts(dacapo_program("luindex"))
        cell = run_cell(facts, "luindex", "2-object+H")
        expected = 1 - cell.transformer_string.total / cell.context_string.total
        assert cell.total_decrease() == pytest.approx(expected)

    def test_size_decrease_none_for_empty_relation(self):
        facts = generate_facts(dacapo_program("luindex"))
        cell = run_cell(facts, "luindex", "1-call")
        # hpts is context-insensitive at h=0: sizes equal, decrease 0.
        assert cell.size_decrease("hpts") == pytest.approx(0.0)

    def test_table_accessors(self, small_table):
        assert small_table.benchmarks() == ["luindex", "bloat"]
        assert small_table.configurations() == ["1-call", "2-object+H"]
        cell = small_table.cell("bloat", "1-call")
        assert cell.benchmark == "bloat"
        with pytest.raises(KeyError):
            small_table.cell("bloat", "9-quantum")

    def test_geomeans(self, small_table):
        decrease = small_table.geomean_total_decrease("2-object+H")
        assert 0 < decrease < 1
        # time geomean is defined (sign depends on machine noise).
        small_table.geomean_time_decrease("2-object+H")

    def test_geomean_of_empty_rejected(self):
        with pytest.raises(ValueError):
            Figure6().geomean_total_decrease("1-call")

    def test_ci_increase_zero_under_object(self, small_table):
        cell = small_table.cell("luindex", "2-object+H")
        assert cell.ci_increase("pts") == 0


class TestDatalogEngineHarness:
    def test_sizes_match_solver_engine(self):
        facts = generate_facts(dacapo_program("luindex"))
        solver_cell = run_cell(facts, "luindex", "1-call+H", engine="solver")
        datalog_cell = run_cell(facts, "luindex", "1-call+H", engine="datalog")
        assert (
            solver_cell.context_string.sizes
            == datalog_cell.context_string.sizes
        )
        assert (
            solver_cell.transformer_string.sizes
            == datalog_cell.transformer_string.sizes
        )
        assert (
            solver_cell.context_string.ci_sizes
            == datalog_cell.context_string.ci_sizes
        )

    def test_unknown_engine_rejected(self):
        facts = generate_facts(dacapo_program("luindex"))
        with pytest.raises(ValueError, match="engine"):
            run_cell(facts, "luindex", "1-call", engine="quantum")


class TestReport:
    def test_format_contains_all_rows(self, small_table):
        text = format_figure6(small_table)
        for token in ("luindex", "bloat", "pts", "hpts", "call", "Total",
                      "Time", "Mean", "1-call", "2-object+H"):
            assert token in text

    def test_type_column_shows_ci_increase(self):
        table = run_figure6(
            benchmarks=("luindex",), configurations=("2-type+H",), scale=1
        )
        text = format_figure6(table)
        assert "(+0" in text

    def test_cell_summary(self, small_table):
        summary = format_cell_summary(small_table.cell("bloat", "2-object+H"))
        assert "bloat/2-object+H" in summary
        assert "fewer facts" in summary
