"""Tests for the report formatter internals."""

import pytest

from repro.bench.report import _cell_size, _quantity


class TestQuantityFormatting:
    def test_small(self):
        assert _quantity(0) == "0"
        assert _quantity(9999) == "9999"

    def test_thousands(self):
        assert _quantity(10_000) == "10k"
        assert _quantity(152_700) == "153k"

    def test_millions(self):
        assert _quantity(13_300_000) == "13.3M"
        assert _quantity(1_000_000) == "1.0M"


class TestCellFormatting:
    def _cell(self, cs_sizes, ts_sizes):
        from repro.bench.harness import Cell, Measurement

        return Cell(
            benchmark="b",
            configuration="1-call",
            context_string=Measurement(cs_sizes, dict(cs_sizes), 0.01),
            transformer_string=Measurement(ts_sizes, dict(ts_sizes), 0.008),
        )

    def test_size_decrease_rendering(self):
        cell = self._cell(
            {"pts": 100, "hpts": 10, "call": 5},
            {"pts": 70, "hpts": 10, "call": 5},
        )
        text = _cell_size(cell, "pts", type_column=False)
        assert "100" in text
        assert "30.0%" in text

    def test_empty_relation_shows_dash(self):
        cell = self._cell(
            {"pts": 100, "hpts": 0, "call": 5},
            {"pts": 70, "hpts": 0, "call": 5},
        )
        assert "—" in _cell_size(cell, "hpts", type_column=False)

    def test_type_column_adds_ci_increase(self):
        cell = self._cell(
            {"pts": 100, "hpts": 10, "call": 5},
            {"pts": 100, "hpts": 10, "call": 5},
        )
        text = _cell_size(cell, "pts", type_column=True)
        assert "(+0)" in text
