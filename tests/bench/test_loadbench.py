"""Open-loop serving benchmark: stream determinism, scoring, end-to-end."""

import pytest

from repro.bench.loadbench import (
    LoadSpec,
    _percentile,
    build_requests,
    format_serving,
    run_serving_block,
)
from repro.bench.workloads import dacapo_program
from repro.frontend.factgen import generate_facts


@pytest.fixture(scope="module")
def facts():
    return generate_facts(dacapo_program("bloat", 1))


class TestBuildRequests:
    def test_deterministic_for_a_seed(self, facts):
        spec = LoadSpec(rate=50, duration_s=2.0)
        assert build_requests(facts, spec) == build_requests(facts, spec)

    def test_seed_changes_the_stream(self, facts):
        a = build_requests(facts, LoadSpec(rate=50, duration_s=2.0))
        b = build_requests(
            facts, LoadSpec(rate=50, duration_s=2.0, seed=7)
        )
        assert a != b

    def test_mix_matches_fractions(self, facts):
        spec = LoadSpec(
            rate=500, duration_s=2.0,
            query_fraction=0.8, check_fraction=0.1,
        )
        requests = build_requests(facts, spec)
        assert len(requests) == 1000
        ops = [r["op"] for r in requests]
        queries = sum(
            1 for op in ops
            if op in ("points_to", "alias", "callees", "fields_of")
        )
        assert abs(queries / len(ops) - 0.8) < 0.05
        assert 0 < ops.count("update") < 200

    def test_ids_are_dense_and_tenant_is_attached(self, facts):
        spec = LoadSpec(rate=20, duration_s=1.0)
        requests = build_requests(facts, spec, tenant="abc123")
        assert [r["id"] for r in requests] == list(range(len(requests)))
        assert all(r["tenant"] == "abc123" for r in requests)

    def test_updates_only_touch_fresh_sink_variables(self, facts):
        spec = LoadSpec(rate=200, duration_s=2.0)
        requests = build_requests(facts, spec)
        updates = [r for r in requests if r["op"] == "update"]
        assert updates
        for request in updates:
            ((_, sink),) = request["delta"]["added"]["assign"]
            assert sink == f"lb_extra_{request['id']}"


class TestPercentile:
    def test_empty(self):
        assert _percentile([], 0.5) is None

    def test_single(self):
        assert _percentile([3.0], 0.99) == 3.0

    def test_ranks(self):
        ordered = [float(n) for n in range(1, 101)]
        assert _percentile(ordered, 0.50) == 51.0
        assert _percentile(ordered, 0.99) == 99.0
        assert _percentile(ordered, 1.0) == 100.0


class TestServingBlock:
    @pytest.fixture(scope="class")
    def block(self):
        # A deliberately tiny run: enough traffic to exercise both
        # stacks and the probes without slowing the suite down.
        return run_serving_block(
            scale=1,
            spec=LoadSpec(
                rate=60, duration_s=1.0, warmup_s=0.25,
                connections=4, parity_every=3,
            ),
            overload_burst=60,
        )

    def test_block_shape(self, block):
        assert block["benchmark"] == "bloat"
        assert block["configuration"] == "1-call"
        assert set(block["targets"]) == {"threaded", "gateway"}
        for name in ("threaded", "gateway"):
            target = block["targets"][name]
            assert target["offered"] == 60
            assert target["answered"] == 60
            assert target["latency_ms"]["p50"] is not None
            assert 0 <= target["slo_attainment"] <= 1
        assert block["targets"]["threaded"]["protocol"] == "repro-serve/1"
        assert block["targets"]["gateway"]["protocol"] == "repro-serve/2"

    def test_parity_is_bit_identical(self, block):
        parity = block["parity"]
        assert parity["ok"], parity["mismatches"]
        assert parity["queries_checked"] > 0
        assert parity["mismatches"] == []

    def test_overload_gives_explicit_backpressure(self, block):
        overload = block["overload"]
        assert overload["answered"] == overload["burst"] == 60
        assert overload["explicit_backpressure"]
        assert overload["timeouts"] == 0

    def test_warm_start_beats_cold_solve(self, block):
        warm = block["warm_start"]
        assert warm["restore_seconds"] < warm["solve_seconds"]
        assert warm["speedup"] > 1

    def test_gateway_reports_its_stats(self, block):
        gateway = block["targets"]["gateway"]["gateway"]
        assert gateway["answered"] >= 60
        assert gateway["registry"]["tenants"] == 1

    def test_format_serving_renders(self, block):
        text = format_serving(block)
        assert "repro-serve/1" in text and "repro-serve/2" in text
        assert "overload" in text
        assert "parity" in text
