"""The cost-ordered evaluation block of the figure6 report.

``run_cost_block`` prices the DL5xx planner end to end on one corpus
entry: source-order engine vs cost-ordered engine vs cost-ordered
kernels, predicted vs measured shard skew, and the closure
certificate.  The tests pin the block's shape, its parity discipline
(``certified`` requires bit-identical results on every surface plus a
clean certificate), and the text rendering.
"""

import pytest

from repro.bench.costbench import (
    DEFAULT_BENCHMARK,
    format_cost,
    run_cost_block,
)


@pytest.fixture(scope="module")
def block():
    return run_cost_block(scale=1, shards=2)


class TestRunCostBlock:
    def test_certified_at_tiny_scale(self, block):
        assert block["certified"] is True
        assert block["benchmark"] == DEFAULT_BENCHMARK
        assert block["scale"] == 1

    def test_every_surface_has_parity(self, block):
        assert block["cost_ordered"]["parity"] is True
        assert block["cost_ordered_kernel"]["parity"] is True
        assert block["skew"]["parity"] is True

    def test_plan_summary_shape(self, block):
        plan = block["plan"]
        assert plan["rules"] > 0
        assert 0 <= plan["reordered"] <= plan["rules"]
        assert plan["digest"].startswith("sha256:")
        assert all(
            code.startswith("DL5") for code in plan["diagnostics"]
        )

    def test_kernel_split_reconciles(self, block):
        kernel = block["cost_ordered_kernel"]
        assert kernel["seconds"] == pytest.approx(
            kernel["compile_seconds"] + kernel["solve_seconds"]
        )

    def test_skew_prediction_present(self, block):
        skew = block["skew"]
        assert skew["shards"] == 2
        assert skew["predicted"] is None or skew["predicted"] >= 1.0
        assert skew["measured"] >= 1.0

    def test_closure_certificate_clean(self, block):
        closure = block["closure"]
        assert closure["certified"] is True
        assert closure["violations"] == 0
        assert closure["variants_missing"] == 0
        assert closure["obligations"] > 0


class TestFormatCost:
    def test_renders_every_section(self, block):
        text = format_cost(block)
        assert "cost-ordered evaluation" in text
        assert "source-order engine" in text
        assert "cost-ordered kernels" in text
        assert "skew over 2 shards" in text
        assert "closure:" in text
        assert "certificate: ok" in text
