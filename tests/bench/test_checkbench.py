"""The benchmark-suite precision audit (the figure6 ``checks`` block)."""

from repro.bench.checkbench import (
    ABSTRACTIONS,
    AUDIT_CONFIGURATIONS,
    AUDIT_SCHEMA,
    run_check_audit,
)
from repro.bench.report import figure6_json
from repro.checkers import checker_names


def test_audit_configurations_start_from_the_baseline():
    assert AUDIT_CONFIGURATIONS[0] == "insensitive"
    assert "2-object+H" in AUDIT_CONFIGURATIONS


def test_run_check_audit_one_benchmark():
    audit = run_check_audit(scale=1, benchmarks=("antlr",))
    assert audit["schema"] == AUDIT_SCHEMA
    assert audit["scale"] == 1
    assert set(audit["benchmarks"]) == {"antlr"}
    entry = audit["benchmarks"]["antlr"]
    assert entry["checkers"] == list(checker_names())
    assert len(entry["cells"]) == (
        len(AUDIT_CONFIGURATIONS) * len(ABSTRACTIONS)
    )
    assert all(entry["monotone"].values())
    assert entry["abstractions_agree"]


def test_audit_block_slots_into_figure6_json():
    audit = run_check_audit(scale=1, benchmarks=("antlr",))

    class _Table:
        cells = ()

        def benchmarks(self):
            return []

        def configurations(self):
            return []

    document = figure6_json(_Table(), checks=audit)
    assert document["checks"]["schema"] == AUDIT_SCHEMA
