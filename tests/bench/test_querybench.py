"""Query-latency workload: shape, sanity, and report integration."""

from repro.bench.harness import Measurement
from repro.bench.querybench import (
    measure_queries,
    measurement_for,
    run_query_latency,
)
from repro.bench.report import JSON_SCHEMA, figure6_json
from repro.core.config import config_by_name
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_1
from repro.service.service import AnalysisService


def test_measure_queries_shape():
    facts = facts_from_source(FIGURE_1)
    result = measure_queries(facts, queries_per_kind=4)
    assert set(result) == {"cold", "warm", "cold_stats", "cfl_points_to"}
    for regime in ("cold", "warm"):
        assert "points_to" in result[regime]
        summary = result[regime]["points_to"]
        assert summary["count"] > 0
        assert summary["p50_us"] >= 0
        assert summary["p95_us"] >= summary["p50_us"]
    # Cold mode must actually have exercised the demand engine.
    assert result["cold_stats"]["demand"]["queries"] > 0
    assert result["cfl_points_to"]["count"] > 0


def test_measurement_for_merges_into_counters():
    facts = facts_from_source(FIGURE_1)
    service = AnalysisService.from_facts(
        facts, config_by_name("2-object+H"), solve=True
    )
    service.points_to("T.id/p")
    service.points_to("T.id/p")
    measurement = measurement_for(service)
    assert isinstance(measurement, Measurement)
    assert measurement.sizes["pts"] > 0
    assert measurement.counters["service.cache"]["hits"] == 1
    assert "service.points_to" in measurement.counters


def test_run_query_latency_one_benchmark():
    result = run_query_latency(
        benchmarks=("antlr",), scale=1, queries_per_kind=3
    )
    assert result["configuration"] == "2-object+H"
    assert set(result["benchmarks"]) == {"antlr"}
    assert "warm" in result["benchmarks"]["antlr"]


def test_figure6_json_carries_query_latency():
    assert JSON_SCHEMA == "repro-figure6/8"

    class _Table:
        cells = ()

        def benchmarks(self):
            return []

        def configurations(self):
            return []

    payload = {"configuration": "2-object+H", "benchmarks": {}}
    churn = {"configuration": "2-object+H", "single_edit": {}}
    audit = {"schema": "repro-check-audit/1", "benchmarks": {}}
    document = figure6_json(_Table(), query_latency=payload,
                            incremental=churn, checks=audit)
    assert document["schema"] == "repro-figure6/8"
    assert document["query_latency"] == payload
    assert document["incremental"] == churn
    assert document["checks"] == audit
    # Additive: absent measurements serialize as null, not key errors.
    assert figure6_json(_Table())["query_latency"] is None
    assert figure6_json(_Table())["incremental"] is None
    assert figure6_json(_Table())["checks"] is None
