"""Tests for the synthetic DaCapo-analogue workload generators."""

import pytest

from repro import analyze, config_by_name
from repro.bench.workloads import (
    DACAPO_NAMES,
    WorkloadSpec,
    dacapo_program,
    dacapo_specs,
    generate,
)
from repro.frontend.factgen import generate_facts


class TestDeterminism:
    @pytest.mark.parametrize("name", DACAPO_NAMES)
    def test_same_spec_same_program(self, name):
        facts_a = generate_facts(dacapo_program(name))
        facts_b = generate_facts(dacapo_program(name))
        from repro.frontend.doopfacts import facts_equal

        assert facts_equal(facts_a, facts_b)

    def test_different_seeds_differ(self):
        a = generate(WorkloadSpec("w", seed=1, call_sites=20))
        b = generate(WorkloadSpec("w", seed=2, call_sites=20))
        fa = generate_facts(a)
        fb = generate_facts(b)
        assert fa.virtual_invoke != fb.virtual_invoke


class TestStructure:
    def test_all_benchmarks_validate(self):
        for name in DACAPO_NAMES:
            program = dacapo_program(name)
            program.validate()
            facts = generate_facts(program)
            assert facts.main_method == f"{name}_Main.main"

    def test_scale_grows_program(self):
        small = generate_facts(dacapo_program("chart", scale=1))
        large = generate_facts(dacapo_program("chart", scale=4))
        assert (
            sum(large.counts().values()) > sum(small.counts().values())
        )

    def test_bloat_has_ast_pattern(self):
        facts = generate_facts(dacapo_program("bloat"))
        assert any("AstBuilder" in m for (_, m, _) in facts.static_invoke)

    def test_eclipse_has_hierarchy(self):
        program = dacapo_program("eclipse")
        assert any(
            cls.superclass == "eclipse_Base"
            for cls in program.classes.values()
        )

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            dacapo_program("fop")  # DaCapo 2006 has it; this suite doesn't

    def test_excluded_benchmarks_generate(self):
        from repro.bench.workloads import EXCLUDED_NAMES

        for name in EXCLUDED_NAMES:
            program = dacapo_program(name)
            program.validate()
            facts = generate_facts(program)
            assert facts.main_method == f"{name}_Main.main"

    def test_reflective_sites_fan_out(self):
        facts = generate_facts(dacapo_program("jython"))
        result = analyze(facts, config_by_name("insensitive"))
        invoke_edges = [
            (i, p) for (i, p) in result.call_graph() if p.endswith(".invoke")
        ]
        targets = {p for (_, p) in invoke_edges}
        assert len(targets) > 5  # the conservative mega-dispatch

    def test_specs_cover_all_names(self):
        assert set(dacapo_specs()) == set(DACAPO_NAMES)

    def test_labels_are_unique(self):
        # generate_facts raises on duplicate site labels, so generation
        # succeeding is the assertion; double-check invocation labels.
        facts = generate_facts(dacapo_program("xalan", scale=2))
        invocations = [i for (i, _, _) in facts.static_invoke]
        invocations += [i for (i, _, _) in facts.virtual_invoke]
        assert len(invocations) == len(set(invocations))


class TestAnalysisBehaviour:
    """The workloads must exhibit the paper's fact-count asymmetry."""

    @pytest.mark.parametrize("name", DACAPO_NAMES)
    def test_transformer_strings_reduce_facts_at_2objH(self, name):
        facts = generate_facts(dacapo_program(name))
        cs = analyze(facts, config_by_name("2-object+H", "context-string"))
        ts = analyze(facts, config_by_name("2-object+H", "transformer-string"))
        assert ts.total_facts() < cs.total_facts()
        assert cs.pts_ci() == ts.pts_ci()

    def test_bloat_has_subsuming_facts_at_1callH(self):
        """The paper's Section 8 observation about `bloat`."""
        facts = generate_facts(dacapo_program("bloat"))
        ts = analyze(facts, config_by_name("1-call+H", "transformer-string"))
        assert ts.subsumption_ratio() > 0

    def test_every_benchmark_reaches_all_blocks(self):
        facts = generate_facts(dacapo_program("antlr"))
        result = analyze(facts, config_by_name("insensitive"))
        reachable = result.reachable_methods()
        assert "antlr_Util.process" in reachable
        assert any(m.startswith("antlr_Wrap") for m in reachable)
        assert any(m.startswith("antlr_T0") for m in reachable)
