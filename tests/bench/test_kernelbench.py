"""Tests for the kernel-backend figure6 workload."""

from repro.bench.kernelbench import format_kernels, run_kernel_block


def test_block_shape_parity_and_certificate():
    block = run_kernel_block(scale=1, shards=2, processes=False)
    assert block["benchmark"] == "bloat"
    assert block["configuration"] == "2-object+H"
    assert block["scale"] == 1
    assert block["engine_seconds"] > 0
    assert block["engine_rule_evaluations"] > 0

    kernel = block["kernel"]
    assert kernel["parity"] is True
    assert kernel["seconds"] == (
        kernel["compile_seconds"] + kernel["solve_seconds"]
    )
    assert kernel["solve_speedup"] > 0
    assert kernel["rounds"] > 0
    assert kernel["facts_derived"] > 0

    sharded = block["sharded"]
    assert sharded["shards"] == 2
    assert sharded["backend"] == "inprocess"
    assert sharded["parity"] is True
    assert sharded["kernel_rule_evaluations"] > 0
    assert sharded["cross_shard_probes_local"] == 0
    assert sharded["ownership_violations"] == 0

    assert block["certified"] is True


def test_format_kernels_renders_the_block():
    block = run_kernel_block(scale=1, shards=2, processes=False)
    text = format_kernels(block)
    assert "kernel backend (bloat/2-object+H, scale=1)" in text
    assert "generic engine" in text
    assert "compile" in text and "solve" in text
    assert "2 shards + kernels" in text
    assert "certificate: ok" in text


def test_block_is_json_serializable():
    import json

    block = run_kernel_block(scale=1, shards=2, processes=False)
    assert json.loads(json.dumps(block)) == block
