"""Unit tests for the concrete interpreter's semantics."""

import pytest

from repro.bench.concrete import ConcreteInterpreter, run_concrete
from repro.frontend.parser import parse_program


def observe(source, **kwargs):
    return run_concrete(parse_program(source), **kwargs)


class TestObjectIdentity:
    def test_fields_are_per_object(self):
        observed = observe(
            """
            class Box { Object f; }
            class M {
                public static void main(String[] args) {
                    Box a = new Box(); // ba
                    Box b = new Box(); // bb
                    Object v = new M(); // hv
                    a.f = v;
                    Object x = a.f;
                    Object y = b.f;
                }
            }
            """
        )
        assert ("M.main/x", "hv") in observed.var_points_to
        assert not any(v == "M.main/y" for (v, _) in observed.var_points_to)

    def test_two_objects_same_site_are_distinct(self):
        observed = observe(
            """
            class Box { Object f; }
            class M {
                static Box mk() { Box b = new Box(); // site
                    return b; }
                public static void main(String[] args) {
                    Box a = M.mk(); // c1
                    Box b = M.mk(); // c2
                    Object v = new M(); // hv
                    a.f = v;
                    Object y = b.f;
                }
            }
            """
        )
        # Same abstract site, different concrete objects: y stays unbound.
        assert not any(v == "M.main/y" for (v, _) in observed.var_points_to)


class TestDispatch:
    SOURCE = """
    class A { Object mk() { Object o = new A(); // ha
        return o; } }
    class B extends A { Object mk() { Object o = new B(); // hb
        return o; } }
    class M {
        public static void main(String[] args) {
            A x = new B(); // recv
            Object r = x.mk(); // c1
        }
    }
    """

    def test_runtime_type_selects_override(self):
        observed = observe(self.SOURCE)
        assert ("c1", "B.mk") in observed.call_edges
        assert ("c1", "A.mk") not in observed.call_edges
        assert ("M.main/r", "hb") in observed.var_points_to
        assert "A.mk" not in observed.executed_methods


class TestStatics:
    def test_static_fields_are_shared(self):
        observed = observe(
            """
            class G { static Object slot; }
            class M {
                static void put(Object v) { G.slot = v; }
                static Object get() { Object r = G.slot; return r; }
                public static void main(String[] args) {
                    Object v = new M(); // hv
                    M.put(v); // c1
                    Object r = M.get(); // c2
                }
            }
            """
        )
        assert ("G.slot", "hv") in observed.static_points_to
        assert ("M.main/r", "hv") in observed.var_points_to


class TestExceptions:
    def test_exception_escapes_and_binds_catch(self):
        observed = observe(
            """
            class Exc { }
            class M {
                static void boom() { Exc e = new Exc(); // he
                    throw e; }
                public static void main(String[] args) {
                    try { M.boom(); // c1
                    } catch (Exc caught) { }
                }
            }
            """
        )
        assert ("M.boom", "he") in observed.escaped_exceptions
        assert ("M.main", "he") in observed.escaped_exceptions
        assert ("M.main/caught", "he") in observed.var_points_to


class TestBudgets:
    RECURSIVE = """
    class M {
        static Object spin(Object p) {
            Object q = M.spin(p); // rec
            return p;
        }
        public static void main(String[] args) {
            Object x = new M(); // h1
            Object r = M.spin(x); // c1
        }
    }
    """

    def test_step_budget(self):
        observed = observe(self.RECURSIVE, step_budget=50)
        assert observed.steps <= 51

    def test_depth_cap(self):
        program = parse_program(self.RECURSIVE)
        interpreter = ConcreteInterpreter(
            program, step_budget=10**6, max_call_depth=10
        )
        observed = interpreter.run()
        # Terminates quickly despite the huge step budget.
        assert observed.steps < 1000
        assert ("M.spin/p", "h1") in observed.var_points_to

    def test_prefix_is_still_observable(self):
        observed = observe(self.RECURSIVE, step_budget=50)
        assert ("M.main/x", "h1") in observed.var_points_to
