"""Property and regression tests for the delta-aware relation.

Covers the three contracts the substrate owes its engines:

* the semi-naive lifecycle invariants (``stable``/``delta``/``pending``
  partition the row set; ``promote`` preserves the union);
* index coherence: a ``lookup`` through any materialized index returns
  exactly what a brute-force scan over ``rows`` returns;
* the ``lookup`` positions contract: positions in any order, duplicates
  allowed, key remapped alongside (the historical bug was trusting the
  caller to pass sorted, unique positions).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.store import Relation, RelationCounters, TupleStore

rows3 = st.lists(
    st.tuples(
        st.sampled_from("abc"),
        st.integers(min_value=0, max_value=3),
        st.sampled_from("xyz"),
    ),
    max_size=30,
)


class TestDeltaLifecycle:
    @given(rows3, rows3, rows3)
    def test_partition_invariant(self, batch1, batch2, batch3):
        rel = Relation("r", 3)
        for batch in (batch1, batch2, batch3):
            for row in batch:
                rel.add(row)
            stable, delta, pending = (
                rel.stable, set(rel.delta), set(rel.pending)
            )
            # The three parts partition the row set.
            assert stable | delta | pending == rel.rows
            assert not stable & delta
            assert not stable & pending
            assert delta.isdisjoint(pending)
            before = set(rel.rows)
            promoted = rel.promote()
            # Promotion: pending becomes the delta, union preserved.
            assert set(promoted) == pending
            assert rel.rows == before
            assert not rel.pending

    @given(rows3)
    def test_no_duplicates_in_frontier(self, batch):
        rel = Relation("r", 3)
        for row in batch + batch:
            rel.add(row)
        promoted = rel.promote()
        assert len(promoted) == len(set(promoted))
        assert set(promoted) == rel.rows

    def test_load_bypasses_frontier(self):
        rel = Relation("r", 1)
        rel.load(("edb",))
        rel.add(("idb",))
        assert rel.pending == [("idb",)]
        assert rel.promote() == [("idb",)]
        assert rel.stable == {("edb",)}

    def test_track_delta_off(self):
        rel = Relation("r", 1, track_delta=False)
        rel.add(("a",))
        assert rel.pending == []
        assert rel.promote() == []


class TestIndexCoherence:
    @given(
        rows3,
        st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=3),
        st.tuples(
            st.sampled_from("abc"),
            st.integers(min_value=0, max_value=3),
            st.sampled_from("xyz"),
        ),
    )
    def test_lookup_matches_scan(self, rows, positions, probe_row):
        rel = Relation("r", 3)
        for row in rows:
            rel.add(row)
        positions = tuple(positions)
        key = tuple(probe_row[p] for p in positions)
        found = rel.lookup(positions, key)
        scanned = [
            row for row in rel.rows
            if all(row[p] == v for p, v in zip(positions, key))
        ]
        assert sorted(found) == sorted(scanned)
        assert len(found) == len(set(found))

    @given(rows3)
    def test_index_maintained_across_inserts(self, rows):
        rel = Relation("r", 3)
        rel.ensure_index((0,))
        for row in rows:
            rel.add(row)
            key = (row[0],)
            assert row in rel.lookup((0,), key)

    def test_ensure_index_rejects_out_of_range(self):
        rel = Relation("r", 2)
        with pytest.raises(ValueError, match="out of range"):
            rel.ensure_index((0, 5))


class TestLookupPositionsContract:
    """Regression: permuted/duplicated positions must hit the same
    (sorted, unique) index with the key remapped alongside."""

    def _rel(self):
        rel = Relation("r", 3)
        rel.add_all([("a", 1, "x"), ("a", 2, "y"), ("b", 1, "x")])
        return rel

    def test_permuted_positions_equal_sorted(self):
        rel = self._rel()
        assert sorted(rel.lookup((2, 0), ("x", "a"))) == sorted(
            rel.lookup((0, 2), ("a", "x"))
        ) == [("a", 1, "x")]
        # Both spellings share one index.
        assert rel.index_count() == 1

    def test_duplicate_position_consistent_values(self):
        rel = self._rel()
        assert rel.lookup((0, 0), ("a", "a")) == rel.lookup((0,), ("a",))

    def test_duplicate_position_conflicting_values(self):
        rel = self._rel()
        assert rel.lookup((0, 0), ("a", "b")) == []
        # A contradictory probe must not materialize an index.
        assert rel.index_count() == 0

    def test_key_length_mismatch_raises(self):
        rel = self._rel()
        with pytest.raises(ValueError, match="does not match"):
            rel.lookup((0, 1), ("a",))


class TestCounters:
    def test_insert_dedup_probe_counts(self):
        counters = RelationCounters()
        rel = Relation("r", 2, counters=counters)
        rel.add(("a", 1))
        rel.add(("a", 1))
        rel.lookup((0,), ("a",))
        rel.lookup((0,), ("zz",))
        assert counters.inserts == 1
        assert counters.dedup_hits == 1
        assert counters.probes == 2
        assert counters.index_builds == 1

    def test_store_describe_shape(self):
        store = TupleStore()
        rel = store.relation("pts", 2)
        rel.add(("a", "h"))
        rel.lookup((0,), ("a",))
        index = store.keyed_index("pts", "pts_by_key")
        index.add(("a", ()), "payload")
        index.probe(("a", ()))
        stats = store.describe()["pts"]
        assert stats["rows"] == 1
        assert stats["inserts"] == 1
        assert stats["probes"] == 2  # one lookup + one keyed probe
        assert stats["indexes"] == 2  # column index + keyed index
        assert stats["index_entries"] == 2
