"""Property tests for store serialization (value codec, interner,
relation round-trips) — the substrate under ``repro-snapshot/2``."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.store import (
    Interner,
    Relation,
    SerializationError,
    decode_value,
    encode_value,
    interner_from_payload,
    interner_to_payload,
    relation_from_payload,
    relation_to_payload,
)

scalars = st.one_of(
    st.text(max_size=20),
    st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    st.booleans(),
    st.none(),
)
values = st.one_of(
    scalars,
    st.tuples(scalars, scalars),
    st.tuples(scalars, st.tuples(scalars, scalars)),
)


class TestValueCodec:
    @given(values)
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    @given(values)
    def test_encoding_is_json(self, value):
        # The wire form must survive a JSON round-trip unchanged
        # (lists stay lists; decode restores tuples from them).
        encoded = encode_value(value)
        rehydrated = json.loads(json.dumps(encoded))
        assert decode_value(rehydrated) == value

    @given(st.booleans())
    def test_bool_not_collapsed_to_int(self, flag):
        # bool is an int subclass; the codec must keep them apart.
        decoded = decode_value(encode_value(flag))
        assert decoded is flag

    def test_unknown_value_rejected(self):
        with pytest.raises(SerializationError):
            encode_value(object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(SerializationError):
            decode_value(["no-such-tag", 1, 2])


class TestInternerPayload:
    @given(st.lists(values, max_size=50))
    def test_round_trip_preserves_ids(self, items):
        interner = Interner()
        symbols = [interner.intern(v) for v in items]
        rebuilt = interner_from_payload(
            json.loads(json.dumps(interner_to_payload(interner)))
        )
        assert len(rebuilt) == len(interner)
        for value, symbol in zip(items, symbols):
            assert rebuilt.value_of(symbol) == value
            assert rebuilt.intern(value) == symbol  # ids stable


class TestRelationPayload:
    rows = st.lists(
        st.tuples(scalars, scalars, scalars), max_size=40
    )

    @given(rows)
    def test_round_trip(self, items):
        relation = Relation("pts", 3)
        for row in items:
            relation.load(row)
        interner = Interner()
        payload = json.loads(
            json.dumps(relation_to_payload(relation, interner))
        )
        rebuilt = relation_from_payload(payload, interner)
        assert rebuilt.name == "pts"
        assert rebuilt.arity == 3
        assert rebuilt.rows == relation.rows

    @given(rows)
    def test_rows_sorted_for_stable_digests(self, items):
        relation = Relation("r", 3)
        for row in items:
            relation.load(row)
        interner = Interner()
        payload = relation_to_payload(relation, interner)
        assert payload["rows"] == sorted(payload["rows"])

    def test_arity_mismatch_rejected(self):
        interner = Interner()
        payload = {"name": "r", "arity": 2, "rows": [[0]]}
        interner.intern("x")
        with pytest.raises(SerializationError):
            relation_from_payload(payload, interner)
