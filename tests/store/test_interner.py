"""Property tests for the value interner (round-trip, density, probes)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.store import Interner

values = st.one_of(
    st.text(max_size=20),
    st.integers(),
    st.tuples(st.text(max_size=5), st.text(max_size=5)),
)


class TestInternerRoundTrip:
    @given(st.lists(values, max_size=50))
    def test_value_of_inverts_intern(self, items):
        interner = Interner()
        symbols = [interner.intern(v) for v in items]
        for value, symbol in zip(items, symbols):
            assert interner.value_of(symbol) == value

    @given(st.lists(values, max_size=50))
    def test_symbols_dense_and_stable(self, items):
        interner = Interner()
        first = [interner.intern(v) for v in items]
        second = [interner.intern(v) for v in items]
        assert first == second  # re-interning never reassigns
        assert set(first) == set(range(len(interner)))
        assert len(interner) == len(set(items))

    @given(st.lists(values, max_size=30), values)
    def test_injective(self, items, probe):
        interner = Interner()
        for v in items:
            interner.intern(v)
        seen = {}
        for v in set(items):
            symbol = interner.id_of(v)
            assert symbol not in seen or seen[symbol] == v
            seen[symbol] = v


class TestProbeSide:
    def test_id_of_does_not_allocate(self):
        interner = Interner()
        interner.intern("present")
        assert interner.id_of("absent") is None
        assert len(interner) == 1
        assert "absent" not in interner

    def test_intern_row_decode_row(self):
        interner = Interner()
        row = ("x", "h1", ("a", "b"))
        symbols = interner.intern_row(row)
        assert all(isinstance(s, int) for s in symbols)
        assert interner.decode_row(symbols) == row
