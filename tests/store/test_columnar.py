"""Tests for the columnar relation store.

The contract under test: :class:`ColumnarRelation` is
:class:`Relation`'s lifecycle (stable/delta/pending, promote, lookup)
re-expressed over per-attribute int arrays and row-id bucket indices,
so the kernel backend and the interpreted join paths can share one
store without either noticing the other.
"""

import pytest

from repro.store import (
    ColumnarRelation,
    ColumnarStore,
    Interner,
    Relation,
    columnar_relation_from_payload,
    columnar_relation_to_payload,
    relation_to_payload,
)


class TestInsertion:
    def test_add_dedup_and_len(self):
        rel = ColumnarRelation("pts", 2)
        assert rel.add((1, 2)) is True
        assert rel.add((1, 2)) is False
        assert rel.add((1, 3)) is True
        assert len(rel) == 2
        assert (1, 2) in rel and (9, 9) not in rel
        assert set(rel) == {(1, 2), (1, 3)}
        assert rel.counters.inserts == 2
        assert rel.counters.dedup_hits == 1

    def test_columns_hold_attributes_by_position(self):
        rel = ColumnarRelation("pts", 3)
        rel.add((1, 2, 3))
        rel.add((4, 5, 6))
        assert list(rel.columns[0]) == [1, 4]
        assert list(rel.columns[1]) == [2, 5]
        assert list(rel.columns[2]) == [3, 6]
        assert rel.row_at(0) == (1, 2, 3)
        assert rel.row_at(1) == (4, 5, 6)

    def test_arity_mismatch_rejected(self):
        rel = ColumnarRelation("pts", 2)
        with pytest.raises(ValueError, match="arity mismatch"):
            rel.add((1, 2, 3))

    def test_non_int_values_rejected(self):
        rel = ColumnarRelation("pts", 2)
        with pytest.raises(TypeError, match="intern values first"):
            rel.add((1, "heap"))

    def test_missing_arity_rejected(self):
        with pytest.raises(ValueError, match="declared arity"):
            ColumnarRelation("pts", None)

    def test_retract_is_not_supported(self):
        rel = ColumnarRelation("pts", 1)
        rel.add((1,))
        with pytest.raises(NotImplementedError):
            rel.retract((1,))


class TestLifecycle:
    def test_add_lands_in_pending_then_promotes(self):
        rel = ColumnarRelation("p", 1)
        rel.add((1,))
        rel.add((2,))
        assert rel.pending == [(1,), (2,)]
        assert rel.delta == [] and rel.stable == set()
        ids = rel.promote()
        assert ids == range(0, 2) and bool(ids)
        assert rel.delta == [(1,), (2,)]
        assert rel.delta_ids == range(0, 2)
        rel.add((3,))
        assert rel.pending == [(3,)] and rel.pending_ids == range(2, 3)
        rel.promote()
        assert rel.stable == {(1,), (2,)}
        assert rel.delta == [(3,)]
        assert not rel.promote()  # empty frontier is falsy

    def test_load_is_stable_before_first_promote(self):
        rel = ColumnarRelation("p", 1)
        rel.load((1,))
        assert rel.stable == {(1,)}
        assert rel.pending == [] and rel.delta == []

    def test_late_load_joins_pending(self):
        rel = ColumnarRelation("p", 1)
        rel.add((1,))
        rel.promote()
        rel.load((2,))
        assert rel.pending == [(2,)]

    def test_untracked_rows_stabilize_immediately(self):
        rel = ColumnarRelation("p", 1, track_delta=False)
        rel.add((1,))
        rel.add((2,))
        assert rel.stable == {(1,), (2,)}
        assert rel.pending == []

    def test_lifecycle_matches_row_relation(self):
        rows = [(i % 3, i % 2) for i in range(8)]
        columnar = ColumnarRelation("p", 2)
        classic = Relation("p", 2)
        for batch in (rows[:3], rows[3:6], rows[6:]):
            for row in batch:
                assert columnar.add(row) == classic.add(row)
            assert sorted(columnar.pending) == sorted(classic.pending)
            columnar.promote()
            classic.promote()
            assert sorted(columnar.delta) == sorted(classic.delta)
            assert columnar.stable == classic.stable


class TestIndexing:
    def test_single_column_index_keys_by_bare_int(self):
        rel = ColumnarRelation("p", 2)
        rel.add((1, 10))
        rel.add((1, 11))
        rel.add((2, 12))
        index = rel.index_view((0,))
        assert index[1] == [0, 1]
        assert index[2] == [2]

    def test_multi_column_index_keys_by_tuple(self):
        rel = ColumnarRelation("p", 3)
        rel.add((1, 2, 3))
        rel.add((1, 2, 4))
        index = rel.index_view((0, 1))
        assert index[(1, 2)] == [0, 1]

    def test_indices_stay_live_across_inserts(self):
        rel = ColumnarRelation("p", 2)
        rel.add((1, 10))
        index = rel.index_view((0,))
        rel.add((1, 11))
        assert index[1] == [0, 1]
        assert rel.index_count() == 1

    def test_out_of_range_positions_rejected(self):
        rel = ColumnarRelation("p", 2)
        with pytest.raises(ValueError, match="out of range"):
            rel.ensure_index((0, 5))

    def test_lookup_matches_row_relation(self):
        rows = [(i % 3, i % 4, i % 2) for i in range(12)]
        columnar = ColumnarRelation("p", 3)
        classic = Relation("p", 3)
        for row in rows:
            columnar.add(row)
            classic.add(row)
        for positions, key in [
            ((0,), (1,)),
            ((1, 2), (2, 0)),
            ((0, 2), (0, 0)),
            ((0,), (99,)),
            ((), ()),
        ]:
            assert sorted(columnar.lookup(positions, key)) == sorted(
                classic.lookup(positions, key)
            )

    def test_lookup_counts_probes(self):
        rel = ColumnarRelation("p", 1)
        rel.add((1,))
        rel.lookup((0,), (1,))
        rel.lookup((0,), (2,))
        assert rel.counters.probes == 2


class TestStore:
    def test_relation_created_once_and_arity_checked(self):
        store = ColumnarStore()
        first = store.relation("p", 2)
        assert store.relation("p", 2) is first
        with pytest.raises(ValueError, match="arity"):
            store.relation("p", 3)

    def test_describe_has_tuple_store_keys(self):
        store = ColumnarStore()
        rel = store.relation("p", 2)
        rel.add((1, 2))
        rel.add((1, 2))
        rel.index_view((0,))
        entry = store.describe()["p"]
        assert entry["rows"] == 1
        assert entry["inserts"] == 1
        assert entry["dedup_hits"] == 1
        assert entry["indexes"] == 1
        assert entry["index_entries"] == 1


class TestSerialize:
    def _interned(self, rows):
        run = Interner()
        rel = ColumnarRelation("pts", 2)
        for row in rows:
            rel.add(run.intern_row(row))
        return rel, run

    def test_payload_round_trip(self):
        rows = [("v1", "h1"), ("v2", "h1"), ("v1", "h2")]
        rel, run = self._interned(rows)
        payload_interner = Interner()
        payload = columnar_relation_to_payload(
            rel, payload_interner, run_interner=run
        )
        assert payload["name"] == "pts" and payload["arity"] == 2
        fresh_run = Interner()
        rebuilt = columnar_relation_from_payload(
            payload, payload_interner, run_interner=fresh_run
        )
        decoded = {fresh_run.decode_row(row) for row in rebuilt.rows}
        assert decoded == set(rows)
        assert rebuilt.stable == set(rebuilt.rows)  # loaded as settled

    def test_payload_byte_identical_to_row_store(self):
        rows = [("v2", "h1"), ("v1", "h1")]
        columnar, run = self._interned(rows)
        classic = Relation("pts", 2)
        for row in rows:
            classic.add(row)
        a, b = Interner(), Interner()
        assert columnar_relation_to_payload(
            columnar, a, run_interner=run
        ) == relation_to_payload(classic, b)

    def test_raw_int_relation_serializes_without_run_interner(self):
        rel = ColumnarRelation("p", 1)
        rel.add((7,))
        interner = Interner()
        payload = columnar_relation_to_payload(rel, interner)
        rebuilt = columnar_relation_from_payload(payload, interner)
        assert set(rebuilt.rows) == {(7,)}
