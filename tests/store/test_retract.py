"""Retraction invariants under random lifecycle interleavings.

The incremental engine retracts rows at arbitrary points of the
semi-naive lifecycle (before promotion, mid-frontier, after
stabilization).  Whatever the interleaving of add / retract / promote:

* every materialized index bucket holds only live rows (index ⊆ rows),
  and every live row is findable through every index;
* a retracted row never lingers in the ``pending`` or ``delta`` lists
  (it could resurface from a later ``promote``);
* stable / delta / pending always partition the row set.
"""

from hypothesis import given, settings, strategies as st

from repro.store.relation import Relation

#: A small value universe so operations collide often.
_VALUES = st.sampled_from(["a", "b", "c", "d"])
_ROWS = st.tuples(_VALUES, _VALUES)

#: One lifecycle step: add a row, retract a row, cut the frontier, or
#: materialize an index over a column subset.
_STEPS = st.lists(
    st.one_of(
        st.tuples(st.just("add"), _ROWS),
        st.tuples(st.just("retract"), _ROWS),
        st.tuples(st.just("promote"), st.none()),
        st.tuples(st.just("index"), st.sampled_from([(0,), (1,), (0, 1)])),
    ),
    max_size=60,
)


def _check_invariants(relation: Relation) -> None:
    rows = relation.rows
    for positions, index in relation._indices.items():
        indexed = set()
        for key, bucket in index.items():
            assert bucket, f"empty bucket {key!r} left in index {positions}"
            for row in bucket:
                assert row in rows, (
                    f"index {positions} holds dead row {row!r}"
                )
                assert tuple(row[i] for i in positions) == key
                indexed.add(row)
        assert indexed == rows, (
            f"index {positions} lost rows {rows - indexed!r}"
        )
    pending = relation.pending
    delta = relation.delta
    assert set(pending) <= rows
    assert set(delta) <= rows
    assert not set(pending) & set(delta)
    assert relation.stable == rows - set(pending) - set(delta)


@settings(max_examples=200, deadline=None)
@given(steps=_STEPS)
def test_lifecycle_interleavings(steps):
    relation = Relation("r", arity=2)
    live = set()
    for op, arg in steps:
        if op == "add":
            added = relation.add(arg)
            assert added == (arg not in live)
            live.add(arg)
        elif op == "retract":
            retracted = relation.retract(arg)
            assert retracted == (arg in live)
            live.discard(arg)
        elif op == "promote":
            relation.promote()
        else:
            relation.ensure_index(arg)
        assert relation.rows == live
        _check_invariants(relation)


@settings(max_examples=100, deadline=None)
@given(steps=_STEPS)
def test_untracked_relations_keep_empty_frontier(steps):
    relation = Relation("r", arity=2, track_delta=False)
    for op, arg in steps:
        if op == "add":
            relation.add(arg)
        elif op == "retract":
            relation.retract(arg)
        elif op == "promote":
            relation.promote()
        else:
            relation.ensure_index(arg)
        assert relation.pending == []
        _check_invariants(relation)


def test_retract_then_promote_cannot_resurface():
    relation = Relation("r", arity=2)
    relation.add(("a", "b"))
    relation.retract(("a", "b"))
    assert relation.promote() == []
    relation.add(("c", "d"))
    relation.promote()
    relation.retract(("c", "d"))
    assert relation.delta == []
    assert relation.promote() == []


def test_retract_absent_row_is_a_noop():
    relation = Relation("r", arity=2)
    relation.ensure_index((0,))
    assert not relation.retract(("x", "y"))
    assert relation.counters.retracts == 0
