"""Tests for up-front index planning from join patterns."""

from repro.datalog.parser import parse_datalog
from repro.lint.passes import binding_orders
from repro.store import plan_indices


def _program(text):
    return parse_datalog(text, validate=False)


class TestBindingOrders:
    def test_left_to_right_binding(self):
        program = _program("p(X, Z) :- q(X, Y), r(Y, Z).")
        [(q, q_pos), (r, r_pos)] = binding_orders(program.rules[0])
        assert (q.pred, q_pos) == ("q", ())
        assert (r.pred, r_pos) == ("r", (0,))

    def test_constants_are_bound(self):
        program = _program('p(X) :- q("k", X).')
        [(q, q_pos)] = binding_orders(program.rules[0])
        assert q_pos == (0,)

    def test_negated_literal_binds_nothing(self):
        program = _program("p(X) :- q(X), !r(X, Y), s(Y).")
        orders = dict(
            (lit.pred, pos) for (lit, pos) in binding_orders(program.rules[0])
        )
        # r's variables do not become bound for s.
        assert orders["s"] == ()


class TestPlanIndices:
    def test_plan_covers_probed_literals(self):
        program = _program(
            """
            p(X, Z) :- q(X, Y), r(Y, Z).
            t(Z) :- r("k", Z).
            """
        )
        plan = plan_indices(program)
        assert "q" not in plan  # first literal: full scan
        assert plan["r"] == {(0,)}

    def test_builtins_and_negation_excluded(self):
        program = _program("p(X) :- q(X), !r(X), comp(X, Y).")
        plan = plan_indices(program, builtins={"comp"})
        assert "comp" not in plan
        assert "r" not in plan

    def test_facts_need_no_plan(self):
        program = _program('q("a", "b").')
        assert plan_indices(program) == {}

    def test_engine_prebuilds_planned_indices(self):
        from repro.datalog.engine import Engine

        program = _program(
            """
            q("a", "b").
            q("b", "c").
            p(X, Z) :- q(X, Y), q(Y, Z).
            """
        )
        engine = Engine(program)
        engine.run()
        # The q index keyed by column 0 was planned, not lazily built.
        assert engine.relations["q"].index_count() == 1
        assert engine.query("p") == {("a", "c")}
