"""Property tests over the Figure 4 flavour functions.

For every flavour, the two abstractions' ``merge``/``merge_s`` outputs
must correspond: the transformer edge applied to the concretization of
the receiver pair must cover the context-string edge's mapping.  These
generalize the hand-picked cases in ``test_sensitivity.py`` to random
receivers across all five flavours.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import sensitivity as sens
from repro.core.context_strings import to_transformer_string
from repro.core.sensitivity import Flavour
from repro.core.transformations import ContextSet

ELEMENTS = ("c1", "c2", "h1", "h2")

contexts = st.lists(st.sampled_from(ELEMENTS), max_size=2).map(tuple)

FLAVOURS = [
    Flavour.CALL_SITE, Flavour.OBJECT, Flavour.TYPE,
    Flavour.PLAIN_OBJECT, Flavour.HYBRID,
]


def class_of(heap: str) -> str:
    return f"T{heap}"


def pair_for(flavour: Flavour, heap_ctx, m_ctx, m):
    """A well-formed receiver pair for the flavour's level discipline."""
    h = m if flavour in (Flavour.CALL_SITE, Flavour.PLAIN_OBJECT) else m - 1
    return (heap_ctx[:h], m_ctx[:m])


DEFAULT_SAMPLES = [
    ContextSet.of(()),
    ContextSet.of(("c1",)),
    ContextSet.of(("c1", "c2")),
    ContextSet.of(("h1", "c2")),
    ContextSet.everything(),
]


def covers(general, specific, samples=None) -> bool:
    """Every concrete output of ``specific`` appears in ``general``."""
    if samples is None:
        samples = DEFAULT_SAMPLES
    for sample in samples:
        out_general = general.semantics(sample)
        out_specific = specific.semantics(sample)
        for ctx in out_specific.concrete:
            if ctx not in out_general:
                return False
        for prefix in out_specific.prefixes:
            if prefix not in out_general and not any(
                prefix[: len(q)] == q for q in out_general.prefixes
            ):
                return False
    return True


class TestMergeCorrespondence:
    @pytest.mark.parametrize("flavour", FLAVOURS)
    @given(heap_ctx=contexts, m_ctx=contexts)
    @settings(max_examples=60, deadline=None)
    def test_merge_edges_correspond(self, flavour, heap_ctx, m_ctx):
        m = 2
        receiver_pair = pair_for(flavour, heap_ctx, m_ctx, m)
        edge_cs = sens.merge_cs(
            flavour, "h1", "c1", receiver_pair, m, class_of
        )
        edge_ts = sens.merge_ts(
            flavour, "h1", "c1", to_transformer_string(receiver_pair),
            m, class_of,
        )
        assert edge_ts is not None
        # The CS edge (a wildcard transformer) concretizes everything the
        # TS edge maps on receiver-compatible inputs — i.e. the TS edge
        # is a refinement of the CS edge.
        assert covers(to_transformer_string(edge_cs), edge_ts)

    @pytest.mark.parametrize("flavour", FLAVOURS)
    @given(m_ctx=contexts)
    @settings(max_examples=60, deadline=None)
    def test_merge_s_edges_correspond(self, flavour, m_ctx):
        """On contexts within the reach-prefix cone (the contexts the
        context-string fact describes), the TS edge refines the CS edge;
        outside that cone the TS edge is deliberately more general (one
        fact covering every reach context)."""
        m = 2
        context = m_ctx[:m]
        edge_cs = sens.merge_s_cs(flavour, "c9", context, m)
        edge_ts = sens.merge_s_ts(flavour, "c9", context, m)
        on_cone = [
            ContextSet.of(context),
            ContextSet.of(context + ("c2",)),
            ContextSet.cone(context),
        ]
        assert covers(
            to_transformer_string(edge_cs), edge_ts, samples=on_cone
        )

    @pytest.mark.parametrize("flavour", FLAVOURS)
    @given(m_ctx=contexts)
    @settings(max_examples=40, deadline=None)
    def test_record_correspondence(self, flavour, m_ctx):
        h = 1
        context = m_ctx[:2]
        record_cs = sens.record_cs(context, h)
        record_ts = sens.record_ts(context, h)
        on_cone = [
            ContextSet.of(context),
            ContextSet.of(context + ("h2",)),
            ContextSet.cone(context),
        ]
        # On the enumerated context, ε refines (prefix_h(M), M).
        assert covers(
            to_transformer_string(record_cs), record_ts, samples=on_cone
        )

    @pytest.mark.parametrize("flavour", FLAVOURS)
    @given(heap_ctx=contexts, m_ctx=contexts)
    @settings(max_examples=60, deadline=None)
    def test_edge_targets_agree(self, flavour, heap_ctx, m_ctx):
        """The CS edge's destination context is reachable under the TS
        edge's target prefix (the REACH rule's consistency)."""
        m = 2
        receiver_pair = pair_for(flavour, heap_ctx, m_ctx, m)
        edge_cs = sens.merge_cs(flavour, "h1", "c1", receiver_pair, m, class_of)
        edge_ts = sens.merge_ts(
            flavour, "h1", "c1", to_transformer_string(receiver_pair),
            m, class_of,
        )
        cs_target = edge_cs[1]
        ts_target = edge_ts.pushes
        assert cs_target[: len(ts_target)] == ts_target or (
            ts_target[: len(cs_target)] == cs_target
        )
