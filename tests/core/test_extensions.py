"""Solver tests for the static-field and exception rules (the paper's
"present in the evaluated implementation" extensions)."""

import pytest

from repro import analyze, config_by_name

ABSTRACTIONS = ("context-string", "transformer-string")

STATIC_FIELD_PROGRAM = """
class Registry { static Object value; }
class Producer {
    static void publish(Object v) { Registry.value = v; }
}
class Consumer {
    static Object fetch() {
        Object r = Registry.value;
        return r;
    }
}
class M {
    public static void main(String[] args) {
        Object a = new M(); // ha
        Object b = new M(); // hb
        Producer.publish(a); // c1
        Producer.publish(b); // c2
        Object got = Consumer.fetch(); // c3
    }
}
"""

EXCEPTION_PROGRAM = """
class ExcA { }
class ExcB { }
class Deep {
    static void boom() {
        ExcA e = new ExcA(); // ea
        throw e;
    }
}
class Mid {
    static void relay() {
        Deep.boom(); // c1
    }
}
class M {
    public static void main(String[] args) {
        try {
            Mid.relay(); // c2
        } catch (ExcA caught) {
            Object seen = caught;
        }
        ExcB other = new ExcB(); // eb
    }
}
"""


@pytest.mark.parametrize("abstraction", ABSTRACTIONS)
class TestStaticFields:
    def test_static_field_is_a_global_join_point(self, abstraction):
        r = analyze(STATIC_FIELD_PROGRAM, config_by_name("2-call", abstraction))
        assert r.static_field_points_to("Registry.value") == {"ha", "hb"}
        assert r.points_to("M.main/got") == {"ha", "hb"}

    def test_reader_in_unreachable_method_gets_nothing(self, abstraction):
        source = STATIC_FIELD_PROGRAM.replace(
            "Object got = Consumer.fetch(); // c3", ""
        )
        r = analyze(source, config_by_name("1-call", abstraction))
        assert r.points_to("Consumer.fetch/r") == set()

    def test_spts_counts_exposed(self, abstraction):
        r = analyze(STATIC_FIELD_PROGRAM, config_by_name("1-call", abstraction))
        assert len(r.spts) >= 1


class TestStaticFieldCompactness:
    def test_transformer_strings_store_one_fact_per_site(self):
        """Under +H configurations context strings enumerate the loaded
        value per reachable context of the loading method; transformer
        strings use a single wildcard fact."""
        cs = analyze(
            STATIC_FIELD_PROGRAM, config_by_name("2-call+H", "context-string")
        )
        ts = analyze(
            STATIC_FIELD_PROGRAM,
            config_by_name("2-call+H", "transformer-string"),
        )
        cs_r = [a for (y, h, a) in cs.pts if y == "Consumer.fetch/r"]
        ts_r = [a for (y, h, a) in ts.pts if y == "Consumer.fetch/r"]
        assert len(ts_r) <= len(cs_r)
        assert cs.pts_ci() == ts.pts_ci()


@pytest.mark.parametrize("abstraction", ABSTRACTIONS)
class TestExceptions:
    def test_exception_propagates_up_call_chain(self, abstraction):
        r = analyze(EXCEPTION_PROGRAM, config_by_name("2-call", abstraction))
        assert r.thrown_exceptions("Deep.boom") == {"ea"}
        assert r.thrown_exceptions("Mid.relay") == {"ea"}
        assert r.thrown_exceptions("M.main") == {"ea"}

    def test_catch_binds_exception_object(self, abstraction):
        r = analyze(EXCEPTION_PROGRAM, config_by_name("2-call", abstraction))
        assert r.points_to("M.main/caught") == {"ea"}
        assert r.points_to("M.main/seen") == {"ea"}

    def test_unthrown_object_not_caught(self, abstraction):
        r = analyze(EXCEPTION_PROGRAM, config_by_name("2-call", abstraction))
        assert "eb" not in r.points_to("M.main/caught")

    def test_exceptions_in_unreachable_code_ignored(self, abstraction):
        source = """
        class Exc { }
        class Dead { static void never() { Exc e = new Exc(); // he
            throw e; } }
        class M { public static void main(String[] args) { } }
        """
        r = analyze(source, config_by_name("1-call", abstraction))
        assert r.texc == set()


class TestExceptionContextSensitivity:
    SOURCE = """
    class Exc { }
    class Thrower {
        static void go(Object p) {
            throw p;
        }
    }
    class M {
        public static void main(String[] args) {
            Object e1 = new Exc(); // e1
            Object e2 = new Exc(); // e2
            try { Thrower.go(e1); // c1
            } catch (Exc a) { Object got1 = a; }
            try { Thrower.go(e2); // c2
            } catch (Exc b) { Object got2 = b; }
        }
    }
    """

    @pytest.mark.parametrize("abstraction", ABSTRACTIONS)
    def test_flow_insensitive_catch_merges(self, abstraction):
        # Both catch vars live in main: texc(main) holds both objects, so
        # the flow-insensitive catch rule merges them — identically under
        # both abstractions.
        r = analyze(self.SOURCE, config_by_name("1-call", abstraction))
        assert r.points_to("M.main/a") == {"e1", "e2"}
        assert r.thrown_exceptions("Thrower.go") == {"e1", "e2"}

    def test_abstractions_agree_on_texc_projection(self):
        for config_name in ("1-call", "1-call+H", "2-object+H"):
            cs = analyze(self.SOURCE, config_by_name(config_name, "context-string"))
            ts = analyze(
                self.SOURCE, config_by_name(config_name, "transformer-string")
            )
            assert {(p, h) for (p, h, _) in cs.texc} == {
                (p, h) for (p, h, _) in ts.texc
            }, config_name


class TestExtensionsPreserveCoreBehaviour:
    @pytest.mark.parametrize("program", [STATIC_FIELD_PROGRAM, EXCEPTION_PROGRAM])
    @pytest.mark.parametrize(
        "config_name", ["insensitive", "1-call", "1-call+H", "1-object",
                        "2-object+H"]
    )
    def test_ci_projection_equality_still_holds(self, program, config_name):
        cs = analyze(program, config_by_name(config_name, "context-string"))
        ts = analyze(program, config_by_name(config_name, "transformer-string"))
        assert cs.pts_ci() == ts.pts_ci()
        assert cs.call_graph() == ts.call_graph()
        assert {(f, h) for (f, h, _) in cs.spts} == {
            (f, h) for (f, h, _) in ts.spts
        }

    def test_subsumption_elimination_safe_with_extensions(self):
        plain = analyze(
            EXCEPTION_PROGRAM,
            config_by_name("1-call+H", "transformer-string"),
        )
        pruned = analyze(
            EXCEPTION_PROGRAM,
            config_by_name(
                "1-call+H", "transformer-string", eliminate_subsumed=True
            ),
        )
        assert plain.pts_ci() == pruned.pts_ci()
        assert {(p, h) for (p, h, _) in plain.texc} == {
            (p, h) for (p, h, _) in pruned.texc
        }
