"""Tests for the DOT exports."""

import pytest

from repro import analyze, config_by_name
from repro.cfl.pag import build_pag
from repro.core.graphviz import call_graph_dot, pag_dot, points_to_dot
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_1


@pytest.fixture(scope="module")
def result():
    return analyze(FIGURE_1, config_by_name("1-call"))


class TestCallGraphDot:
    def test_structure(self, result):
        dot = call_graph_dot(result)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"T.main" [shape=doublecircle];' in dot
        assert '"T.main" -> "T.id" [label="c2"];' in dot

    def test_all_edges_present(self, result):
        dot = call_graph_dot(result)
        assert dot.count("->") == len(result.call_graph())

    def test_title(self, result):
        assert 'digraph "my graph"' in call_graph_dot(result, title="my graph")


class TestPointsToDot:
    def test_bipartite_shapes(self, result):
        dot = points_to_dot(result)
        assert '"h1" [shape=ellipse, style=filled];' in dot
        assert '"T.main/x" [shape=box];' in dot
        assert '"T.main/x" -> "h1";' in dot

    def test_restriction(self, result):
        dot = points_to_dot(result, variables=["T.main/x1"])
        assert '"T.main/x1" -> "h1";' in dot
        assert '"T.main/y1"' not in dot

    def test_quoting(self):
        r = analyze(
            'class A { public static void main(String[] args) '
            '{ Object x = new A(); // h"1\n } }',
            config_by_name("1-call"),
        )
        dot = points_to_dot(r)
        assert '\\"' in dot


class TestPagDot:
    def test_edges_with_labels(self):
        facts = facts_from_source(FIGURE_1)
        pag = build_pag(facts)
        dot = pag_dot(pag)
        assert "store[f]" in dot
        assert "load[f]" in dot
        assert dot.count("->") == len(pag.edges)

    def test_call_site_markers(self):
        facts = facts_from_source(FIGURE_1)
        from repro.cfl.pag import cha_call_graph

        pag = build_pag(facts, call_graph=cha_call_graph(facts))
        dot = pag_dot(pag)
        assert "(c2" in dot  # entry edge marker
