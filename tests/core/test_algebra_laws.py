"""Inverse-semigroup theory for the transformer-string algebra.

Paper Section 3: "The set of context transformations is an inverse
semigroup, which is a semigroup with unique inverses."  That statement
is about ``CtxtT`` — the closure of the primitive push/pop letters
under composition, which our *wildcard-free* canonical strings
represent exactly.  Beyond the defining laws, an inverse semigroup
satisfies a body of classical theory — idempotents commute, inverses
are unique, ``(st)⁻¹ = t⁻¹s⁻¹``, the natural partial order behaves —
all checked here as free oracles.

The wildcard ``*`` only enters with Section 4's *abstraction*
(truncation), and it genuinely weakens the structure: the extended
domain still satisfies the regular laws ``t;t⁻¹;t = t``, but its
idempotents no longer commute (``*`` and a guard are a counterexample,
pinned below) — so the abstract domain is a regular *-semigroup, not an
inverse semigroup.  The paper's theorems only need soundness of
truncation (Lemma 4.2), which is unaffected.

(⊥ completes the structure: composition with ⊥ is ⊥ and ⊥⁻¹ = ⊥; the
helpers below extend the operations accordingly.)
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transformer_strings import (
    EPSILON,
    TransformerString,
    compose,
    inverse,
    subsumes,
)

ALPHABET = ("a", "b")

strings = st.builds(
    TransformerString,
    pops=st.lists(st.sampled_from(ALPHABET), max_size=2).map(tuple),
    wildcard=st.booleans(),
    pushes=st.lists(st.sampled_from(ALPHABET), max_size=2).map(tuple),
)

#: The exact representation of the paper's CtxtT (no abstraction).
exact_strings = st.builds(
    TransformerString,
    pops=st.lists(st.sampled_from(ALPHABET), max_size=2).map(tuple),
    wildcard=st.just(False),
    pushes=st.lists(st.sampled_from(ALPHABET), max_size=2).map(tuple),
)


def comp(x, y):
    """Composition extended to ⊥ (represented as None)."""
    if x is None or y is None:
        return None
    return compose(x, y)


def inv(x):
    return None if x is None else inverse(x)


def small_universe(wildcards: bool = False):
    """Every canonical string with segments of length ≤ 1 over {a}."""
    segments = [(), ("a",)]
    return [
        TransformerString(pops, wildcard, pushes)
        for pops in segments
        for wildcard in ((False, True) if wildcards else (False,))
        for pushes in segments
    ]


class TestSemigroupLaws:
    @given(strings, strings, strings)
    @settings(max_examples=200, deadline=None)
    def test_associativity_with_bottom(self, x, y, z):
        assert comp(comp(x, y), z) == comp(x, comp(y, z))

    @given(strings)
    @settings(max_examples=100, deadline=None)
    def test_identity_element(self, x):
        assert comp(EPSILON, x) == x
        assert comp(x, EPSILON) == x

    @given(strings, strings)
    @settings(max_examples=200, deadline=None)
    def test_antidistributive_inverse(self, x, y):
        """(x ; y)⁻¹ = y⁻¹ ; x⁻¹."""
        assert inv(comp(x, y)) == comp(inv(y), inv(x))


class TestIdempotents:
    @given(strings)
    @settings(max_examples=100, deadline=None)
    def test_x_xinv_is_idempotent(self, x):
        e = comp(x, inv(x))
        assert comp(e, e) == e

    @given(exact_strings, exact_strings)
    @settings(max_examples=200, deadline=None)
    def test_idempotents_commute_without_wildcards(self, x, y):
        """The defining property separating inverse semigroups from
        regular semigroups: idempotents form a commutative subsemigroup.
        Holds exactly on the paper's CtxtT (wildcard-free strings)."""
        e = comp(x, inv(x))
        f = comp(y, inv(y))
        assert comp(e, f) == comp(f, e)

    def test_wildcard_breaks_idempotent_commutation(self):
        """The abstraction's ``*`` is idempotent but does not commute
        with guards: the abstract domain is regular, not inverse."""
        star = TransformerString((), True, ())
        guard = TransformerString(("a",), False, ("a",))
        assert comp(star, star) == star
        assert comp(guard, guard) == guard
        assert comp(star, guard) != comp(guard, star)

    @given(strings)
    @settings(max_examples=100, deadline=None)
    def test_idempotent_shape(self, x):
        """x ; x⁻¹ is a guard: equal pop and push segments."""
        e = comp(x, inv(x))
        if e is not None:
            assert e.pops == e.pushes


class TestUniqueInverses:
    def test_inverse_unique_on_small_universe(self):
        """For every t in (wildcard-free) CtxtT, exactly one s in the
        universe satisfies both t;s;t = t and s;t;s = s — inverse(t)."""
        universe = small_universe(wildcards=False)
        for t in universe:
            witnesses = [
                s
                for s in universe
                if comp(comp(t, s), t) == t and comp(comp(s, t), s) == s
            ]
            assert witnesses == [inverse(t)] or inverse(t) in witnesses
            # uniqueness:
            assert len(witnesses) == 1, (t, witnesses)


class TestNaturalPartialOrder:
    """In an inverse semigroup, s ≤ t iff s = e;t for an idempotent e.
    For transformer strings the natural order coincides with semantic
    restriction, which `subsumes` captures in the wildcard-free case."""

    def test_guard_below_identity(self):
        guard = TransformerString(("a",), False, ("a",))
        # guard = guard ; ε and guard is idempotent: guard ≤ ε.
        assert comp(guard, EPSILON) == guard
        assert comp(guard, guard) == guard
        assert subsumes(EPSILON, guard)

    @given(strings, strings)
    @settings(max_examples=200, deadline=None)
    def test_restriction_is_subsumed(self, x, y):
        """e;x for idempotent e = y;y⁻¹ is a restriction of x, so x
        subsumes it whenever both exist and x is wildcard-free."""
        e = comp(y, inv(y))
        restricted = comp(e, x)
        if restricted is None or x.wildcard or e is None or e.wildcard:
            return
        assert subsumes(x, restricted), (x, y, restricted)


class TestExhaustiveSmallUniverse:
    def test_composition_closed(self):
        universe = small_universe()
        closure = set(universe)
        for x, y in itertools.product(universe, repeat=2):
            out = comp(x, y)
            if out is not None:
                # Segments can grow by at most the partner's length.
                assert len(out.pops) <= 2 and len(out.pushes) <= 2
                closure.add(out)
        # The closure over length-1 segments stays within length-2 shapes.
        assert all(
            len(t.pops) <= 2 and len(t.pushes) <= 2 for t in closure
        )

    def test_inverse_is_involution_on_universe(self):
        for t in small_universe():
            assert inverse(inverse(t)) == t
