"""Unit tests for the worklist solver: each deduction rule in isolation,
plus dedup/statistics behaviour."""

import pytest

from repro import analyze, config_by_name
from repro.core.config import AnalysisConfig
from repro.core.domains import make_domain
from repro.core.sensitivity import Flavour
from repro.core.solver import Solver
from repro.frontend.factgen import FactSet, facts_from_source


def run(source, sensitivity="1-call", abstraction="transformer-string"):
    return analyze(source, config_by_name(sensitivity, abstraction))


def wrap_main(body):
    return (
        "class M { public static void main(String[] args) {\n%s\n} }" % body
    )


class TestNewAndAssign:
    def test_new_rule(self):
        r = run(wrap_main("Object x = new M(); // h1"))
        assert r.points_to("M.main/x") == {"h1"}

    def test_assign_chain(self):
        r = run(wrap_main(
            "Object x = new M(); // h1\n Object y = x; Object z = y;"
        ))
        assert r.points_to("M.main/z") == {"h1"}

    def test_assign_is_directional(self):
        r = run(wrap_main(
            "Object x = new M(); // h1\n Object y = new M(); // h2\n y = x;"
        ))
        assert r.points_to("M.main/y") == {"h1", "h2"}
        assert r.points_to("M.main/x") == {"h1"}

    def test_unreachable_method_derives_nothing(self):
        r = run(
            "class M { static void dead() { Object d = new M(); // h9\n } "
            "public static void main(String[] args) { } }"
        )
        assert r.pts_ci() == frozenset()
        assert r.reachable_methods() == {"M.main"}


class TestHeapAccess:
    SOURCE = """
    class Box { Object f; }
    class M {
        public static void main(String[] args) {
            Box b = new Box(); // hb
            Object o = new M(); // ho
            b.f = o;
            Object r = b.f;
        }
    }
    """

    def test_store_load_roundtrip(self):
        r = run(self.SOURCE)
        assert r.points_to("M.main/r") == {"ho"}
        assert r.hpts_ci() == {("hb", "f", "ho")}

    def test_different_fields_do_not_mix(self):
        r = run(
            """
            class Box { Object f; Object g; }
            class M {
                public static void main(String[] args) {
                    Box b = new Box(); // hb
                    Object o = new M(); // ho
                    b.f = o;
                    Object r = b.g;
                }
            }
            """
        )
        assert r.points_to("M.main/r") == set()

    def test_different_base_objects_do_not_mix(self):
        r = run(
            """
            class Box { Object f; }
            class M {
                public static void main(String[] args) {
                    Box b1 = new Box(); // hb1
                    Box b2 = new Box(); // hb2
                    Object o = new M(); // ho
                    b1.f = o;
                    Object r = b2.f;
                }
            }
            """
        )
        assert r.points_to("M.main/r") == set()

    def test_aliased_bases_mix(self):
        r = run(
            """
            class Box { Object f; }
            class M {
                public static void main(String[] args) {
                    Box b1 = new Box(); // hb
                    Box b2 = b1;
                    Object o = new M(); // ho
                    b1.f = o;
                    Object r = b2.f;
                }
            }
            """
        )
        assert r.points_to("M.main/r") == {"ho"}


class TestCalls:
    def test_param_and_return_static(self):
        r = run(
            """
            class M {
                static Object id(Object p) { return p; }
                public static void main(String[] args) {
                    Object x = new M(); // h1
                    Object y = M.id(x); // c1
                }
            }
            """
        )
        assert r.points_to("M.id/p") == {"h1"}
        assert r.points_to("M.main/y") == {"h1"}

    def test_virtual_dispatch_selects_override(self):
        r = run(
            """
            class A { Object mk() { return new A(); // ha\n } }
            class B extends A { Object mk() { return new B(); // hb\n } }
            class M {
                public static void main(String[] args) {
                    A o = new B(); // recv
                    Object r = o.mk(); // c1
                }
            }
            """
        )
        assert r.points_to("M.main/r") == {"hb"}
        assert ("c1", "B.mk") in r.call_graph()
        assert ("c1", "A.mk") not in r.call_graph()

    def test_virtual_dispatch_on_inherited_method(self):
        r = run(
            """
            class A { Object mk() { return new A(); // ha\n } }
            class B extends A { }
            class M {
                public static void main(String[] args) {
                    A o = new B(); // recv
                    Object r = o.mk(); // c1
                }
            }
            """
        )
        assert ("c1", "A.mk") in r.call_graph()
        assert r.points_to("M.main/r") == {"ha"}

    def test_this_receives_receiver_object(self):
        r = run(
            """
            class A { Object self() { return this; } }
            class M {
                public static void main(String[] args) {
                    A o = new A(); // recv
                    Object r = o.self(); // c1
                }
            }
            """
        )
        assert r.points_to("A.self/this") == {"recv"}
        assert r.points_to("M.main/r") == {"recv"}

    def test_dispatch_is_points_to_driven(self):
        # No allocation flows to the receiver: no call edge at all.
        r = run(
            """
            class A { void go() { } }
            class M {
                public static void main(String[] args) {
                    A o = null;
                    o.go(); // c1
                }
            }
            """
        )
        assert r.call_graph() == frozenset()

    def test_multiple_actuals(self):
        r = run(
            """
            class M {
                static Object second(Object a, Object b) { return b; }
                public static void main(String[] args) {
                    Object x = new M(); // h1
                    Object y = new M(); // h2
                    Object r = M.second(x, y); // c1
                }
            }
            """
        )
        assert r.points_to("M.main/r") == {"h2"}

    def test_recursion_terminates_and_is_sound(self):
        r = run(
            """
            class M {
                static Object loop(Object p) {
                    Object q = M.loop(p); // rec
                    return p;
                }
                public static void main(String[] args) {
                    Object x = new M(); // h1
                    Object r = M.loop(x); // c1
                }
            }
            """,
            sensitivity="2-call",
        )
        assert "h1" in r.points_to("M.main/r")
        assert "h1" in r.points_to("M.loop/p")

    def test_recursion_object_sensitive_transformers(self):
        r = run(
            """
            class A {
                Object spin(Object p) {
                    Object q = spin(p); // rec
                    return p;
                }
            }
            class M {
                public static void main(String[] args) {
                    A o = new A(); // recv
                    Object x = new M(); // h1
                    Object r = o.spin(x); // c1
                }
            }
            """,
            sensitivity="2-object+H",
        )
        assert "h1" in r.points_to("M.main/r")


class TestSolverMechanics:
    def test_missing_main_raises(self):
        facts = FactSet()
        domain = make_domain("ts", Flavour.CALL_SITE, 1, 0)
        with pytest.raises(ValueError, match="no main"):
            Solver(facts, domain).solve()

    def test_stats_populated(self):
        source = wrap_main("Object x = new M(); // h1\n Object y = x;")
        r = run(source)
        assert r.stats.facts_derived >= 3
        assert r.stats.seconds > 0
        assert set(r.stats.as_dict()) == {
            "facts_derived", "facts_deduplicated", "facts_subsumed",
            "rule_firings", "seconds",
        }

    def test_deduplication_counted(self):
        # x points to h1 through two assign paths: second derivation dedups.
        source = wrap_main(
            "Object a = new M(); // h1\n Object b = a; Object c = a;"
            " Object d = b; d = c;"
        )
        r = run(source)
        assert r.stats.facts_deduplicated >= 1

    def test_relation_sizes_keys(self):
        r = run(wrap_main("Object x = new M(); // h1"))
        assert set(r.relation_sizes()) == {"pts", "hpts", "call"}
        assert r.total_facts() == sum(r.relation_sizes().values())

    @pytest.mark.parametrize("abstraction", ["context-string", "transformer-string"])
    def test_m0_context_insensitive_runs(self, abstraction):
        r = run(wrap_main("Object x = new M(); // h1"),
                sensitivity="insensitive", abstraction=abstraction)
        assert r.points_to("M.main/x") == {"h1"}


class TestNaiveIndexAblation:
    """The Section 7 indexing ablation must never change results."""

    def test_identical_results_on_corpus(self):
        from repro.frontend.paper_programs import ALL_PROGRAMS

        for name, source in ALL_PROGRAMS.items():
            for sensitivity in ("1-call+H", "2-object+H"):
                indexed = analyze(
                    source, config_by_name(sensitivity, "transformer-string")
                )
                naive = analyze(
                    source,
                    config_by_name(
                        sensitivity, "transformer-string",
                        naive_transformer_index=True,
                    ),
                )
                assert indexed.pts == naive.pts, (name, sensitivity)
                assert indexed.hpts == naive.hpts, (name, sensitivity)
                assert indexed.call == naive.call, (name, sensitivity)

    def test_flag_is_inert_for_context_strings(self):
        source = wrap_main("Object x = new M(); // h1")
        r = analyze(
            source,
            config_by_name(
                "1-call", "context-string", naive_transformer_index=True
            ),
        )
        assert r.points_to("M.main/x") == {"h1"}


class TestEliminateSubsumedSoundness:
    SOURCES = []

    def test_elimination_never_changes_ci_results(self):
        from repro.frontend.paper_programs import ALL_PROGRAMS

        for name, source in ALL_PROGRAMS.items():
            for sensitivity in ("1-call", "1-call+H", "2-object+H"):
                plain = analyze(
                    source,
                    config_by_name(sensitivity, "transformer-string"),
                )
                pruned = analyze(
                    source,
                    config_by_name(
                        sensitivity, "transformer-string",
                        eliminate_subsumed=True,
                    ),
                )
                assert plain.pts_ci() == pruned.pts_ci(), (name, sensitivity)
                assert plain.hpts_ci() == pruned.hpts_ci(), (name, sensitivity)
                assert plain.call_graph() == pruned.call_graph(), (
                    name, sensitivity,
                )
                assert pruned.total_facts() <= plain.total_facts()
