"""Deeper-than-paper context levels: the parameterization is uniform in
(m, h), so m = 3 must work out of the box across both abstractions and
both execution paths."""

import pytest

from repro import analyze, config_by_name
from repro.compile.emit import compile_transformer_analysis
from repro.core.sensitivity import Flavour
from repro.frontend.factgen import facts_from_source

DEEP_CHAIN = """
class T {
    static Object id3(Object p) { return p; }
    static Object id2(Object q) {
        Object t = T.id3(q); // k3
        return t;
    }
    static Object id1(Object r) {
        Object t = T.id2(r); // k2
        return t;
    }
    public static void main(String[] args) {
        Object a = new T(); // ha
        Object b = new T(); // hb
        Object x = T.id1(a); // k1a
        Object y = T.id1(b); // k1b
    }
}
"""


class TestThreeCallSite:
    """The DEEP_CHAIN wrapper needs 3 levels of call-string to stay
    precise: the shared internal sites k2/k3 merge below that."""

    @pytest.mark.parametrize("abstraction", ["context-string", "transformer-string"])
    def test_two_levels_insufficient(self, abstraction):
        r = analyze(DEEP_CHAIN, config_by_name("2-call", abstraction))
        assert r.points_to("T.main/x") == {"ha", "hb"}

    @pytest.mark.parametrize("abstraction", ["context-string", "transformer-string"])
    def test_three_levels_precise(self, abstraction):
        r = analyze(DEEP_CHAIN, config_by_name("3-call", abstraction))
        assert r.points_to("T.main/x") == {"ha"}
        assert r.points_to("T.main/y") == {"hb"}

    def test_abstractions_agree_at_depth_3(self):
        cs = analyze(DEEP_CHAIN, config_by_name("3-call+2H", "context-string"))
        ts = analyze(DEEP_CHAIN, config_by_name("3-call+2H", "transformer-string"))
        assert cs.pts_ci() == ts.pts_ci()
        assert cs.call_graph() == ts.call_graph()
        assert ts.total_facts() <= cs.total_facts()

    def test_config_names(self):
        assert config_by_name("3-object+2H").sensitivity_name == "3-object+2H"
        assert config_by_name("3-call+2H").m == 3
        assert config_by_name("3-call+2H").h == 2


class TestThreeObject:
    NESTED = """
    class C { Object make() { Object o = new C(); // leaf
        return o; } }
    class B { Object mid() { C c = new C(); // hc
        Object o = c.make(); // m2
        return o; } }
    class A { Object top() { B b = new B(); // hb
        Object o = b.mid(); // m1
        return o; } }
    class M {
        public static void main(String[] args) {
            A a1 = new A(); // ha1
            A a2 = new A(); // ha2
            Object x = a1.top(); // c1
            Object y = a2.top(); // c2
        }
    }
    """

    @pytest.mark.parametrize("abstraction", ["context-string", "transformer-string"])
    def test_runs_and_is_sound(self, abstraction):
        r = analyze(self.NESTED, config_by_name("3-object+2H", abstraction))
        assert r.points_to("M.main/x") == {"leaf"}
        assert r.points_to("M.main/y") == {"leaf"}

    def test_ci_agreement(self):
        cs = analyze(self.NESTED, config_by_name("3-object+2H", "context-string"))
        ts = analyze(self.NESTED, config_by_name("3-object+2H", "transformer-string"))
        assert cs.pts_ci() == ts.pts_ci()

    def test_heap_contexts_reach_depth_2(self):
        r = analyze(self.NESTED, config_by_name("3-object+2H", "context-string"))
        heap_contexts = {
            a[0] for (y, h, a) in r.pts if y == "M.main/x" and h == "leaf"
        }
        assert any(len(hc) == 2 for hc in heap_contexts)


class TestSpecializedDatalogAtDepth3:
    def test_configuration_count(self):
        from repro.compile.configurations import enumerate_configurations

        # pts domain at m=3, h=2: 3 × 4 × 2 = 24 configurations.
        assert len(enumerate_configurations(2, 3)) == 24

    def test_compiled_matches_solver(self):
        facts = facts_from_source(DEEP_CHAIN)
        solver = analyze(facts, config_by_name("3-call+2H", "transformer-string"))
        compiled = compile_transformer_analysis(
            facts, Flavour.CALL_SITE, 3, 2
        ).run(backend="compiled")
        assert compiled.pts == solver.pts
        assert compiled.call == solver.call
