"""Tests for analysis configuration objects."""

import pytest

from repro.core.config import (
    PAPER_CONFIGURATIONS,
    AnalysisConfig,
    config_by_name,
)
from repro.core.sensitivity import Flavour


class TestAnalysisConfig:
    def test_defaults(self):
        cfg = AnalysisConfig()
        assert cfg.abstraction == "transformer-string"
        assert cfg.flavour is Flavour.CALL_SITE
        assert (cfg.m, cfg.h) == (1, 0)

    def test_invalid_abstraction(self):
        with pytest.raises(ValueError, match="abstraction"):
            AnalysisConfig(abstraction="bdd")

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            AnalysisConfig(flavour=Flavour.OBJECT, m=2, h=0)
        with pytest.raises(ValueError):
            AnalysisConfig(flavour=Flavour.CALL_SITE, m=1, h=2)

    def test_with_abstraction(self):
        cfg = AnalysisConfig(abstraction="context-string")
        other = cfg.with_abstraction("transformer-string")
        assert other.abstraction == "transformer-string"
        assert (other.flavour, other.m, other.h) == (cfg.flavour, cfg.m, cfg.h)

    def test_frozen(self):
        cfg = AnalysisConfig()
        with pytest.raises(Exception):
            cfg.m = 3


class TestNames:
    @pytest.mark.parametrize(
        "name,flavour,m,h",
        [
            ("1-call", Flavour.CALL_SITE, 1, 0),
            ("1-call+H", Flavour.CALL_SITE, 1, 1),
            ("2-call", Flavour.CALL_SITE, 2, 0),
            ("1-object", Flavour.OBJECT, 1, 0),
            ("2-object+H", Flavour.OBJECT, 2, 1),
            ("2-type+H", Flavour.TYPE, 2, 1),
            ("insensitive", Flavour.CALL_SITE, 0, 0),
        ],
    )
    def test_config_by_name(self, name, flavour, m, h):
        cfg = config_by_name(name)
        assert (cfg.flavour, cfg.m, cfg.h) == (flavour, m, h)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            config_by_name("9-quantum")

    @pytest.mark.parametrize("name", PAPER_CONFIGURATIONS)
    def test_sensitivity_name_roundtrips(self, name):
        assert config_by_name(name).sensitivity_name == name

    def test_describe(self):
        cfg = config_by_name("2-object+H", "context-string")
        assert cfg.describe() == "2-object+H/context-string"

    def test_paper_configurations_are_the_five_of_figure6(self):
        assert PAPER_CONFIGURATIONS == (
            "1-call", "1-call+H", "1-object", "2-object+H", "2-type+H",
        )
