"""Tests for the beyond-paper flavours: plain object sensitivity
(paper Section 2.2's contrast case) and uniform hybrid sensitivity
(the paper's citation [6])."""

import pytest

from repro import analyze, config_by_name
from repro.bench.fuzz import random_program
from repro.compile.emit import compile_transformer_analysis
from repro.core.sensitivity import Flavour, validate_levels
from repro.frontend.factgen import generate_facts
from repro.frontend.paper_programs import FIGURE_1

STATIC_WRAPPER = """
class Util { static Object id(Object p) { return p; } }
class M {
    public static void main(String[] args) {
        Object a = new M(); // ha
        Object b = new M(); // hb
        Object x1 = Util.id(a); // s1
        Object x2 = Util.id(b); // s2
    }
}
"""


class TestLevels:
    def test_plain_object_allows_h_le_m(self):
        validate_levels(Flavour.PLAIN_OBJECT, 2, 0)
        validate_levels(Flavour.PLAIN_OBJECT, 2, 2)

    def test_hybrid_requires_h_eq_m_minus_1(self):
        validate_levels(Flavour.HYBRID, 2, 1)
        with pytest.raises(ValueError):
            validate_levels(Flavour.HYBRID, 2, 0)

    def test_config_names(self):
        for name in ("1-plain-object", "2-plain-object+H", "1-hybrid",
                     "2-hybrid+H"):
            cfg = config_by_name(name)
            assert cfg.sensitivity_name == name


class TestPlainVsFullObject:
    """Paper Section 2.2: "the receiver object for the subsequent
    invocation of id inside id2 stays the same, and thus id is invoked
    with the same method context of [h4, entry]" under *full* object
    sensitivity, whereas "id is invoked with the method context of
    [h4, h4, entry] under plain object sensitivity"."""

    def test_full_object_contexts_of_id(self):
        r = analyze(FIGURE_1, config_by_name("2-object+H", "context-string"))
        contexts = {m for (p, m) in r.reach if p == "T.id"}
        assert ("h4", "<entry>") in contexts
        assert not any(m == ("h4", "h4") for m in contexts)

    def test_plain_object_contexts_of_id(self):
        r = analyze(
            FIGURE_1, config_by_name("2-plain-object+H", "context-string")
        )
        contexts = {m for (p, m) in r.reach if p == "T.id"}
        assert ("h4", "h4") in contexts  # the paper's [h4, h4, entry]

    @pytest.mark.parametrize("name", ["1-plain-object", "2-plain-object+H"])
    def test_plain_object_still_separates_x2_y2(self, name):
        r = analyze(FIGURE_1, config_by_name(name))
        assert r.points_to("T.main/x2") == {"h1"}
        assert r.points_to("T.main/y2") == {"h2"}


class TestHybrid:
    def test_static_wrappers_precise_under_hybrid(self):
        """Object sensitivity merges static-call contexts (the callee
        inherits the caller's single context); the hybrid's call-site
        push keeps the two wrapper invocations apart."""
        obj = analyze(STATIC_WRAPPER, config_by_name("1-object"))
        hybrid = analyze(STATIC_WRAPPER, config_by_name("1-hybrid"))
        assert obj.points_to("M.main/x1") == {"ha", "hb"}
        assert hybrid.points_to("M.main/x1") == {"ha"}
        assert hybrid.points_to("M.main/x2") == {"hb"}

    def test_hybrid_keeps_object_contexts_for_virtuals(self):
        r = analyze(FIGURE_1, config_by_name("2-hybrid+H", "context-string"))
        contexts = {m for (p, m) in r.reach if p == "T.id"}
        assert ("h4", "<entry>") in contexts
        # Figure 1's x2/y2 stay precise, as under full object sensitivity.
        assert r.points_to("T.main/x2") == {"h1"}


class TestAbstractionParity:
    """The new flavours inherit the paper's precision-equality property
    (their merges are the call-site/object shapes with different pushed
    elements)."""

    CONFIGS = ("1-plain-object", "2-plain-object+H", "1-hybrid", "2-hybrid+H")

    @pytest.mark.parametrize("config_name", CONFIGS)
    def test_ci_projection_equality_on_corpus(self, config_name):
        from repro.frontend.paper_programs import ALL_PROGRAMS

        sources = dict(ALL_PROGRAMS, static_wrapper=STATIC_WRAPPER)
        for name, source in sources.items():
            cs = analyze(source, config_by_name(config_name, "context-string"))
            ts = analyze(source, config_by_name(config_name, "transformer-string"))
            assert cs.pts_ci() == ts.pts_ci(), (name, config_name)
            assert cs.call_graph() == ts.call_graph(), (name, config_name)

    @pytest.mark.parametrize("config_name", CONFIGS)
    @pytest.mark.parametrize("seed", range(6))
    def test_ci_projection_equality_on_fuzz(self, config_name, seed):
        facts = generate_facts(random_program(seed, size=3))
        cs = analyze(facts, config_by_name(config_name, "context-string"))
        ts = analyze(facts, config_by_name(config_name, "transformer-string"))
        assert cs.pts_ci() == ts.pts_ci()
        assert cs.call_graph() == ts.call_graph()


class TestDatalogPathSupportsNewFlavours:
    @pytest.mark.parametrize(
        "flavour,m,h",
        [(Flavour.PLAIN_OBJECT, 2, 1), (Flavour.HYBRID, 2, 1)],
    )
    def test_specialized_program_matches_solver(self, flavour, m, h):
        facts = generate_facts(random_program(3, size=3))
        name = (
            "2-plain-object+H" if flavour is Flavour.PLAIN_OBJECT
            else "2-hybrid+H"
        )
        solver = analyze(facts, config_by_name(name, "transformer-string"))
        compiled = compile_transformer_analysis(facts, flavour, m, h).run()
        assert compiled.pts == solver.pts
        assert compiled.call == solver.call
        assert compiled.texc == solver.texc
