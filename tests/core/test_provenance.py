"""Tests for fact provenance and derivation trees."""

import pytest

from repro import AnalysisConfig, Flavour, analyze, config_by_name
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5


def run(source, **kwargs):
    return analyze(
        source,
        AnalysisConfig(
            flavour=Flavour.CALL_SITE, m=1, h=0, track_provenance=True,
            **kwargs,
        ),
    )


class TestRecording:
    def test_every_derived_fact_has_provenance_or_is_seed(self):
        r = run(FIGURE_1)
        solver = r._solver
        for (y, h, a) in solver.pts:
            assert ("pts", y, h, a) in solver.provenance
        for fact in solver.call:
            assert ("call",) + fact in solver.provenance
        for fact in solver.reach:
            assert ("reach",) + fact in solver.provenance

    def test_entry_seed(self):
        r = run(FIGURE_1)
        why = r.derivation(("reach", "T.main", ("<entry>",)))
        assert why[0] == "ENTRY"

    def test_first_derivation_kept(self):
        r = run(FIGURE_1)
        # x1 points to h1; some rule derived it with premises.
        keys = [
            ("pts", y, h, a)
            for (y, h, a) in r.pts
            if y == "T.main/x1" and h == "h1"
        ]
        assert keys
        rule, premises, note = r.derivation(keys[0])
        assert rule in ("RET", "PARAM", "ASSIGN", "IND")
        assert premises

    def test_disabled_by_default(self):
        r = analyze(FIGURE_1, config_by_name("1-call"))
        with pytest.raises(ValueError, match="track_provenance"):
            r.explain(("pts", "T.main/x1", "h1", None))
        assert r._solver.provenance == {}


class TestExplain:
    def test_tree_reaches_entry(self):
        r = run(FIGURE_1)
        text = r.explain_points_to("T.main/x1", "h1")
        assert "ENTRY" in text
        assert "NEW" in text
        assert text.splitlines()[0].startswith("pts(T.main/x1, h1")

    def test_indirect_flow_explained_through_heap(self):
        r = run(FIGURE_1)
        text = r.explain_points_to("T.main/z", "h1")
        assert "IND" in text
        assert "STORE" in text
        assert "LOAD" in text

    def test_repeats_collapsed(self):
        r = run(FIGURE_1)
        text = r.explain_points_to("T.main/z", "h1")
        assert "see above" in text

    def test_missing_fact(self):
        r = run(FIGURE_1)
        assert "does not point to" in r.explain_points_to("T.main/x1", "h99")

    def test_depth_limit(self):
        r = run(FIGURE_1)
        shallow = r.explain_points_to("T.main/z", "h1", max_depth=1)
        assert "…" in shallow

    def test_static_call_provenance(self):
        r = analyze(
            FIGURE_5,
            AnalysisConfig(
                flavour=Flavour.CALL_SITE, m=1, h=1, track_provenance=True
            ),
        )
        text = r.explain_points_to("T.main/x", "h1")
        assert "STATIC" in text or "RET" in text

    def test_provenance_works_for_context_strings(self):
        r = run(FIGURE_1, abstraction="context-string")
        text = r.explain_points_to("T.main/x1", "h1")
        assert "RET" in text or "PARAM" in text


class TestExtensionsProvenance:
    SOURCE = """
    class Exc { }
    class Reg { static Object slot; }
    class M {
        static void boom() {
            Exc e = new Exc(); // he
            throw e;
        }
        public static void main(String[] args) {
            Object v = new M(); // hv
            Reg.slot = v;
            Object r = Reg.slot;
            try { M.boom(); // c1
            } catch (Exc caught) { }
        }
    }
    """

    def test_static_field_chain(self):
        r = run(self.SOURCE)
        text = r.explain_points_to("M.main/r", "hv")
        assert "SLOAD" in text
        assert "SSTORE" in text

    def test_exception_chain(self):
        r = run(self.SOURCE)
        text = r.explain_points_to("M.main/caught", "he")
        assert "ECATCH" in text
        assert "EPROP" in text
        assert "THROW" in text


class TestProvenanceDoesNotChangeResults:
    def test_identical_relations(self):
        plain = analyze(FIGURE_1, config_by_name("2-object+H"))
        tracked = analyze(
            FIGURE_1,
            AnalysisConfig(
                flavour=Flavour.OBJECT, m=2, h=1, track_provenance=True
            ),
        )
        assert plain.pts == tracked.pts
        assert plain.call == tracked.call
        assert plain.hpts == tracked.hpts
