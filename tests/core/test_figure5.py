"""Gold test: the exact derivation tables of paper Figure 5.

At m = 1, h = 1 under call-site sensitivity, the context-string
instantiation derives twelve pts and four call facts for the example
program; the transformer-string instantiation derives five and three,
with identical context-insensitive projections.  Every fact in the
paper's table is pinned literally (the paper prints ``entry`` for our
``<entry>`` sentinel).
"""

from repro import analyze, config_by_name
from repro.core.transformer_strings import TransformerString
from repro.frontend.paper_programs import FIGURE_5

EPS = TransformerString.identity()


def run(abstraction):
    return analyze(FIGURE_5, config_by_name("1-call+H", abstraction))


class TestContextStringColumn:
    def expected_pts(self):
        return {
            ("T.m/h", "h1", (("m1",), ("m1",))),
            ("T.m/h", "h1", (("m2",), ("m2",))),
            ("T.id/p", "h1", (("m1",), ("id1",))),
            ("T.id/p", "h1", (("m2",), ("id1",))),
            ("T.m/r", "h1", (("m1",), ("m1",))),
            ("T.m/r", "h1", (("m2",), ("m1",))),
            ("T.m/r", "h1", (("m1",), ("m2",))),
            ("T.m/r", "h1", (("m2",), ("m2",))),
            ("T.main/x", "h1", (("m1",), ("<entry>",))),
            ("T.main/x", "h1", (("m2",), ("<entry>",))),
            ("T.main/y", "h1", (("m1",), ("<entry>",))),
            ("T.main/y", "h1", (("m2",), ("<entry>",))),
        }

    def test_pts_facts_exactly_as_in_paper(self):
        assert run("context-string").pts == self.expected_pts()

    def test_call_facts_exactly_as_in_paper(self):
        assert run("context-string").call == {
            ("m1", "T.m", (("<entry>",), ("m1",))),
            ("m2", "T.m", (("<entry>",), ("m2",))),
            ("id1", "T.id", (("m1",), ("id1",))),
            ("id1", "T.id", (("m2",), ("id1",))),
        }

    def test_reach_facts(self):
        assert run("context-string").reach == {
            ("T.main", ("<entry>",)),
            ("T.m", ("m1",)),
            ("T.m", ("m2",)),
            ("T.id", ("id1",)),
        }

    def test_r_cannot_distinguish_m1_m2(self):
        """The heap objects returned from m1 and m2 are conflated: r's
        facts include the cross pairs (m1, m2) and (m2, m1)."""
        crosses = {
            f for f in run("context-string").pts
            if f[0] == "T.m/r" and f[2][0] != f[2][1]
        }
        assert len(crosses) == 2


class TestTransformerStringColumn:
    def test_pts_facts_exactly_as_in_paper(self):
        assert run("transformer-string").pts == {
            ("T.m/h", "h1", EPS),
            ("T.id/p", "h1", TransformerString.entry(("id1",))),
            ("T.m/r", "h1", EPS),
            ("T.main/x", "h1", TransformerString.exit(("m1",))),
            ("T.main/y", "h1", TransformerString.exit(("m2",))),
        }

    def test_call_facts_exactly_as_in_paper(self):
        assert run("transformer-string").call == {
            ("m1", "T.m", TransformerString.entry(("m1",))),
            ("m2", "T.m", TransformerString.entry(("m2",))),
            ("id1", "T.id", TransformerString.entry(("id1",))),
        }

    def test_reach_facts_match_paper(self):
        assert run("transformer-string").reach == {
            ("T.main", ("<entry>",)),
            ("T.m", ("m1",)),
            ("T.m", ("m2",)),
            ("T.id", ("id1",)),
        }

    def test_r_is_a_single_identity_fact(self):
        """Composing ε with id1̂ then id1̌ yields ε: the compact
        representation that motivates the paper (Section 6)."""
        facts = [f for f in run("transformer-string").pts if f[0] == "T.m/r"]
        assert facts == [("T.m/r", "h1", EPS)]


class TestColumnsAgree:
    def test_fact_count_reduction(self):
        cs, ts = run("context-string"), run("transformer-string")
        assert len(cs.pts) == 12 and len(ts.pts) == 5
        assert len(cs.call) == 4 and len(ts.call) == 3

    def test_ci_projections_identical(self):
        cs, ts = run("context-string"), run("transformer-string")
        assert cs.pts_ci() == ts.pts_ci()
        assert cs.call_graph() == ts.call_graph()

    def test_points_to_results(self):
        for abstraction in ("context-string", "transformer-string"):
            r = run(abstraction)
            assert r.points_to("T.main/x") == {"h1"}
            assert r.points_to("T.main/y") == {"h1"}
