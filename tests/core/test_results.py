"""Tests for the AnalysisResult views."""

import pytest

from repro import analyze, config_by_name
from repro.frontend.paper_programs import FIGURE_1

ALIAS_SOURCE = """
class Box { Object f; }
class M {
    public static void main(String[] args) {
        Object o = new M(); // ho
        Box p = new Box(); // hp
        Box q = p;
        Box r = new Box(); // hr
        p.f = o;
    }
}
"""


@pytest.fixture(scope="module")
def result():
    return analyze(ALIAS_SOURCE, config_by_name("1-call"))


class TestProjections:
    def test_points_to_unknown_var_is_empty(self, result):
        assert result.points_to("M.main/nothing") == frozenset()

    def test_points_to_with_contexts(self, result):
        facts = result.points_to_with_contexts("M.main/p")
        assert {h for (h, _) in facts} == {"hp"}

    def test_pts_ci_contains_all_vars(self, result):
        ci = result.pts_ci()
        assert ("M.main/p", "hp") in ci
        assert ("M.main/q", "hp") in ci

    def test_may_alias(self, result):
        assert result.may_alias("M.main/p", "M.main/q")
        assert not result.may_alias("M.main/p", "M.main/r")
        assert not result.may_alias("M.main/p", "M.main/o")

    def test_hpts_ci(self, result):
        assert result.hpts_ci() == {("hp", "f", "ho")}

    def test_field_may_alias_same_heap(self):
        r = analyze(FIGURE_1, config_by_name("1-call"))
        # without heap context both a.f and b.f resolve through m1.
        assert r.field_may_alias("m1", "m1", "f")

    def test_ci_sizes_match_projections(self, result):
        sizes = result.ci_sizes()
        assert sizes["pts"] == len(result.pts_ci())
        assert sizes["hpts"] == len(result.hpts_ci())
        assert sizes["call"] == len(result.call_graph())

    def test_seconds_positive(self, result):
        assert result.seconds > 0


class TestSubsumptionViews:
    def test_context_string_result_reports_none(self):
        r = analyze(ALIAS_SOURCE, config_by_name("1-call", "context-string"))
        assert r.subsumed_pts_facts() == []
        assert r.subsumption_ratio() == 0.0

    def test_ratio_zero_when_no_pts(self):
        r = analyze(
            "class M { public static void main(String[] args) { } }",
            config_by_name("1-call"),
        )
        assert r.subsumption_ratio() == 0.0
