"""Tests for the ground-truth semantics of context transformations.

These pin down the Section 3 definitions (single-context primitives) and
the :class:`ContextSet` machinery that the property tests later rely on
as an oracle, including the worked path examples P, P′ and P″ from the
paper's Sections 2.2–3 (experiment E7 of DESIGN.md).
"""

from repro.core.contexts import ERR
from repro.core.transformations import (
    ContextSet,
    WILDCARD,
    apply_word,
    apply_word_to_context,
    compose,
    identity,
    pop,
    pop_letter,
    push,
    push_letter,
)


class TestSingleContextPrimitives:
    def test_push_prefixes(self):
        assert push("a")(("b",)) == ("a", "b")

    def test_push_on_err(self):
        assert push("a")(ERR) is ERR

    def test_pop_strips_matching(self):
        assert pop("a")(("a", "b")) == ("b",)

    def test_pop_mismatch_is_err(self):
        assert pop("a")(("b",)) is ERR

    def test_pop_empty_is_err(self):
        assert pop("a")(()) is ERR

    def test_pop_on_err(self):
        assert pop("a")(ERR) is ERR

    def test_identity(self):
        assert identity()(("x",)) == ("x",)

    def test_compose_is_postfix(self):
        # compose(f, g) applies f first: push a then push b gives (b, a, …).
        fn = compose(push("a"), push("b"))
        assert fn(()) == ("b", "a")

    def test_push_then_pop_is_identity(self):
        fn = compose(push("a"), pop("a"))
        assert fn(("x",)) == ("x",)

    def test_pop_then_push_guards(self):
        fn = compose(pop("a"), push("a"))
        assert fn(("a", "x")) == ("a", "x")
        assert fn(("b", "x")) is ERR


class TestPaperSection3Paths:
    """The worked examples on paths P, P′ and P″ (Figure 1's program)."""

    def test_path_p_builds_id_context(self):
        # P realizes [ĉ4, ĉ1]: prefix c4, then prefix c1.
        word = [push("c4"), push("c1")]
        assert apply_word_to_context(word, ("entry",)) == ("c1", "c4", "entry")

    def test_path_p_prime_unwinds(self):
        # P′ realizes [č1, č4]: drop c1 then drop c4.
        word = [pop("c1"), pop("c4")]
        assert apply_word_to_context(word, ("c1", "c4", "entry")) == ("entry",)

    def test_p_then_p_prime_is_identity(self):
        word = [push("c4"), push("c1"), pop("c1"), pop("c4")]
        assert apply_word_to_context(word, ("entry",)) == ("entry",)

    def test_path_p_double_prime_is_infeasible(self):
        # P″ realizes [ĉ4, ĉ1, č1, č5]: the c5 exit cannot match the c4 entry.
        word = [push("c4"), push("c1"), pop("c1"), pop("c5")]
        assert apply_word_to_context(word, ("entry",)) is ERR


class TestContextSet:
    def test_of_and_contains(self):
        s = ContextSet.of(("a",), ("b", "c"))
        assert ("a",) in s
        assert ("b", "c") in s
        assert ("c",) not in s

    def test_everything_contains_all(self):
        s = ContextSet.everything()
        assert () in s
        assert ("zebra", "yak") in s

    def test_empty(self):
        assert ContextSet.empty().is_empty()
        assert not ContextSet.of(("a",)).is_empty()

    def test_cone_membership(self):
        s = ContextSet.cone(("a", "b"))
        assert ("a", "b") in s
        assert ("a", "b", "c") in s
        assert ("a",) not in s

    def test_push_on_concrete(self):
        s = ContextSet.of(("x",)).apply_push("a")
        assert ("a", "x") in s
        assert ("x",) not in s

    def test_push_on_cone(self):
        s = ContextSet.cone(("b",)).apply_push("a")
        assert ("a", "b") in s
        assert ("a", "b", "z") in s
        assert ("a",) not in s

    def test_pop_on_concrete(self):
        s = ContextSet.of(("a", "x"), ("b", "y")).apply_pop("a")
        assert ("x",) in s
        assert ("y",) not in s

    def test_pop_on_everything_is_everything(self):
        s = ContextSet.everything().apply_pop("a")
        assert s == ContextSet.everything()

    def test_pop_on_cone(self):
        s = ContextSet.cone(("a", "b")).apply_pop("a")
        assert s == ContextSet.cone(("b",))
        assert ContextSet.cone(("a",)).apply_pop("z").is_empty()

    def test_wildcard_of_nonempty(self):
        assert ContextSet.of(()).apply_wildcard() == ContextSet.everything()

    def test_wildcard_of_empty(self):
        assert ContextSet.empty().apply_wildcard().is_empty()

    def test_equality_normalizes_subsumed_members(self):
        a = ContextSet(concrete=[("a", "b")], prefixes=[("a",)])
        b = ContextSet(prefixes=[("a",)])
        assert a == b

    def test_equality_normalizes_subsumed_prefixes(self):
        a = ContextSet(prefixes=[("a",), ("a", "b")])
        b = ContextSet(prefixes=[("a",)])
        assert a == b

    def test_hash_consistent_with_eq(self):
        a = ContextSet(concrete=[("a", "b")], prefixes=[("a",)])
        b = ContextSet(prefixes=[("a",)])
        assert hash(a) == hash(b)


class TestApplyWord:
    def test_wildcard_rewrites_hold_semantically(self):
        # â·* ≡ * on any non-empty input.
        x = ContextSet.of(("q",))
        lhs = apply_word([push_letter("a"), WILDCARD], x)
        rhs = apply_word([WILDCARD], x)
        assert lhs == rhs

    def test_wildcard_pop_rewrite(self):
        # *·ǎ ≡ * over the infinite context domain.
        x = ContextSet.of(("q",))
        lhs = apply_word([WILDCARD, pop_letter("a")], x)
        rhs = apply_word([WILDCARD], x)
        assert lhs == rhs

    def test_push_pop_cancellation(self):
        x = ContextSet.of(("q",), ("r", "s"))
        lhs = apply_word([push_letter("a"), pop_letter("a")], x)
        assert lhs == x

    def test_push_pop_mismatch_empties(self):
        x = ContextSet.of(("q",))
        lhs = apply_word([push_letter("a"), pop_letter("b")], x)
        assert lhs.is_empty()

    def test_wildcard_on_empty_stays_empty(self):
        lhs = apply_word([push_letter("a"), WILDCARD], ContextSet.empty())
        assert lhs.is_empty()
