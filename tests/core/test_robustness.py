"""Robustness: the solver must tolerate partial or dangling fact sets.

Externally produced facts directories (the Doop route) may reference
entities that carry no other facts — formals of never-called methods,
invocations of absent callees, loads of never-stored fields.  The
solver's joins must simply not fire, never crash.
"""

import pytest

from repro import analyze, config_by_name
from repro.frontend.factgen import FactSet


def base_facts() -> FactSet:
    facts = FactSet()
    facts.main_method = "M.main"
    facts.assign_new.add(("h1", "M.main/x", "M.main"))
    facts.heap_type.add(("h1", "M"))
    facts.class_of["h1"] = "M"
    return facts


class TestDanglingReferences:
    def test_minimal_facts(self):
        r = analyze(base_facts(), config_by_name("1-call"))
        assert r.points_to("M.main/x") == {"h1"}

    def test_actual_for_unknown_invocation(self):
        facts = base_facts()
        facts.actual.add(("M.main/x", "ghost_site", 0))
        r = analyze(facts, config_by_name("1-call"))
        assert r.call_graph() == frozenset()

    def test_static_invoke_of_method_without_facts(self):
        facts = base_facts()
        facts.static_invoke.add(("c1", "Ghost.run", "M.main"))
        facts.invocation_parent["c1"] = "M.main"
        r = analyze(facts, config_by_name("1-call"))
        # The edge and reachability exist; nothing else derives.
        assert ("c1", "Ghost.run") in r.call_graph()
        assert "Ghost.run" in r.reachable_methods()

    def test_virtual_invoke_with_no_implements(self):
        facts = base_facts()
        facts.virtual_invoke.add(("c1", "M.main/x", "spin/0"))
        facts.invocation_parent["c1"] = "M.main"
        r = analyze(facts, config_by_name("2-object+H"))
        assert r.call_graph() == frozenset()

    def test_implements_without_this_var(self):
        facts = base_facts()
        facts.virtual_invoke.add(("c1", "M.main/x", "spin/0"))
        facts.invocation_parent["c1"] = "M.main"
        facts.implements.add(("M.spin", "M", "spin/0"))
        r = analyze(facts, config_by_name("1-object"))
        # Call edge derived even though the callee has no this_var fact.
        assert ("c1", "M.spin") in r.call_graph()

    def test_load_of_never_stored_field(self):
        facts = base_facts()
        facts.load.add(("M.main/x", "phantom", "M.main/y"))
        r = analyze(facts, config_by_name("1-call+H"))
        assert r.points_to("M.main/y") == set()

    def test_store_into_pointerless_base(self):
        facts = base_facts()
        facts.store.add(("M.main/x", "f", "M.main/nowhere"))
        r = analyze(facts, config_by_name("1-call+H"))
        assert r.hpts_ci() == frozenset()

    def test_return_without_call(self):
        facts = base_facts()
        facts.return_var.add(("M.main/x", "M.main"))
        r = analyze(facts, config_by_name("1-call"))
        assert r.points_to("M.main/x") == {"h1"}

    def test_catch_without_throw(self):
        facts = base_facts()
        facts.catch_var.add(("M.main/c", "M.main"))
        r = analyze(facts, config_by_name("1-call"))
        assert r.points_to("M.main/c") == set()

    def test_throw_in_unreachable_method(self):
        facts = base_facts()
        facts.throw_var.add(("Dead.m/e", "Dead.m"))
        r = analyze(facts, config_by_name("1-call"))
        assert r.texc == set()

    def test_static_load_without_store(self):
        facts = base_facts()
        facts.static_load.add(("G.slot", "M.main/y", "M.main"))
        r = analyze(facts, config_by_name("1-call"))
        assert r.points_to("M.main/y") == set()

    def test_heap_without_type(self):
        facts = base_facts()
        facts.assign_new.add(("h2", "M.main/z", "M.main"))
        # no heap_type for h2: allocation still tracked, dispatch skipped.
        facts.virtual_invoke.add(("c1", "M.main/z", "go/0"))
        facts.invocation_parent["c1"] = "M.main"
        r = analyze(facts, config_by_name("1-object"))
        assert r.points_to("M.main/z") == {"h2"}
        assert r.call_graph() == frozenset()


class TestDemandRobustness:
    def test_demand_on_dangling_facts(self):
        from repro.core.demand import DemandPointerAnalysis

        facts = base_facts()
        facts.actual.add(("M.main/x", "ghost", 0))
        demand = DemandPointerAnalysis(facts, config_by_name("1-call"))
        assert demand.points_to("M.main/x") == {"h1"}
        assert demand.points_to("never/seen") == frozenset()


class TestCompiledPathsRobustness:
    def test_specialized_program_on_dangling_facts(self):
        from repro.compile.emit import compile_transformer_analysis
        from repro.core.sensitivity import Flavour

        facts = base_facts()
        facts.actual.add(("M.main/x", "ghost", 0))
        facts.load.add(("M.main/x", "phantom", "M.main/y"))
        compiled = compile_transformer_analysis(facts, Flavour.CALL_SITE, 1, 0)
        result = compiled.run()
        assert ("M.main/x", "h1") in result.pts_ci()
        compiled_backend = compiled.run(backend="compiled")
        assert compiled_backend.pts == result.pts
