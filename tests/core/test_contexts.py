"""Unit tests for the context representation helpers."""

import pickle

from repro.core.contexts import (
    EMPTY_CONTEXT,
    ENTRY,
    ENTRY_CONTEXT,
    ERR,
    context_universe,
    drop,
    is_prefix,
    prefix,
)


class TestPrefixDrop:
    def test_prefix_shorter_than_string(self):
        assert prefix(("a", "b", "c"), 2) == ("a", "b")

    def test_prefix_longer_than_string(self):
        assert prefix(("a",), 5) == ("a",)

    def test_prefix_zero(self):
        assert prefix(("a", "b"), 0) == ()

    def test_prefix_negative_is_empty(self):
        assert prefix(("a", "b"), -1) == ()

    def test_prefix_of_empty(self):
        assert prefix((), 3) == ()

    def test_drop_shorter_than_string(self):
        assert drop(("a", "b", "c"), 1) == ("b", "c")

    def test_drop_everything(self):
        assert drop(("a", "b"), 5) == ()

    def test_drop_zero(self):
        assert drop(("a", "b"), 0) == ("a", "b")

    def test_drop_negative_is_identity(self):
        assert drop(("a", "b"), -2) == ("a", "b")

    def test_prefix_drop_partition(self):
        s = ("x", "y", "z", "w")
        for i in range(6):
            assert prefix(s, i) + drop(s, i) == s


class TestIsPrefix:
    def test_empty_is_prefix_of_everything(self):
        assert is_prefix((), ("a", "b"))
        assert is_prefix((), ())

    def test_proper_prefix(self):
        assert is_prefix(("a",), ("a", "b"))

    def test_equal_strings(self):
        assert is_prefix(("a", "b"), ("a", "b"))

    def test_not_a_prefix(self):
        assert not is_prefix(("b",), ("a", "b"))

    def test_longer_is_not_prefix(self):
        assert not is_prefix(("a", "b", "c"), ("a", "b"))


class TestErrContext:
    def test_singleton(self):
        from repro.core.contexts import _ErrContext

        assert _ErrContext() is ERR

    def test_repr(self):
        assert repr(ERR) == "err"

    def test_pickle_roundtrip_preserves_identity(self):
        assert pickle.loads(pickle.dumps(ERR)) is ERR


class TestEntry:
    def test_entry_context_is_singleton_string(self):
        assert ENTRY_CONTEXT == (ENTRY,)

    def test_empty_context(self):
        assert EMPTY_CONTEXT == ()


class TestContextUniverse:
    def test_sizes(self):
        # 1 + 2 + 4 + 8 contexts over a two-element alphabet up to length 3.
        universe = context_universe(["a", "b"], 3)
        assert len(universe) == 15

    def test_contains_empty(self):
        assert () in context_universe(["a"], 2)

    def test_max_length_respected(self):
        universe = context_universe(["a", "b"], 2)
        assert max(len(c) for c in universe) == 2

    def test_no_duplicates(self):
        universe = context_universe(["a", "b", "a"], 2)
        assert len(universe) == len(set(universe))

    def test_zero_length(self):
        assert context_universe(["a"], 0) == [()]
