"""Tests for demand-driven context-sensitive analysis (the paper's
future-work synergy, realized by query slicing)."""

import pytest

from repro import analyze, config_by_name
from repro.bench.fuzz import random_program
from repro.core.demand import DemandPointerAnalysis
from repro.frontend.factgen import facts_from_source, generate_facts
from repro.frontend.paper_programs import ALL_PROGRAMS, FIGURE_1

TWO_ISLANDS = """
class Left { Object hold; }
class Right { Object hold; }
class M {
    static Object idL(Object p) { return p; }
    static Object idR(Object q) { return q; }
    public static void main(String[] args) {
        Object a = new Left(); // ha
        Object la = M.idL(a); // c1
        Left box = new Left(); // hbox
        box.hold = la;
        Object b = new Right(); // hb
        Object rb = M.idR(b); // c2
        Right rbox = new Right(); // hrbox
        rbox.hold = rb;
    }
}
"""


class TestExactness:
    @pytest.mark.parametrize("program_name", sorted(ALL_PROGRAMS))
    @pytest.mark.parametrize("config_name", ["1-call", "1-call+H", "2-object+H"])
    def test_matches_exhaustive_everywhere(self, program_name, config_name):
        facts = facts_from_source(ALL_PROGRAMS[program_name])
        full = analyze(facts, config_by_name(config_name))
        demand = DemandPointerAnalysis(facts, config_by_name(config_name))
        for var in sorted({y for (y, _) in full.pts_ci()}):
            assert demand.points_to(var) == full.points_to(var), var
            assert demand.points_to_with_contexts(var) == (
                full.points_to_with_contexts(var)
            ), var

    def test_empty_answer_for_pointerless_var(self):
        facts = facts_from_source(FIGURE_1)
        demand = DemandPointerAnalysis(facts, config_by_name("1-call"))
        assert demand.points_to("T.main/nonexistent") == frozenset()

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("abstraction", ["context-string", "transformer-string"])
    def test_fuzz_corpus(self, seed, abstraction):
        facts = generate_facts(random_program(seed, size=3))
        config = config_by_name("1-call+H", abstraction)
        full = analyze(facts, config)
        demand = DemandPointerAnalysis(facts, config)
        variables = sorted({y for (y, _) in full.pts_ci()})[:10]
        for var in variables:
            assert demand.points_to(var) == full.points_to(var), (seed, var)

    def test_exceptions_query(self):
        source = """
        class Exc { }
        class M {
            static void boom() { Exc e = new Exc(); // he
                throw e; }
            public static void main(String[] args) {
                M.boom(); // c1
            }
        }
        """
        facts = facts_from_source(source)
        demand = DemandPointerAnalysis(facts, config_by_name("1-call"))
        assert demand.thrown_exceptions("M.main") == {"he"}
        assert demand.thrown_exceptions("M.boom") == {"he"}


class TestLocality:
    def test_query_slices_its_island(self):
        facts = facts_from_source(TWO_ISLANDS)
        demand = DemandPointerAnalysis(facts, config_by_name("1-call"))
        demand.points_to("M.main/la")
        sliced, total = demand.coverage()
        assert 0 < sliced < total
        # The Right island's identity chain is untouched.
        assert "M.idR/q" not in demand.vars

    def test_slice_grows_monotonically(self):
        facts = facts_from_source(TWO_ISLANDS)
        demand = DemandPointerAnalysis(facts, config_by_name("1-call"))
        demand.points_to("M.main/la")
        first, _ = demand.coverage()
        demand.points_to("M.main/rb")
        second, _ = demand.coverage()
        assert second > first

    def test_repeated_queries_reuse_slice(self):
        facts = facts_from_source(TWO_ISLANDS)
        demand = DemandPointerAnalysis(facts, config_by_name("1-call"))
        assert demand.points_to("M.main/la") == demand.points_to("M.main/la")
        first, _ = demand.coverage()
        demand.points_to("M.main/la")
        assert demand.coverage()[0] == first

    def test_transformer_strings_keep_demand_results_compact(self):
        """The paper's synergy: a demanded method's local facts stay
        single-ε even though the slice pulled in many callers."""
        from repro.core.transformer_strings import EPSILON

        facts = facts_from_source(ALL_PROGRAMS["figure5"])
        demand = DemandPointerAnalysis(
            facts, config_by_name("1-call+H", "transformer-string")
        )
        contexts = demand.points_to_with_contexts("T.m/h")
        assert contexts == frozenset({("h1", EPSILON)})
