"""Tests for the context-string abstraction and its correspondence with
wildcard transformer strings (paper Section 4.1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import context_strings as cs
from repro.core.transformations import ContextSet
from repro.core.transformer_strings import TransformerString

ALPHABET = ("a", "b", "c")

strings = st.lists(st.sampled_from(ALPHABET), max_size=3).map(tuple)
pairs = st.tuples(strings, strings)

SAMPLE_INPUTS = [
    ContextSet.empty(),
    ContextSet.of(()),
    ContextSet.of(("a",)),
    ContextSet.of(("a", "b", "c")),
    ContextSet.of(("c", "b"), ("a", "c")),
    ContextSet.everything(),
    ContextSet.cone(("a",)),
]


class TestPairOperations:
    def test_compose_matching_middle(self):
        assert cs.compose((("u",), ("v",)), (("v",), ("w",))) == (("u",), ("w",))

    def test_compose_mismatch_is_none(self):
        assert cs.compose((("u",), ("v",)), (("x",), ("w",))) is None

    def test_compose_requires_exact_middle_not_prefix(self):
        assert cs.compose((("u",), ("v", "z")), (("v",), ("w",))) is None

    def test_inverse(self):
        assert cs.inverse((("u",), ("v", "w"))) == (("v", "w"), ("u",))

    def test_target(self):
        assert cs.target((("u",), ("v",))) == ("v",)

    def test_in_domain(self):
        assert cs.in_domain((("a",), ("b", "c")), 1, 2)
        assert not cs.in_domain((("a", "b"), ()), 1, 0)

    def test_truncate(self):
        assert cs.truncate((("a", "b"), ("c", "d", "e")), 1, 2) == (
            ("a",),
            ("c", "d"),
        )

    def test_make_pair_normalizes(self):
        assert cs.make_pair(["a"], ("b",)) == (("a",), ("b",))


class TestSemantics:
    def test_maps_cone_to_cone(self):
        out = cs.semantics((("a",), ("b",)), ContextSet.of(("a", "x")))
        assert out == ContextSet.cone(("b",))

    def test_empty_when_no_intersection(self):
        out = cs.semantics((("a",), ("b",)), ContextSet.of(("c",)))
        assert out.is_empty()

    def test_empty_input(self):
        assert cs.semantics((("a",), ("b",)), ContextSet.empty()).is_empty()

    def test_empty_source_matches_everything(self):
        out = cs.semantics(((), ("b",)), ContextSet.of(("q", "r")))
        assert out == ContextSet.cone(("b",))


class TestCorrespondenceWithTransformerStrings:
    """(A, B) denotes the same transformation as Ǎ·*·B̂."""

    def test_example(self):
        pair = (("h4",), ("c4", "e"))
        t = cs.to_transformer_string(pair)
        assert t == TransformerString(("h4",), True, ("c4", "e"))

    @given(pairs)
    @settings(max_examples=200, deadline=None)
    def test_semantics_agree(self, pair):
        t = cs.to_transformer_string(pair)
        for s in SAMPLE_INPUTS:
            assert cs.semantics(pair, s) == t.semantics(s)

    @given(pairs, pairs)
    @settings(max_examples=200, deadline=None)
    def test_pair_composition_is_sound_wrt_transformers(self, x, y):
        """Pair composition under-approximates wildcard-string composition
        only by refusing non-exact middles; when it fires, results agree."""
        from repro.core.transformer_strings import compose as t_compose

        composed = cs.compose(x, y)
        if composed is not None:
            tx, ty = cs.to_transformer_string(x), cs.to_transformer_string(y)
            tc = t_compose(tx, ty)
            assert tc == cs.to_transformer_string(composed)
