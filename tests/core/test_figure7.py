"""Gold test: paper Figure 7 — subsuming facts from multiple data-flow
paths under a 1-call+H transformer-string analysis (Section 8)."""

from repro import analyze, config_by_name
from repro.core.transformer_strings import TransformerString
from repro.frontend.paper_programs import FIGURE_7

EPS = TransformerString.identity()
C1_GUARD = TransformerString.guard(("c1",))


def run(**kwargs):
    return analyze(
        FIGURE_7, config_by_name("1-call+H", "transformer-string", **kwargs)
    )


class TestDerivedFactsMatchPaper:
    """The derivation table in Figure 7, fact for fact."""

    def test_pts_facts(self):
        assert run().pts == {
            ("T.main/t", "h2", EPS),
            ("T.m/this", "h2", TransformerString.entry(("c1",))),
            ("T.m/v", "h1", EPS),
            ("T.m/v", "h1", C1_GUARD),  # via the store/load round trip
        }

    def test_hpts_fact(self):
        assert run().hpts == {
            ("h2", "f", "h1", TransformerString.exit(("c1",))),
        }

    def test_call_fact(self):
        assert run().call == {
            ("c1", "T.m", TransformerString.entry(("c1",))),
        }

    def test_v_reached_through_two_paths(self):
        """v points to h1 both directly (ε) and through the heap
        (č1·ĉ1) — the two data-flow paths of the paper's discussion."""
        facts = {a for (y, h, a) in run().pts if y == "T.m/v"}
        assert facts == {EPS, C1_GUARD}


class TestSubsumption:
    def test_subsumed_fact_detected(self):
        found = run().subsumed_pts_facts()
        assert found == [("T.m/v", "h1", EPS, C1_GUARD)]

    def test_subsumption_ratio(self):
        assert run().subsumption_ratio() == 0.25

    def test_elimination_drops_the_guarded_fact(self):
        r = run(eliminate_subsumed=True)
        facts = {a for (y, h, a) in r.pts if y == "T.m/v"}
        assert facts == {EPS}

    def test_elimination_preserves_ci_projection(self):
        plain, eliminated = run(), run(eliminate_subsumed=True)
        assert plain.pts_ci() == eliminated.pts_ci()
        assert plain.hpts_ci() == eliminated.hpts_ci()
        assert plain.call_graph() == eliminated.call_graph()
        assert eliminated.stats.facts_subsumed >= 1

    def test_context_string_analysis_has_no_subsumption(self):
        r = analyze(FIGURE_7, config_by_name("1-call+H", "context-string"))
        assert r.subsumed_pts_facts() == []

    def test_elimination_flag_ignored_for_context_strings(self):
        r = analyze(
            FIGURE_7,
            config_by_name(
                "1-call+H", "context-string", eliminate_subsumed=True
            ),
        )
        assert r.stats.facts_subsumed == 0


class TestEnumerationParity:
    """Since every invocation of m has a receiver, pts(v, h1, Č·Ĉ) is
    derived for every reachable context C of m — here just c1 — giving
    the same enumeration as context strings for that entity."""

    def test_context_string_column(self):
        r = analyze(FIGURE_7, config_by_name("1-call+H", "context-string"))
        v_facts = {(h, a) for (y, h, a) in r.pts if y == "T.m/v"}
        assert v_facts == {("h1", (("c1",), ("c1",)))}

    def test_ci_projections_agree(self):
        r_cs = analyze(FIGURE_7, config_by_name("1-call+H", "context-string"))
        r_ts = run()
        assert r_cs.pts_ci() == r_ts.pts_ci()
        assert r_cs.hpts_ci() == r_ts.hpts_ci()
