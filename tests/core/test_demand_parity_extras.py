"""Demand-vs-exhaustive parity for the newer query kinds.

`points_to` parity is pinned in ``test_demand_analysis``; these tests
extend the contract to ``thrown_exceptions`` and ``field_may_alias``
across both abstractions and all three context flavours — the demand
slice must reproduce the exhaustive answer exactly, for every method
(resp. every heap-pair × field) of the program.
"""

import pytest

from repro import analyze, config_by_name
from repro.core.demand import DemandPointerAnalysis
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_1

ABSTRACTIONS = ("context-string", "transformer-string")

#: One configuration per flavour (call-site, object, type), each with
#: heap context so the flavours actually diverge.
FLAVOURS = ("2-call+H", "2-object+H", "2-type+H")

#: Exceptions crossing two call frames, a caught re-throw, and one
#: exception object that never escapes — the shapes `texc` must get
#: right per calling context.
EXCEPTIONS_PROGRAM = """
class ExcA { }
class ExcB { }
class Deep {
    static void boom() {
        ExcA e = new ExcA(); // ea
        throw e;
    }
    static void defuse() {
        try {
            Deep.boom(); // cDefuse
        } catch (ExcA swallowed) {
            Object seen = swallowed;
        }
    }
}
class Mid {
    static void relay() {
        Deep.boom(); // cRelay
    }
    static void quiet() {
        ExcB unused = new ExcB(); // eb
    }
}
class M {
    public static void main(String[] args) {
        try {
            Mid.relay(); // c1
        } catch (ExcA caught) {
            Object seen = caught;
        }
        Deep.defuse(); // c2
        Mid.quiet(); // c3
    }
}
"""


def _methods(facts):
    methods = set(facts.invocation_parent.values())
    methods.update(p for (_x, p) in facts.throw_var)
    if facts.main_method:
        methods.add(facts.main_method)
    return sorted(methods)


@pytest.mark.parametrize("abstraction", ABSTRACTIONS)
@pytest.mark.parametrize("flavour", FLAVOURS)
class TestThrownExceptionsParity:
    def test_every_method_matches_exhaustive(self, abstraction, flavour):
        facts = facts_from_source(EXCEPTIONS_PROGRAM)
        config = config_by_name(flavour, abstraction)
        full = analyze(facts, config)
        demand = DemandPointerAnalysis(facts, config)
        for method in _methods(facts):
            assert demand.thrown_exceptions(method) == (
                full.thrown_exceptions(method)
            ), (flavour, abstraction, method)

    def test_expected_escapes(self, abstraction, flavour):
        # Anchor the parity against known ground truth: `boom` throws,
        # `relay` (and the catching callers — `texc` tracks exceptions
        # flowing through a method, catches bind but do not subtract)
        # propagates, `quiet` never throws.
        facts = facts_from_source(EXCEPTIONS_PROGRAM)
        demand = DemandPointerAnalysis(
            facts, config_by_name(flavour, abstraction)
        )
        assert demand.thrown_exceptions("Deep.boom") == {"ea"}
        assert demand.thrown_exceptions("Mid.relay") == {"ea"}
        assert demand.thrown_exceptions("Deep.defuse") == {"ea"}
        assert demand.thrown_exceptions("Mid.quiet") == frozenset()


@pytest.mark.parametrize("abstraction", ABSTRACTIONS)
@pytest.mark.parametrize("flavour", FLAVOURS)
class TestFieldMayAliasParity:
    def test_every_heap_pair_matches_exhaustive(self, abstraction, flavour):
        facts = facts_from_source(FIGURE_1)
        config = config_by_name(flavour, abstraction)
        full = analyze(facts, config)
        heaps = sorted(facts.class_of)
        fields = sorted({f for (_x, f, _z) in facts.store})
        assert fields  # FIGURE_1 stores through `f`
        demand = DemandPointerAnalysis(facts, config)
        for field in fields:
            for heap_a in heaps:
                for heap_b in heaps:
                    assert demand.field_may_alias(
                        heap_a, heap_b, field
                    ) == full.field_may_alias(heap_a, heap_b, field), (
                        flavour, abstraction, heap_a, heap_b, field
                    )

    def test_heap_context_separates_figure1_m_objects(
        self, abstraction, flavour
    ):
        # Figure 1's point: with heap context the objects returned by
        # `m` for receivers s (c6) and t (c7) get distinct contents, so
        # a.f and b.f must not alias — under every flavour.
        facts = facts_from_source(FIGURE_1)
        demand = DemandPointerAnalysis(
            facts, config_by_name(flavour, abstraction)
        )
        assert demand.field_may_alias("m1", "m1", "f")
        assert not demand.field_may_alias("m1", "h3", "f")

    def test_insensitive_conflates_them(self, abstraction, flavour):
        del flavour  # the insensitive baseline has no flavour
        facts = facts_from_source(FIGURE_1)
        config = config_by_name("insensitive", abstraction)
        full = analyze(facts, config)
        demand = DemandPointerAnalysis(facts, config)
        assert demand.field_may_alias("m1", "m1", "f") == (
            full.field_may_alias("m1", "m1", "f")
        )
