"""Tests for ResultComparison and the CSV report export."""

import pytest

from repro import analyze, config_by_name
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5, TYPE_PRECISION_LOSS


class TestResultComparison:
    def test_equal_abstractions(self):
        cs = analyze(FIGURE_5, config_by_name("1-call+H", "context-string"))
        ts = analyze(FIGURE_5, config_by_name("1-call+H", "transformer-string"))
        comparison = cs.compare_to(ts)
        assert comparison.equally_precise()
        assert comparison.precision_relation() == "equal"
        assert comparison.fact_reduction() > 0.4  # 17 -> 9 facts

    def test_more_context_is_more_precise(self):
        one = analyze(FIGURE_1, config_by_name("1-call"))
        two = analyze(FIGURE_1, config_by_name("2-call"))
        comparison = one.compare_to(two)
        assert comparison.precision_relation() == "right-more-precise"
        assert ("T.main/x2", "h2") in comparison.left_only_pts()
        assert comparison.right_only_pts() == frozenset()

    def test_reversed_comparison(self):
        one = analyze(FIGURE_1, config_by_name("1-call"))
        two = analyze(FIGURE_1, config_by_name("2-call"))
        assert two.compare_to(one).precision_relation() == "left-more-precise"

    def test_type_loss_witness(self):
        cs = analyze(
            TYPE_PRECISION_LOSS, config_by_name("2-type+H", "context-string")
        )
        ts = analyze(
            TYPE_PRECISION_LOSS,
            config_by_name("2-type+H", "transformer-string"),
        )
        comparison = cs.compare_to(ts)
        assert comparison.precision_relation() == "left-more-precise"
        assert ("M.main/u", "s2") in comparison.right_only_pts()

    def test_incomparable(self):
        call = analyze(FIGURE_1, config_by_name("1-call"))
        obj = analyze(FIGURE_1, config_by_name("1-object"))
        comparison = call.compare_to(obj)
        # 1-call is precise on x1/y1 and imprecise on x2/y2; 1-object the
        # reverse — neither dominates.
        assert comparison.precision_relation() == "incomparable"

    def test_summary_text(self):
        cs = analyze(FIGURE_5, config_by_name("1-call+H", "context-string"))
        ts = analyze(FIGURE_5, config_by_name("1-call+H", "transformer-string"))
        summary = cs.compare_to(ts).summary()
        assert "precision: equal" in summary
        assert "reduction" in summary


class TestCsvExport:
    def test_csv_shape(self):
        from repro.bench.harness import run_figure6
        from repro.bench.report import format_csv

        table = run_figure6(
            benchmarks=("luindex",), configurations=("1-call", "2-object+H"),
            scale=1,
        )
        csv = format_csv(table)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("benchmark,configuration,abstraction")
        # one header + 2 configurations × 2 abstractions.
        assert len(lines) == 1 + 4
        assert any("transformer-string" in line for line in lines[1:])
        first = lines[1].split(",")
        assert first[0] == "luindex"
        assert int(first[6]) == sum(int(x) for x in first[3:6])

    def test_cli_figure6_csv(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fig6.csv"
        assert main(["figure6", "--scale", "1", "--csv", str(out)]) == 0
        assert out.exists()
        assert "wrote CSV" in capsys.readouterr().out
