"""Tests for the Figure 4 flavour functions and the abstraction domains.

The key cross-abstraction property: under every flavour, the call-edge
transformation computed for transformer strings must denote (at least)
the same context mapping as the context-string pair, when the receiver's
points-to transformation corresponds.
"""

import pytest

from repro.core import sensitivity as sens
from repro.core.context_strings import to_transformer_string
from repro.core.domains import (
    ContextStringDomain,
    TransformerStringDomain,
    make_domain,
)
from repro.core.sensitivity import Flavour
from repro.core.transformations import ContextSet
from repro.core.transformer_strings import EPSILON, STAR, TransformerString


class TestValidateLevels:
    def test_call_site_accepts_h_le_m(self):
        sens.validate_levels(Flavour.CALL_SITE, 2, 0)
        sens.validate_levels(Flavour.CALL_SITE, 2, 2)

    def test_call_site_rejects_h_gt_m(self):
        with pytest.raises(ValueError):
            sens.validate_levels(Flavour.CALL_SITE, 1, 2)

    def test_object_requires_h_eq_m_minus_1(self):
        sens.validate_levels(Flavour.OBJECT, 2, 1)
        with pytest.raises(ValueError):
            sens.validate_levels(Flavour.OBJECT, 2, 0)

    def test_type_requires_h_eq_m_minus_1(self):
        sens.validate_levels(Flavour.TYPE, 1, 0)
        with pytest.raises(ValueError):
            sens.validate_levels(Flavour.TYPE, 1, 1)

    def test_negative_levels_rejected(self):
        with pytest.raises(ValueError):
            sens.validate_levels(Flavour.CALL_SITE, -1, 0)


class TestContextStringFlavours:
    def test_record_truncates_heap_side(self):
        assert sens.record_cs(("c1", "c4"), 1) == (("c1",), ("c1", "c4"))

    def test_record_zero_heap(self):
        assert sens.record_cs(("c1",), 0) == ((), ("c1",))

    def test_merge_call_site(self):
        pair = sens.merge_cs(
            Flavour.CALL_SITE, "h9", "i1", (("x",), ("c1", "c2")), m=2
        )
        assert pair == (("c1", "c2"), ("i1", "c1"))

    def test_merge_object(self):
        pair = sens.merge_cs(
            Flavour.OBJECT, "h9", "i1", (("h3",), ("h3", "e")), m=2
        )
        assert pair == (("h3", "e"), ("h9", "h3"))

    def test_merge_type(self):
        pair = sens.merge_cs(
            Flavour.TYPE, "h9", "i1", (("T0",), ("T0", "e")), m=2,
            class_of=lambda h: "T" + h[1:],
        )
        assert pair == (("T0", "e"), ("T9", "T0"))

    def test_merge_type_requires_class_of(self):
        with pytest.raises(ValueError):
            sens.merge_cs(Flavour.TYPE, "h9", "i1", ((), ("e",)), m=1)

    def test_merge_s_call_site(self):
        assert sens.merge_s_cs(Flavour.CALL_SITE, "i2", ("c9",), m=1) == (
            ("c9",),
            ("i2",),
        )

    def test_merge_s_object_keeps_context(self):
        assert sens.merge_s_cs(Flavour.OBJECT, "i2", ("h1", "e"), m=2) == (
            ("h1", "e"),
            ("h1", "e"),
        )

    def test_merge_call_site_m0_degrades(self):
        pair = sens.merge_cs(Flavour.CALL_SITE, "h", "i", ((), ()), m=0)
        assert pair == ((), ())


class TestTransformerFlavours:
    def test_record_is_identity(self):
        assert sens.record_ts(("c1", "c4"), 1) == EPSILON

    def test_merge_s_call_site_is_entry(self):
        t = sens.merge_s_ts(Flavour.CALL_SITE, "i1", ("c9",), m=2)
        assert t == TransformerString(pushes=("i1",))

    def test_merge_s_object_is_guard(self):
        t = sens.merge_s_ts(Flavour.OBJECT, "i1", ("h1", "e"), m=2)
        assert t == TransformerString(("h1", "e"), False, ("h1", "e"))

    def test_merge_call_site_restricts_then_pushes(self):
        # Receiver pts transformer ε: call edge is just Î (truncated).
        t = sens.merge_ts(Flavour.CALL_SITE, "h9", "i1", EPSILON, m=2)
        assert t == TransformerString(pushes=("i1",))

    def test_merge_call_site_truncation(self):
        # Receiver with a 2-push transformer at m=2: pushing I overflows.
        receiver = TransformerString(pushes=("c1", "c2"))
        t = sens.merge_ts(Flavour.CALL_SITE, "h9", "i1", receiver, m=2)
        assert t == TransformerString(("c1", "c2"), True, ("i1", "c1"))

    def test_merge_object(self):
        # Section 3: merge = B⁻¹ ; Ĥ.
        receiver = TransformerString(("h3",), False, ("c4",))
        t = sens.merge_ts(Flavour.OBJECT, "h9", "i1", receiver, m=2)
        assert t == TransformerString(("c4",), False, ("h9", "h3"))

    def test_merge_type_uses_class_of(self):
        receiver = EPSILON
        t = sens.merge_ts(
            Flavour.TYPE, "h9", "i1", receiver, m=1, class_of=lambda h: "Tk"
        )
        assert t == TransformerString((), False, ("Tk",))

    def test_merge_type_requires_class_of(self):
        with pytest.raises(ValueError):
            sens.merge_ts(Flavour.TYPE, "h9", "i1", EPSILON, m=1)


class TestCrossAbstractionAgreement:
    """When the receiver facts correspond ((A,B) pair vs Ǎ·*·B̂ string),
    merge must produce corresponding call edges (up to subsumption)."""

    SAMPLES = [
        ContextSet.of(("c1", "c2")),
        ContextSet.of(("c2", "c1")),
        ContextSet.of(("h3", "e")),
        ContextSet.everything(),
        ContextSet.empty(),
    ]

    def _assert_covers(self, t_general, t_specific):
        for s in self.SAMPLES:
            out_g = t_general.semantics(s)
            out_s = t_specific.semantics(s)
            for ctx in out_s.concrete:
                assert ctx in out_g
            for p in out_s.prefixes:
                assert any(p[: len(q)] == q for q in out_g.prefixes) or p in out_g.prefixes

    def test_merge_object_agrees(self):
        pair = (("h3",), ("h3", "e"))
        edge_cs = sens.merge_cs(Flavour.OBJECT, "h9", "i1", pair, m=2)
        edge_ts = sens.merge_ts(
            Flavour.OBJECT, "h9", "i1", to_transformer_string(pair), m=2
        )
        # The pair edge denotes Ǎ·*·B̂ built from edge_cs; the transformer
        # edge applied after the pair's concretization must cover it.
        self._assert_covers(to_transformer_string(edge_cs), edge_ts)

    def test_merge_call_site_agrees(self):
        pair = (("x",), ("c1", "c2"))
        edge_cs = sens.merge_cs(Flavour.CALL_SITE, "h9", "i1", pair, m=2)
        edge_ts = sens.merge_ts(
            Flavour.CALL_SITE, "h9", "i1", to_transformer_string(pair), m=2
        )
        self._assert_covers(to_transformer_string(edge_cs), edge_ts)


class TestDomains:
    def test_make_domain_shorthands(self):
        assert isinstance(
            make_domain("cs", Flavour.CALL_SITE, 1, 0), ContextStringDomain
        )
        assert isinstance(
            make_domain("ts", Flavour.CALL_SITE, 1, 0), TransformerStringDomain
        )

    def test_make_domain_unknown(self):
        with pytest.raises(ValueError):
            make_domain("bdd", Flavour.CALL_SITE, 1, 0)

    def test_type_domain_requires_class_of(self):
        with pytest.raises(ValueError):
            make_domain("ts", Flavour.TYPE, 2, 1)

    def test_entry_context_truncation(self):
        d = make_domain("cs", Flavour.CALL_SITE, 2, 1)
        assert d.entry_context() == ("<entry>",)
        d0 = make_domain("cs", Flavour.CALL_SITE, 0, 0)
        assert d0.entry_context() == ()

    def test_describe(self):
        d = make_domain("ts", Flavour.OBJECT, 2, 1)
        assert d.describe() == "2-object+1H/transformer-string"
        d2 = make_domain("cs", Flavour.CALL_SITE, 1, 0)
        assert d2.describe() == "1-call-site/context-string"

    def test_join_keys_context_strings(self):
        d = make_domain("cs", Flavour.CALL_SITE, 1, 1)
        pair = (("u",), ("v",))
        assert d.key_out(pair) == ("v",)
        assert d.key_in(pair) == ("u",)
        assert d.insert_keys(("v",)) == (("v",),)
        assert d.probe_keys(("v",)) == (("v",),)

    def test_join_keys_transformer_strings(self):
        d = make_domain("ts", Flavour.CALL_SITE, 2, 1)
        t = TransformerString(("a",), True, ("b", "c"))
        assert d.key_out(t) == ("b", "c")
        assert d.key_in(t) == ("a",)
        assert set(d.insert_keys(("b", "c"))) == {
            ("ge", 0, ()), ("ge", 1, ("b",)), ("ge", 2, ("b", "c")),
            ("eq", 2, ("b", "c")),
        }
        assert set(d.probe_keys(("b", "c"))) == {
            ("ge", 2, ("b", "c")), ("eq", 0, ()), ("eq", 1, ("b",)),
        }

    def test_insert_and_probe_keys_meet_iff_prefix_compatible(self):
        """The bucket scheme is exact: a stored segment is found by a
        probe iff the two segments are prefix-compatible, exactly once."""
        import itertools

        d = make_domain("ts", Flavour.CALL_SITE, 2, 2)
        alphabet = ("a", "b")
        segments = [
            tuple(s)
            for n in range(3)
            for s in itertools.product(alphabet, repeat=n)
        ]
        for stored in segments:
            for probed in segments:
                overlap = min(len(stored), len(probed))
                compatible = stored[:overlap] == probed[:overlap]
                hits = len(
                    set(d.insert_keys(stored)) & set(d.probe_keys(probed))
                )
                assert hits == (1 if compatible else 0), (stored, probed)

    def test_domain_comp_truncates_transformers(self):
        d = make_domain("ts", Flavour.CALL_SITE, 1, 1)
        x = TransformerString(pushes=("a", "b"))
        out = d.comp(x, EPSILON, 1, 1)
        assert out == TransformerString((), True, ("a",))

    def test_domain_comp_context_strings_exact(self):
        d = make_domain("cs", Flavour.CALL_SITE, 1, 1)
        assert d.comp((("u",), ("v",)), (("v",), ("w",)), 1, 1) == (("u",), ("w",))
        assert d.comp((("u",), ("v",)), (("z",), ("w",)), 1, 1) is None

    def test_domain_target(self):
        dts = make_domain("ts", Flavour.CALL_SITE, 2, 1)
        assert dts.target(TransformerString(("a",), True, ("i1", "c"))) == ("i1", "c")
        dcs = make_domain("cs", Flavour.CALL_SITE, 2, 1)
        assert dcs.target((("a",), ("i1", "c"))) == ("i1", "c")
