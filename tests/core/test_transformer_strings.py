"""Unit and property tests for transformer strings (paper Section 4.2).

The hypothesis properties validate the symbolic operations against the
ground-truth :mod:`repro.core.transformations` oracle: canonical
composition must coincide with letter-by-letter semantic application,
`trunc` must only add behaviours (Lemma 4.2), and the algebra must be an
inverse semigroup (Section 3).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transformations import ContextSet
from repro.core.transformer_strings import (
    EPSILON,
    STAR,
    TransformerString,
    compose,
    compose_trunc,
    concretize,
    in_domain,
    inverse,
    match_word,
    subsumes,
    trunc,
)

ALPHABET = ("a", "b", "c")

context_strings = st.tuples(
    *[st.sampled_from(ALPHABET)] * 0
) | st.lists(st.sampled_from(ALPHABET), max_size=3).map(tuple)

transformer_strings = st.builds(
    TransformerString,
    pops=st.lists(st.sampled_from(ALPHABET), max_size=3).map(tuple),
    wildcard=st.booleans(),
    pushes=st.lists(st.sampled_from(ALPHABET), max_size=3).map(tuple),
)

#: Input collections that distinguish transformations: singletons up to
#: length 4 would be huge, so use a curated spread plus the full cone.
SAMPLE_INPUTS = [
    ContextSet.empty(),
    ContextSet.of(()),
    ContextSet.of(("a",)),
    ContextSet.of(("b", "a")),
    ContextSet.of(("a", "b", "c")),
    ContextSet.of(("a", "a", "a", "b")),
    ContextSet.of(("c", "b", "a"), ("a", "c")),
    ContextSet.everything(),
    ContextSet.cone(("a", "b")),
]


def semantically_equal(x: TransformerString, y: TransformerString) -> bool:
    return all(x.semantics(s) == y.semantics(s) for s in SAMPLE_INPUTS)


class TestConstructionAndRepr:
    def test_identity(self):
        t = TransformerString.identity()
        assert t.is_identity()
        assert t.configuration == ""

    def test_entry_pushes_whole_string(self):
        t = TransformerString.entry(("c1", "c4"))
        assert t.pushes == ("c1", "c4")
        assert t.semantics(ContextSet.of(("e",))) == ContextSet.of(("c1", "c4", "e"))

    def test_exit_pops_whole_string(self):
        t = TransformerString.exit(("c1", "c4"))
        assert t.semantics(ContextSet.of(("c1", "c4", "e"))) == ContextSet.of(("e",))
        assert t.semantics(ContextSet.of(("c4", "c1", "e"))).is_empty()

    def test_guard_passes_matching_contexts(self):
        t = TransformerString.guard(("n",))
        assert t.semantics(ContextSet.of(("n", "x"))) == ContextSet.of(("n", "x"))
        assert t.semantics(ContextSet.of(("m", "x"))).is_empty()

    def test_top_maps_to_everything(self):
        assert STAR.semantics(ContextSet.of(("q",))) == ContextSet.everything()

    def test_configuration_tags(self):
        t = TransformerString(("a", "b"), True, ("c",))
        assert t.configuration == "xxwe"
        assert STAR.configuration == "w"
        assert EPSILON.configuration == ""

    def test_repr_of_identity(self):
        assert repr(EPSILON) == "⟨ε⟩"

    def test_hash_and_eq(self):
        x = TransformerString(("a",), False, ("b",))
        y = TransformerString(("a",), False, ("b",))
        assert x == y
        assert hash(x) == hash(y)
        assert x != STAR


class TestCompose:
    def test_identity_left_and_right(self):
        t = TransformerString(("a",), True, ("b", "c"))
        assert compose(EPSILON, t) == t
        assert compose(t, EPSILON) == t

    def test_full_cancellation(self):
        # M̂ ; M̌ = ε.
        m = ("c1", "c4")
        assert compose(
            TransformerString.entry(m), TransformerString.exit(m)
        ) == EPSILON

    def test_mismatch_is_bottom(self):
        assert compose(
            TransformerString.entry(("a",)), TransformerString.exit(("b",))
        ) is None

    def test_partial_cancellation_leftover_pops(self):
        # pushes (a) then pops (a, b): net pop b.
        x = TransformerString(pushes=("a",))
        y = TransformerString(pops=("a", "b"))
        assert compose(x, y) == TransformerString(pops=("b",))

    def test_partial_cancellation_leftover_pushes(self):
        # pushes (a, b) then pops (a): net: context becomes b·ξ.
        x = TransformerString(pushes=("a", "b"))
        y = TransformerString(pops=("a",))
        assert compose(x, y) == TransformerString(pushes=("b",))

    def test_wildcard_absorbs_excess_pops(self):
        # (*, push a) ; pops (a, z) — the z pop dies in the wildcard.
        x = TransformerString((), True, ("a",))
        y = TransformerString(pops=("a", "z"))
        assert compose(x, y) == TransformerString((), True, ())

    def test_wildcard_absorbs_leftover_pushes(self):
        # push (a, b) ; (pop a then *): surviving push b absorbed by *.
        x = TransformerString(pushes=("a", "b"))
        y = TransformerString(("a",), True, ())
        assert compose(x, y) == STAR

    def test_pushes_stack_beneath(self):
        x = TransformerString(pushes=("b",))
        y = TransformerString(pushes=("a",))
        # First prefix b, then prefix a: result prefix is a·b.
        assert compose(x, y) == TransformerString(pushes=("a", "b"))

    def test_mismatch_through_wildcard_is_still_bottom(self):
        x = TransformerString((), True, ("a",))
        y = TransformerString(pops=("b",))
        assert compose(x, y) is None

    def test_figure5_composition_chain(self):
        # ε ; id1̂ ; id1̌ = ε — the chain that keeps r's points-to compact.
        step1 = compose(EPSILON, TransformerString.entry(("id1",)))
        step2 = compose(step1, TransformerString.exit(("id1",)))
        assert step2 == EPSILON


class TestInverse:
    def test_swaps_sides(self):
        t = TransformerString(("a", "b"), True, ("c",))
        assert inverse(t) == TransformerString(("c",), True, ("a", "b"))

    def test_involution(self):
        t = TransformerString(("a",), False, ("b", "c"))
        assert inverse(inverse(t)) == t

    def test_inverse_of_identity(self):
        assert inverse(EPSILON) == EPSILON


class TestTrunc:
    def test_noop_when_in_domain(self):
        t = TransformerString(("a",), False, ("b",))
        # == rather than `is`: trunc is memoized, so an equal string from
        # an earlier call may be returned.
        assert trunc(t, 1, 1) == t

    def test_cuts_and_adds_wildcard(self):
        t = TransformerString(("a", "b"), False, ("c", "d", "e"))
        out = trunc(t, 1, 2)
        assert out == TransformerString(("a",), True, ("c", "d"))

    def test_zero_levels_yield_star(self):
        t = TransformerString(("a",), False, ("b",))
        assert trunc(t, 0, 0) == STAR

    def test_in_domain(self):
        assert in_domain(TransformerString(("a",), True, ()), 1, 0)
        assert not in_domain(TransformerString(("a", "b"), False, ()), 1, 2)

    def test_compose_trunc_bottom_propagates(self):
        x = TransformerString.entry(("a",))
        y = TransformerString.exit(("b",))
        assert compose_trunc(x, y, 2, 2) is None


class TestMatchWord:
    def test_empty_word(self):
        assert match_word([]) == EPSILON

    def test_matches_letters_of_canonical_strings(self):
        t = TransformerString(("a", "b"), True, ("c",))
        assert match_word(t.letters()) == t

    def test_detects_bottom(self):
        from repro.core.transformations import pop_letter, push_letter

        assert match_word([push_letter("a"), pop_letter("b")]) is None


class TestSubsumes:
    def test_reflexive(self):
        t = TransformerString(("a",), False, ("b",))
        assert subsumes(t, t)

    def test_star_subsumes_everything(self):
        assert subsumes(STAR, TransformerString(("a", "b"), False, ("c",)))
        assert subsumes(STAR, EPSILON)

    def test_wildcard_prefix_subsumption(self):
        general = TransformerString(("m1",), True, ())
        specific = TransformerString(("m1", "m2"), True, ("x",))
        assert subsumes(general, specific)

    def test_wildcard_free_subsumes_only_itself(self):
        general = TransformerString(("a",), False, ("b",))
        specific = TransformerString(("a", "c"), False, ("b",))
        assert not subsumes(general, specific)

    def test_longer_general_does_not_subsume(self):
        general = TransformerString(("a", "b"), True, ())
        specific = TransformerString(("a",), True, ())
        assert not subsumes(general, specific)

    def test_subsumption_is_semantic(self):
        # If general subsumes specific, every output of specific is
        # contained in general's output, on every sample input.
        general = TransformerString(("a",), True, ("b",))
        specific = TransformerString(("a", "c"), True, ("b", "d"))
        assert subsumes(general, specific)
        for s in SAMPLE_INPUTS:
            out_g = general.semantics(s)
            out_s = specific.semantics(s)
            assert all(
                ctx in out_g for ctx in out_s.concrete
            ), f"input {s}: {out_s} not within {out_g}"


class TestConcretize:
    """The paper's core observation, executable: a context-string fact
    table is the explicit enumeration of a transformer string."""

    def test_identity_enumerates_diagonal(self):
        """Figure 5: pts(h, h1, ε) stands for the pairs (m1, m1) and
        (m2, m2) the context-string column lists."""
        pairs = concretize(EPSILON, ["m1", "m2"], 1, 1)
        assert (("m1",), ("m1",)) in pairs
        assert (("m2",), ("m2",)) in pairs
        assert (("m1",), ("m2",)) not in pairs

    def test_entry_enumerates_per_source(self):
        """Figure 5: pts(p, h1, id1̂) stands for (m1, id1) and (m2, id1)."""
        pairs = concretize(
            TransformerString.entry(("id1",)), ["m1", "m2", "id1"], 1, 1
        )
        assert (("m1",), ("id1",)) in pairs
        assert (("m2",), ("id1",)) in pairs
        assert (("m1",), ("m1",)) not in pairs

    def test_full_length_pair_concretizes_to_itself(self):
        from repro.core.context_strings import to_transformer_string

        pair = (("m1",), ("id1",))
        assert concretize(
            to_transformer_string(pair), ["m1", "id1"], 1, 1
        ) == frozenset({pair})

    @given(
        st.lists(st.sampled_from(("a", "b")), min_size=1, max_size=2).map(tuple),
        st.lists(st.sampled_from(("a", "b")), min_size=1, max_size=2).map(tuple),
    )
    @settings(max_examples=40, deadline=None)
    def test_pair_roundtrip_property(self, source, dest):
        """A full-length pair's transformer concretizes back to exactly
        that pair at its own truncation lengths."""
        from repro.core.context_strings import to_transformer_string

        pair = (source, dest)
        pairs = concretize(
            to_transformer_string(pair), ("a", "b"), len(source), len(dest)
        )
        assert pairs == frozenset({pair})

    def test_subsumption_implies_concretization_containment(self):
        general = TransformerString(("a",), True, ())
        specific = TransformerString(("a", "b"), True, ("a",))
        assert subsumes(general, specific)
        general_pairs = concretize(general, ("a", "b"), 2, 1)
        specific_pairs = concretize(specific, ("a", "b"), 2, 1)
        assert specific_pairs <= general_pairs


# ---------------------------------------------------------------------------
# Property-based validation against the ground-truth oracle.
# ---------------------------------------------------------------------------


class TestAlgebraProperties:
    @given(transformer_strings, transformer_strings)
    @settings(max_examples=300, deadline=None)
    def test_compose_agrees_with_semantics(self, x, y):
        composed = compose(x, y)
        for s in SAMPLE_INPUTS:
            expected = y.semantics(x.semantics(s))
            if composed is None:
                assert expected.is_empty()
            else:
                assert composed.semantics(s) == expected

    @given(transformer_strings, transformer_strings, transformer_strings)
    @settings(max_examples=200, deadline=None)
    def test_compose_is_associative(self, x, y, z):
        def comp3(a, b, c):
            ab = compose(a, b)
            return None if ab is None else compose(ab, c)

        def comp3r(a, b, c):
            bc = compose(b, c)
            return None if bc is None else compose(a, bc)

        assert comp3(x, y, z) == comp3r(x, y, z)

    @given(transformer_strings)
    @settings(max_examples=200, deadline=None)
    def test_inverse_semigroup_laws(self, t):
        ti = inverse(t)
        t_ti_t = compose(compose(t, ti), t)
        ti_t_ti = compose(compose(ti, t), ti)
        assert t_ti_t == t
        assert ti_t_ti == ti

    @given(transformer_strings)
    @settings(max_examples=200, deadline=None)
    def test_inverse_agrees_with_semantics(self, t):
        # inv(t) must map t's outputs back onto (at least) its inputs:
        # for the identity-like composition t ; inv(t) ; t = t this is
        # already checked; here we check inv is semantically the converse
        # relation on concrete samples.
        ti = inverse(t)
        for s in SAMPLE_INPUTS:
            image = t.semantics(s)
            back = ti.semantics(image)
            # every context of s that t maps somewhere must be recovered.
            for ctx in s.concrete:
                if not t.semantics(ContextSet.of(ctx)).is_empty():
                    assert ctx in back

    @given(
        transformer_strings,
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=300, deadline=None)
    def test_trunc_is_conservative(self, t, i, j):
        """Lemma 4.2: A(X) ⊆ trunc_{i,j}(A)(X) for all X."""
        truncated = trunc(t, i, j)
        assert in_domain(truncated, i, j)
        for s in SAMPLE_INPUTS:
            precise = t.semantics(s)
            coarse = truncated.semantics(s)
            for ctx in precise.concrete:
                assert ctx in coarse
            for p in precise.prefixes:
                assert p in coarse or any(
                    p[: len(q)] == q for q in coarse.prefixes
                )

    @given(transformer_strings)
    @settings(max_examples=100, deadline=None)
    def test_letters_roundtrip(self, t):
        """Lemma 4.1: canonical strings are fixed points of match."""
        assert match_word(t.letters()) == t

    @given(transformer_strings, transformer_strings)
    @settings(max_examples=200, deadline=None)
    def test_match_of_concatenated_words(self, x, y):
        """match over the raw concatenated letter word equals compose."""
        assert match_word(x.letters() + y.letters()) == compose(x, y)
