"""AsyncGateway: pipelining, batching, admission control, drain."""

import json
import socket

import pytest

from repro.core.config import config_by_name
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5
from repro.serve.gateway import GatewayConfig, run_gateway_in_thread
from repro.serve.registry import SnapshotRegistry
from repro.service import AnalysisService


@pytest.fixture(scope="module")
def snapshot_paths(tmp_path_factory):
    root = tmp_path_factory.mktemp("gateway-snapshots")
    paths = {}
    for name, source in (("fig1", FIGURE_1), ("fig5", FIGURE_5)):
        service = AnalysisService.from_facts(
            facts_from_source(source), config_by_name("1-call")
        )
        path = str(root / f"{name}.json")
        service.save_snapshot(path)
        paths[name] = path
    return paths


class _Client:
    """A blocking JSON-lines client for driving the gateway."""

    def __init__(self, host, port):
        self.sock = socket.create_connection((host, port), timeout=15)
        self.stream = self.sock.makefile("rw", encoding="utf-8")

    def send(self, request):
        self.stream.write(json.dumps(request) + "\n")

    def flush(self):
        self.stream.flush()

    def recv(self):
        line = self.stream.readline()
        return json.loads(line) if line else None

    def call(self, request):
        self.send(request)
        self.flush()
        return self.recv()

    def close(self):
        try:
            self.stream.close()
            self.sock.close()
        except OSError:
            pass


def _gateway(snapshot_paths, config=None, tenants=("fig1",)):
    registry = SnapshotRegistry()
    for name in tenants:
        registry.register(snapshot_paths[name], alias=name)
    return run_gateway_in_thread(registry, config)


class TestBasics:
    def test_ping_answers_v2(self, snapshot_paths):
        gateway, (host, port), _thread, stop = _gateway(snapshot_paths)
        try:
            client = _Client(host, port)
            response = client.call({"id": 1, "op": "ping"})
            assert response == {
                "id": 1, "ok": True, "result": "repro-serve/2",
            }
            client.close()
        finally:
            stop()

    def test_single_tenant_is_the_default(self, snapshot_paths):
        gateway, (host, port), _thread, stop = _gateway(snapshot_paths)
        try:
            client = _Client(host, port)
            response = client.call(
                {"id": 1, "op": "points_to", "var": "T.main/a"}
            )
            assert response["ok"] and response["result"]
            client.close()
        finally:
            stop()

    def test_multi_tenant_routing(self, snapshot_paths):
        gateway, (host, port), _thread, stop = _gateway(
            snapshot_paths, tenants=("fig1", "fig5")
        )
        try:
            client = _Client(host, port)
            rows = client.call({"id": 1, "op": "tenants"})["result"]
            assert len(rows) == 2
            # Omitting the tenant with two registered is an error...
            response = client.call(
                {"id": 2, "op": "points_to", "var": "T.main/a"}
            )
            assert response["code"] == "unknown-tenant"
            # ...naming one (alias or digest) routes correctly.
            by_alias = client.call(
                {"id": 3, "op": "points_to", "var": "T.main/a",
                 "tenant": "fig1"}
            )
            by_digest = client.call(
                {"id": 4, "op": "points_to", "var": "T.main/a",
                 "tenant": rows[0]["digest"]}
            )
            assert by_alias["ok"] and by_digest["ok"]
            client.close()
        finally:
            stop()

    def test_unknown_tenant_code(self, snapshot_paths):
        gateway, (host, port), _thread, stop = _gateway(snapshot_paths)
        try:
            client = _Client(host, port)
            response = client.call(
                {"id": 1, "op": "points_to", "var": "x", "tenant": "zzz"}
            )
            assert response["code"] == "unknown-tenant"
            client.close()
        finally:
            stop()

    def test_bad_json_and_validation_codes(self, snapshot_paths):
        gateway, (host, port), _thread, stop = _gateway(snapshot_paths)
        try:
            client = _Client(host, port)
            client.stream.write("{broken\n")
            client.flush()
            assert client.recv()["code"] == "bad-json"
            assert client.call({"id": 2, "op": "zap"})["code"] == (
                "unknown-op"
            )
            assert client.call({"id": 3, "op": "alias"})["code"] == (
                "missing-field"
            )
            # The connection survived all three.
            assert client.call({"id": 4, "op": "ping"})["ok"]
            client.close()
        finally:
            stop()

    def test_oversized_line_answered(self, snapshot_paths):
        gateway, (host, port), _thread, stop = _gateway(
            snapshot_paths, GatewayConfig(max_line_bytes=256)
        )
        try:
            client = _Client(host, port)
            client.stream.write("x" * 4096 + "\n")
            client.flush()
            response = client.recv()
            assert response["code"] == "oversized"
            client.close()
        finally:
            stop()


class TestPipelining:
    def test_pipelined_requests_all_answered_in_order(self, snapshot_paths):
        gateway, (host, port), _thread, stop = _gateway(snapshot_paths)
        try:
            client = _Client(host, port)
            count = 40
            for index in range(count):
                client.send(
                    {"id": index, "op": "points_to", "var": "T.main/a"}
                )
            client.flush()
            responses = [client.recv() for _ in range(count)]
            # Same-tenant pipelined requests come back in arrival order.
            assert [r["id"] for r in responses] == list(range(count))
            assert all(r["ok"] for r in responses)
            client.close()
        finally:
            stop()

    def test_micro_batching_amortizes_hops(self, snapshot_paths):
        gateway, (host, port), _thread, stop = _gateway(
            snapshot_paths, GatewayConfig(max_batch=8, max_delay_ms=25.0)
        )
        try:
            client = _Client(host, port)
            for index in range(24):
                client.send(
                    {"id": index, "op": "points_to", "var": "T.main/a"}
                )
            client.flush()
            for _ in range(24):
                assert client.recv()["ok"]
            stats = client.call({"id": 99, "op": "stats"})["result"]
            batches = stats["batches"]
            assert batches["batched_requests"] == 24
            # Pipelined burst + generous delay => multi-request batches.
            assert batches["count"] < 24
            assert batches["max_size"] > 1
            client.close()
        finally:
            stop()

    def test_update_barrier_orders_and_increments_generation(
        self, snapshot_paths
    ):
        gateway, (host, port), _thread, stop = _gateway(snapshot_paths)
        try:
            client = _Client(host, port)
            client.send({"id": 0, "op": "points_to", "var": "T.main/a"})
            client.send({
                "id": 1, "op": "update",
                "delta": {
                    "added": {"assign": [["T.main/a", "gw_extra"]]}
                },
            })
            client.send({"id": 2, "op": "points_to", "var": "gw_extra"})
            client.flush()
            first, update, after = [client.recv() for _ in range(3)]
            assert first["ok"] and update["ok"] and after["ok"]
            assert update["result"]["generation"] == 1
            # The query behind the barrier sees the update's effect.
            assert after["result"] == first["result"]
            client.close()
        finally:
            stop()


class TestAdmissionControl:
    def test_overload_is_explicit(self, snapshot_paths):
        gateway, (host, port), _thread, stop = _gateway(
            snapshot_paths,
            GatewayConfig(queue_limit=4, max_batch=2, max_delay_ms=1.0),
        )
        try:
            client = _Client(host, port)
            burst = 80
            for index in range(burst):
                client.send(
                    {"id": index, "op": "points_to", "var": "T.main/a"}
                )
            client.flush()
            responses = [client.recv() for _ in range(burst)]
            overloads = [
                r for r in responses
                if not r["ok"] and r["code"] == "overload"
            ]
            served = [r for r in responses if r["ok"]]
            assert len(responses) == burst  # nothing dropped
            assert overloads, "burst past queue_limit must shed load"
            assert served, "admitted requests must still be answered"
            assert all(
                r["ok"] or r["code"] == "overload" for r in responses
            )
            client.close()
        finally:
            stop()

    def test_timeout_code_for_stale_queue_entries(self, snapshot_paths):
        gateway, (host, port), _thread, stop = _gateway(
            snapshot_paths,
            # Zero patience: anything that waits at all times out.
            GatewayConfig(op_timeout_s=0.0, max_delay_ms=50.0,
                          max_batch=64),
        )
        try:
            client = _Client(host, port)
            response = client.call(
                {"id": 1, "op": "points_to", "var": "T.main/a"}
            )
            assert not response["ok"] and response["code"] == "timeout"
            client.close()
        finally:
            stop()

    def test_draining_rejects_new_work(self, snapshot_paths):
        gateway, (host, port), _thread, stop = _gateway(snapshot_paths)
        try:
            client = _Client(host, port)
            # Connect *before* the drain starts: once it does, the
            # listener closes and new connections are simply refused.
            late = _Client(host, port)
            bye = client.call({"id": 1, "op": "shutdown",
                               "scope": "gateway"})
            assert bye["result"] == "bye"
            # The already-connected client gets an explicit "draining"
            # answer (or a clean close once the drain finishes) rather
            # than a hang.
            try:
                response = late.call(
                    {"id": 2, "op": "points_to", "var": "T.main/a"}
                )
                if response is not None:
                    assert response["code"] == "draining"
            except (ConnectionError, OSError):
                pass
            late.close()
            client.close()
        finally:
            stop()


class TestStatsOp:
    def test_gateway_stats_shape(self, snapshot_paths):
        gateway, (host, port), _thread, stop = _gateway(snapshot_paths)
        try:
            client = _Client(host, port)
            for index in range(5):
                assert client.call(
                    {"id": index, "op": "points_to", "var": "T.main/a"}
                )["ok"]
            stats = client.call({"id": 9, "op": "stats"})["result"]
            assert stats["protocol"] == "repro-serve/2"
            assert stats["answered"] >= 5
            latency = stats["latency_us"]["points_to"]
            assert latency["count"] == 5
            assert latency["p50_us"] is not None
            assert latency["p50_us"] <= latency["p95_us"] <= (
                latency["p99_us"]
            )
            assert stats["queue"]["max_depth"] >= 1
            assert stats["registry"]["tenants"] == 1
            assert stats["registry"]["restores"] == 1
            client.close()
        finally:
            stop()

    def test_tenant_stats_is_the_service_surface(self, snapshot_paths):
        gateway, (host, port), _thread, stop = _gateway(snapshot_paths)
        try:
            client = _Client(host, port)
            stats = client.call(
                {"id": 1, "op": "stats", "tenant": "fig1"}
            )["result"]
            assert stats["mode"] == "snapshot"
            assert "generation" in stats and "cache" in stats
            client.close()
        finally:
            stop()
