"""Satellite: N concurrent clients stay bit-identical to sequential replay.

Both serving stacks are exercised: the threaded repro-serve/1 TCP server
and the async repro-serve/2 gateway.  Each client interleaves
query/update/check ops; updates add edges into fresh sink variables
(``cc_extra_<k>``) so they commute and never perturb query answers.
Afterwards the same request log is replayed sequentially against a
direct AnalysisService and every response must match bit for bit, the
generation counter must have advanced monotonically by exactly the
number of updates, and the relation digests of served and replayed
state must agree.
"""

import hashlib
import json
import random
import socket
import threading

import pytest

from repro.core.config import config_by_name
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_1
from repro.serve.gateway import run_gateway_in_thread
from repro.serve.registry import SnapshotRegistry
from repro.service import AnalysisService
from repro.service.server import ServiceTCPServer, handle_request
from repro.service.snapshot import DERIVED_RELATIONS

CLIENTS = 4
OPS_PER_CLIENT = 30


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory):
    root = tmp_path_factory.mktemp("concurrency")
    service = AnalysisService.from_facts(
        facts_from_source(FIGURE_1), config_by_name("1-call")
    )
    path = str(root / "fig1.json")
    service.save_snapshot(path)
    return path


def _client_script(client, snapshot_path):
    """A deterministic interleaved query/update/check op sequence."""
    service = AnalysisService.from_snapshot(snapshot_path)
    variables = sorted({row[0] for row in service._backend.pts})
    rng = random.Random(20260808 + client)
    script = []
    for step in range(OPS_PER_CLIENT):
        request_id = client * 1000 + step
        roll = rng.random()
        if roll < 0.70:
            script.append({
                "id": request_id, "op": "points_to",
                "var": rng.choice(variables),
            })
        elif roll < 0.85:
            script.append({
                "id": request_id, "op": "check", "name": "null-deref",
            })
        else:
            # Commutative sink-variable update: nobody queries the new
            # variable, so answers are interleaving-independent.
            script.append({
                "id": request_id, "op": "update",
                "delta": {"added": {"assign": [[
                    rng.choice(variables),
                    f"cc_extra_{client}_{step}",
                ]]}},
            })
    return script


def _drive(host, port, script, results, client):
    with socket.create_connection((host, port), timeout=30) as sock:
        handle = sock.makefile("rw", encoding="utf-8")
        for request in script:
            handle.write(json.dumps(request) + "\n")
        handle.flush()
        answers = {}
        for _ in script:
            response = json.loads(handle.readline())
            answers[response["id"]] = response
        handle.close()
    results[client] = answers


def _run_concurrently(host, port, scripts):
    results = {}
    threads = [
        threading.Thread(
            target=_drive, args=(host, port, script, results, client)
        )
        for client, script in enumerate(scripts)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results


def _strip_meta(response):
    return {k: v for k, v in response.items() if k != "meta"}


def _replay_and_compare(snapshot_path, scripts, results):
    """Sequential replay on a direct service must match every response."""
    replay = AnalysisService.from_snapshot(snapshot_path)
    updates = 0
    for client, script in enumerate(scripts):
        for request in script:
            expected = handle_request(replay, request)
            got = results[client][request["id"]]
            if request["op"] == "update":
                updates += 1
                # Generation numbers depend on interleaving; everything
                # else (delta effect summary, ok flag) must match.
                assert got["ok"] and expected["ok"]
                # Which update is *first* (and so pays the one-off
                # incremental-solver upgrade) depends on interleaving;
                # the derived-row effect of each delta does not.
                assert (
                    got["result"]["changed"]
                    == expected["result"]["changed"]
                ), request
            elif request["op"] == "check":
                # Timing ("seconds") and the generation/digest header
                # vary with interleaving; the findings body must not.
                assert got["ok"] and expected["ok"]
                assert (
                    got["result"]["body"] == expected["result"]["body"]
                ), request
            else:
                assert _strip_meta(got) == _strip_meta(expected), request
    return replay, updates


def _final_digest(service):
    """SHA-256 over *sorted* facts + derived rows.

    The snapshot digest covers rows in insertion order, which varies
    with update interleaving even when the sets are equal; sorting
    first makes the fingerprint a pure function of analysis state.
    """
    state = {
        name: sorted(repr(row) for row in getattr(service._backend, name))
        for name, _arity in DERIVED_RELATIONS
    }
    state["facts"] = {
        name: sorted(repr(row) for row in getattr(service.facts, name))
        for name in service.facts.relation_names()
    }
    blob = json.dumps(state, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class TestThreadedServer:
    def test_concurrent_clients_match_sequential_replay(
        self, snapshot_path
    ):
        scripts = [
            _client_script(c, snapshot_path) for c in range(CLIENTS)
        ]
        service = AnalysisService.from_snapshot(snapshot_path)
        server = ServiceTCPServer(("127.0.0.1", 0), service)
        host, port = server.server_address[:2]
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        try:
            results = _run_concurrently(host, port, scripts)
        finally:
            server.shutdown()
            server.server_close()

        replay, updates = _replay_and_compare(
            snapshot_path, scripts, results
        )
        # Generation advanced monotonically: one tick per update.
        assert service.generation == updates
        assert replay.generation == updates
        # Final relation state is identical regardless of interleaving.
        assert _final_digest(service) == _final_digest(replay)


class TestAsyncGateway:
    def test_concurrent_clients_match_sequential_replay(
        self, snapshot_path
    ):
        scripts = [
            _client_script(c, snapshot_path) for c in range(CLIENTS)
        ]
        registry = SnapshotRegistry()
        digest = registry.register(snapshot_path, alias="prog")
        gateway, (host, port), _thread, stop = run_gateway_in_thread(
            registry
        )
        try:
            results = _run_concurrently(host, port, scripts)
            served = registry.acquire(digest)
            replay, updates = _replay_and_compare(
                snapshot_path, scripts, results
            )
            assert served.generation == updates
            assert replay.generation == updates
            assert _final_digest(served) == _final_digest(replay)
        finally:
            stop()

    def test_update_generations_are_monotone_per_client(
        self, snapshot_path
    ):
        scripts = [
            _client_script(c, snapshot_path) for c in range(CLIENTS)
        ]
        registry = SnapshotRegistry()
        registry.register(snapshot_path, alias="prog")
        gateway, (host, port), _thread, stop = run_gateway_in_thread(
            registry
        )
        try:
            results = _run_concurrently(host, port, scripts)
        finally:
            stop()
        all_generations = []
        for client, script in enumerate(scripts):
            generations = [
                results[client][r["id"]]["result"]["generation"]
                for r in script if r["op"] == "update"
            ]
            # Each client observes strictly increasing generations.
            assert generations == sorted(set(generations))
            all_generations.extend(generations)
        # Globally: every update got a distinct generation tick.
        assert sorted(all_generations) == list(
            range(1, len(all_generations) + 1)
        )
