"""SnapshotRegistry: digest keys, aliases, LRU byte-budget eviction."""

import pytest

from repro.core.config import config_by_name
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5
from repro.serve.registry import SnapshotRegistry, UnknownTenantError
from repro.service import AnalysisService, load_snapshot_document
from repro.service.snapshot import document_byte_size


@pytest.fixture(scope="module")
def snapshot_paths(tmp_path_factory):
    root = tmp_path_factory.mktemp("snapshots")
    paths = {}
    for name, source in (("fig1", FIGURE_1), ("fig5", FIGURE_5)):
        service = AnalysisService.from_facts(
            facts_from_source(source), config_by_name("1-call")
        )
        path = str(root / f"{name}.json")
        service.save_snapshot(path)
        paths[name] = path
    return paths


class TestRegistration:
    def test_register_keys_by_content_digest(self, snapshot_paths):
        registry = SnapshotRegistry()
        digest = registry.register(snapshot_paths["fig1"])
        document = load_snapshot_document(snapshot_paths["fig1"])
        assert digest == document["digest"]

    def test_reregistration_is_idempotent(self, snapshot_paths):
        registry = SnapshotRegistry()
        first = registry.register(snapshot_paths["fig1"], alias="a")
        second = registry.register(snapshot_paths["fig1"], alias="b")
        assert first == second
        assert len(registry.tenants()) == 1
        assert set(registry.tenants()[0]["aliases"]) == {"a", "b"}

    def test_alias_collision_rejected(self, snapshot_paths):
        registry = SnapshotRegistry()
        registry.register(snapshot_paths["fig1"], alias="prog")
        with pytest.raises(ValueError, match="already bound"):
            registry.register(snapshot_paths["fig5"], alias="prog")

    def test_add_service_pins_a_solved_tenant(self, snapshot_paths):
        registry = SnapshotRegistry(byte_budget=0)
        service = AnalysisService.from_facts(
            facts_from_source(FIGURE_1), config_by_name("1-call")
        )
        digest = registry.add_service(service, alias="live")
        # Same content => same digest as the snapshot of the same solve.
        assert digest == load_snapshot_document(
            snapshot_paths["fig1"]
        )["digest"]
        row = registry.tenants()[0]
        assert row["pinned"] and row["warm"]
        # A zero budget never evicts a pinned tenant.
        assert registry.acquire("live") is service
        assert registry.describe()["evictions"] == 0

    def test_add_service_requires_a_solved_service(self):
        registry = SnapshotRegistry()
        cold = AnalysisService.from_facts(
            facts_from_source(FIGURE_1), config_by_name("1-call"),
            solve=False,
        )
        with pytest.raises(ValueError, match="solved"):
            registry.add_service(cold)


class TestAcquire:
    def test_first_acquire_restores_then_hits(self, snapshot_paths):
        registry = SnapshotRegistry()
        digest = registry.register(snapshot_paths["fig1"])
        first = registry.acquire(digest)
        second = registry.acquire(digest)
        assert first is second
        stats = registry.describe()
        assert stats["restores"] == 1 and stats["hits"] == 1
        assert stats["hit_rate"] == 0.5

    def test_acquire_by_alias_and_prefix(self, snapshot_paths):
        registry = SnapshotRegistry()
        digest = registry.register(snapshot_paths["fig1"], alias="fig1")
        assert registry.acquire("fig1") is registry.acquire(digest)
        assert registry.resolve(digest[:10]) == digest

    def test_unknown_tenant(self, snapshot_paths):
        registry = SnapshotRegistry()
        registry.register(snapshot_paths["fig1"])
        with pytest.raises(UnknownTenantError):
            registry.acquire("no-such-tenant")

    def test_default_tenant_only_when_unambiguous(self, snapshot_paths):
        registry = SnapshotRegistry()
        digest = registry.register(snapshot_paths["fig1"])
        assert registry.default_tenant() == digest
        registry.register(snapshot_paths["fig5"])
        assert registry.default_tenant() is None

    def test_restored_service_answers_like_direct(self, snapshot_paths):
        registry = SnapshotRegistry()
        digest = registry.register(snapshot_paths["fig1"])
        restored = registry.acquire(digest)
        direct = AnalysisService.from_snapshot(snapshot_paths["fig1"])
        assert set(restored._backend.pts) == set(direct._backend.pts)


class TestEviction:
    def test_lru_eviction_under_byte_budget(self, snapshot_paths):
        size1 = document_byte_size(
            load_snapshot_document(snapshot_paths["fig1"])
        )
        size5 = document_byte_size(
            load_snapshot_document(snapshot_paths["fig5"])
        )
        # Budget fits either snapshot alone but not both warm at once.
        registry = SnapshotRegistry(byte_budget=max(size1, size5))
        d1 = registry.register(snapshot_paths["fig1"])
        d5 = registry.register(snapshot_paths["fig5"])
        registry.acquire(d1)
        assert registry.warm_bytes() == size1
        registry.acquire(d5)  # evicts fig1 (least recently used)
        stats = registry.describe()
        assert stats["evictions"] == 1
        assert registry.warm_bytes() == size5
        rows = {row["digest"]: row for row in registry.tenants()}
        assert not rows[d1]["warm"] and rows[d5]["warm"]
        # The evicted tenant restores again on demand.
        registry.acquire(d1)
        assert registry.describe()["restores"] == 3

    def test_unbounded_budget_never_evicts(self, snapshot_paths):
        registry = SnapshotRegistry()
        registry.acquire(registry.register(snapshot_paths["fig1"]))
        registry.acquire(registry.register(snapshot_paths["fig5"]))
        assert registry.describe()["evictions"] == 0
        assert registry.describe()["warm"] == 2

    def test_single_oversized_tenant_still_serves(self, snapshot_paths):
        registry = SnapshotRegistry(byte_budget=1)
        digest = registry.register(snapshot_paths["fig1"])
        service = registry.acquire(digest)
        assert service.points_to("T.main/a")
        # Over budget but irreducible: the just-restored tenant stays.
        assert registry.describe()["warm"] == 1

    def test_budget_charges_canonical_digested_bytes(self, snapshot_paths):
        document = load_snapshot_document(snapshot_paths["fig1"])
        registry = SnapshotRegistry()
        registry.register(snapshot_paths["fig1"])
        row = registry.tenants()[0]
        assert row["bytes"] == document_byte_size(document)
