"""repro-serve/2 protocol: classification, validation, error codes."""

import pytest

from repro.serve.protocol import (
    ADMISSION_ERROR_CODES,
    ALL_ERROR_CODES,
    BARRIER_OPS,
    BATCHABLE_OPS,
    GATEWAY_OPS,
    PROTOCOL_V2,
    classify,
    validate,
)
from repro.service.server import ERROR_CODES


class TestConstants:
    def test_protocol_version(self):
        assert PROTOCOL_V2 == "repro-serve/2"

    def test_admission_codes_extend_v1_codes(self):
        assert set(ALL_ERROR_CODES) == (
            set(ERROR_CODES) | set(ADMISSION_ERROR_CODES)
        )
        assert not set(ERROR_CODES) & set(ADMISSION_ERROR_CODES)

    def test_op_classes_are_disjoint(self):
        assert not BATCHABLE_OPS & BARRIER_OPS
        # "stats" is deliberately on both sides of the tenant line.
        assert (GATEWAY_OPS & BATCHABLE_OPS) <= {"stats"}


class TestClassify:
    @pytest.mark.parametrize("op", ["ping", "tenants", "shutdown"])
    def test_gateway_ops(self, op):
        assert classify({"op": op}) == "gateway"

    def test_stats_without_tenant_is_gateway(self):
        assert classify({"op": "stats"}) == "gateway"

    def test_stats_with_tenant_is_batchable(self):
        assert classify({"op": "stats", "tenant": "abc"}) == "batch"

    @pytest.mark.parametrize(
        "op", ["points_to", "alias", "callees", "fields_of", "check"]
    )
    def test_read_ops_batch(self, op):
        assert classify({"op": op, "tenant": "abc"}) == "batch"

    def test_update_is_a_barrier(self):
        assert classify({"op": "update", "delta": {}}) == "barrier"

    def test_garbage_is_invalid(self):
        assert classify({"op": "zap"}) == "invalid"
        assert classify(["not", "a", "dict"]) == "invalid"


class TestValidate:
    def test_good_request(self):
        op, error = validate({"id": 1, "op": "points_to", "var": "x"})
        assert op == "points_to" and error is None

    def test_tenants_is_valid(self):
        op, error = validate({"id": 1, "op": "tenants"})
        assert op == "tenants" and error is None

    def test_non_object(self):
        op, error = validate("ping")
        assert op is None and error["code"] == "bad-request"

    def test_missing_op(self):
        op, error = validate({"id": 3})
        assert error["code"] == "bad-request" and error["id"] == 3

    def test_unknown_op(self):
        op, error = validate({"id": 4, "op": "frobnicate"})
        assert error["code"] == "unknown-op" and error["id"] == 4

    def test_missing_field(self):
        op, error = validate({"id": 5, "op": "alias", "a": "x"})
        assert error["code"] == "missing-field"
        assert "b" in error["error"]

    def test_error_shape_is_flat_and_stable(self):
        _, error = validate({"id": 6, "op": "nope"})
        assert set(error) == {"id", "ok", "code", "error"}
        assert error["ok"] is False
