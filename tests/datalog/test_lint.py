"""Golden tests for the Datalog semantic analyzer (`repro.datalog.lint`).

Covers every diagnostic family with a minimal triggering program, the
engine's ``strict=`` wiring, the dead-rule rewrite, the IR verifier,
and a sweep asserting that every flavour × (m, h) configuration emitted
by :mod:`repro.compile.emit` lints clean.
"""

import pytest

from repro.core.sensitivity import Flavour, validate_levels
from repro.datalog.ast import Program, Rule, atom, negated
from repro.datalog.engine import Engine, evaluate
from repro.datalog.lint import (
    LintError,
    Severity,
    check_configurations,
    check_liveness,
    check_safety,
    check_schema,
    check_sorts,
    check_stratification,
    eliminate_dead_rules,
    lint_program,
)
from repro.datalog.parser import parse_datalog
from repro.datalog.stratify import StratificationError, negative_cycle_edges


def codes(diagnostics):
    return [d.code for d in diagnostics]


def unsafe_negation_program():
    """`p(X) :- !q(X), r(X).` — passes Rule.validate(), crashes the engine."""
    program = Program()
    program.rule(atom("p", "X"), negated("q", "X"), atom("r", "X"))
    program.add_facts("r", [(1,), (2,)])
    program.add_facts("q", [(1,)])
    return program


# ---------------------------------------------------------------------------
# Safety / range restriction (DL001–DL004).
# ---------------------------------------------------------------------------


class TestSafety:
    def test_clean_program_has_no_findings(self):
        program = Program()
        program.rule(atom("p", "X"), atom("r", "X"), negated("q", "X"))
        program.add_facts("r", [(1,)])
        assert check_safety(program) == []

    def test_unbound_head_variable_is_dl001(self):
        # Program.rule() would reject this eagerly; build the Rule
        # directly, as a generator with a bug would.
        program = Program()
        program.rules.append(Rule(atom("p", "X", "Y"), (atom("r", "X"),)))
        (diag,) = check_safety(program)
        assert diag.code == "DL001"
        assert diag.severity is Severity.ERROR
        assert "Y" in diag.message

    def test_negation_before_binding_is_dl002_with_reorder_hint(self):
        (diag,) = check_safety(unsafe_negation_program())
        assert diag.code == "DL002"
        assert diag.rule_index == 0
        assert "move the negation after it" in diag.message

    def test_never_bound_negated_variable_is_dl002(self):
        program = Program()
        program.rules.append(Rule(
            atom("p", "X"), (atom("r", "X"), negated("q", "Y")),
        ))
        (diag,) = check_safety(program)
        assert diag.code == "DL002"
        assert "not bound by any positive body literal" in diag.message

    def test_builtin_reached_with_unbound_inputs_is_dl003(self):
        program = Program()
        # lt/2 is all-input: X is bound by r but Y never is.
        program.rule(atom("p", "X"), atom("r", "X"), atom("lt", "X", "Y"))
        assert "DL003" in codes(check_safety(program))

    def test_builtin_after_binding_is_clean(self):
        program = Program()
        program.rule(
            atom("p", "X"), atom("r", "X"), atom("s", "Y"),
            atom("lt", "X", "Y"),
        )
        assert check_safety(program) == []

    def test_succ_with_one_bound_side_is_clean_with_none_bound_dl003(self):
        program = Program()
        program.rule(atom("p", "Y"), atom("r", "X"), atom("succ", "X", "Y"))
        assert check_safety(program) == []
        bad = Program()
        bad.rule(atom("p", "Y"), atom("succ", "X", "Y"), atom("r", "X"))
        assert "DL003" in codes(check_safety(bad))

    def test_negated_head_is_dl004(self):
        program = parse_datalog("!p(X) :- q(X).", validate=False)
        assert "DL004" in codes(check_safety(program))


# ---------------------------------------------------------------------------
# Schema and sorts (DL101–DL103).
# ---------------------------------------------------------------------------


class TestSchema:
    def test_arity_clash_between_rules_is_dl101(self):
        program = Program()
        program.rule(atom("p", "X"), atom("r", "X"))
        program.rule(atom("q", "X"), atom("p", "X", "Y"), atom("r", "Y"))
        (diag,) = check_schema(program)
        assert diag.code == "DL101"
        assert "'p'" in diag.message

    def test_fact_arity_clash_is_dl101(self):
        program = Program()
        program.rule(atom("q", "X"), atom("r", "X"))
        program.add_facts("r", [(1, 2)])
        assert "DL101" in codes(check_schema(program))

    def test_builtin_arity_clash_is_dl101(self):
        program = Program()
        program.rule(atom("p", "X"), atom("r", "X"), atom("lt", "X"))
        assert "DL101" in codes(check_schema(program))

    def test_stored_relation_shadowing_builtin_is_dl103(self):
        program = Program()
        program.rule(atom("lt", "X", "Y"), atom("r", "X", "Y"))
        assert "DL103" in codes(check_schema(program))

    def test_conflicting_sorts_in_joined_slots_is_dl102_warning(self):
        program = Program()
        # p's column joins r's column via X; r holds strings, s holds
        # tuples, and q(X) :- s(X) routes the tuple into the same class.
        program.rule(atom("p", "X"), atom("r", "X"))
        program.rule(atom("p", "X"), atom("s", "X"))
        program.add_facts("r", [("a",)])
        program.add_facts("s", [(("ctx", "ctx"),)])
        (diag,) = check_sorts(program)
        assert diag.code == "DL102"
        assert diag.severity is Severity.WARNING
        assert "str" in diag.message and "tuple" in diag.message

    def test_consistent_sorts_are_clean(self):
        program = Program()
        program.rule(atom("p", "X"), atom("r", "X"))
        program.add_facts("r", [("a",), ("b",)])
        assert check_sorts(program) == []


# ---------------------------------------------------------------------------
# Configuration-specialized relations (DL105).
# ---------------------------------------------------------------------------


class TestConfigurations:
    def test_arity_below_context_arity_is_dl105_error(self):
        program = Program()
        # Tag "xxe" needs 3 context attributes; arity 2 can't hold them.
        program.rule(atom("pts__xxe", "V", "H"), atom("r", "V", "H"))
        (diag,) = check_configurations(program)
        assert diag.code == "DL105"
        assert diag.severity is Severity.ERROR
        assert "'pts__xxe'" in diag.message
        assert "x^2 e^1" in diag.message

    def test_fact_relation_is_checked_too(self):
        program = Program()
        program.add_facts("call__xe", [(1,)])
        (diag,) = check_configurations(program)
        assert diag.code == "DL105"
        assert diag.severity is Severity.ERROR

    def test_mixed_entity_arity_family_is_dl105_warning(self):
        program = Program()
        # pts__x has entity arity 2, pts__xe has entity arity 1: the
        # specializer never emits a base with drifting entity columns.
        program.rule(atom("pts__x", "V", "H", "C"), atom("r", "V", "H", "C"))
        program.rule(atom("pts__xe", "V", "C1", "C2"), atom("s", "V", "C1", "C2"))
        (diag,) = check_configurations(program)
        assert diag.code == "DL105"
        assert diag.severity is Severity.WARNING
        assert "pts" in diag.message
        assert "entity arity 1" in diag.message
        assert "entity arity 2" in diag.message

    def test_consistent_family_is_clean(self):
        program = Program()
        program.rule(atom("pts__x", "V", "H", "C"), atom("r", "V", "H", "C"))
        program.rule(
            atom("pts__xe", "V", "H", "C1", "C2"),
            atom("s", "V", "H", "C1", "C2"),
        )
        assert check_configurations(program) == []

    def test_wildcard_tag_counts_no_column(self):
        # "xw" pops one and matches the rest: one context attribute.
        program = Program()
        program.rule(atom("reach__xw", "M", "C"), atom("r", "M", "C"))
        assert check_configurations(program) == []

    def test_unparseable_suffix_is_skipped(self):
        program = Program()
        program.rule(atom("not__atag", "X"), atom("r", "X"))
        program.rule(atom("double__under__xe", "X"), atom("r", "X"))
        assert check_configurations(program) == []

    def test_builtin_names_are_ignored(self):
        program = Program()
        program.rule(
            atom("p", "X"), atom("r", "X"), atom("le", "X", "X")
        )
        assert check_configurations(program) == []

    def test_dl105_reaches_lint_program_report(self):
        program = Program()
        program.rule(atom("pts__xxe", "V", "H"), atom("r", "V", "H"))
        report = lint_program(program, subject="dl105")
        assert "DL105" in report.codes()
        assert not report.ok


# ---------------------------------------------------------------------------
# Stratification (DL201).
# ---------------------------------------------------------------------------


class TestStratification:
    def negative_cycle_program(self):
        program = Program()
        program.rule(atom("p", "X"), atom("n", "X"), negated("q", "X"))
        program.rule(atom("q", "X"), atom("n", "X"), negated("p", "X"))
        program.add_facts("n", [(1,)])
        return program

    def test_negative_cycle_is_dl201_with_witness(self):
        diagnostics = check_stratification(self.negative_cycle_program())
        assert codes(diagnostics) == ["DL201", "DL201"]
        assert any("p -> q -> p" in d.message or "q -> p -> q" in d.message
                   for d in diagnostics)

    def test_all_offending_edges_reported(self):
        violations = negative_cycle_edges(self.negative_cycle_program())
        assert {(v.source, v.target) for v in violations} == {
            ("q", "p"), ("p", "q"),
        }
        with pytest.raises(StratificationError) as exc:
            evaluate(self.negative_cycle_program())
        assert len(exc.value.violations) == 2
        # The message names both offending negations, not just one.
        assert "!q" in str(exc.value) and "!p" in str(exc.value)

    def test_self_negation_is_reported(self):
        program = Program()
        program.rule(atom("p", "X"), atom("n", "X"), negated("p", "X"))
        program.add_facts("n", [(1,)])
        (diag,) = check_stratification(program)
        assert diag.code == "DL201"

    def test_stratified_negation_is_clean(self):
        program = Program()
        program.rule(atom("base", "X"), atom("n", "X"))
        program.rule(atom("p", "X"), atom("n", "X"), negated("base", "X"))
        program.add_facts("n", [(1,)])
        assert check_stratification(program) == []

    def test_witness_carries_line_and_column(self):
        # Programs parsed from text: the DL201 witness names the
        # offending negation's source position in the message, and the
        # diagnostic itself anchors to the rule for JSON consumers.
        from repro.datalog.parser import parse_datalog

        program = parse_datalog(
            "n(1).\n"
            "p(X) :- n(X), !q(X).\n"
            "q(X) :- n(X), !p(X).\n",
            validate=False,
        )
        diagnostics = check_stratification(program)
        assert diagnostics and all(d.code == "DL201" for d in diagnostics)
        for diagnostic in diagnostics:
            assert diagnostic.pos is not None
            assert diagnostic.pos.line in (2, 3)
            assert "(at " in diagnostic.message


# ---------------------------------------------------------------------------
# Liveness (DL301–DL302) and the dead-rule rewrite.
# ---------------------------------------------------------------------------


class TestLiveness:
    def dead_rule_program(self):
        program = Program()
        program.rule(atom("p", "X"), atom("r", "X"))
        program.rule(atom("p", "X"), atom("ghost", "X"))  # ghost underivable
        program.add_facts("r", [(1,)])
        return program

    def test_dead_rule_is_dl301_warning(self):
        diagnostics = check_liveness(self.dead_rule_program())
        dead = [d for d in diagnostics if d.code == "DL301"]
        assert len(dead) == 1
        assert dead[0].severity is Severity.WARNING
        assert "ghost" in dead[0].message
        assert dead[0].rule_index == 1

    def test_edb_whitelist_suppresses_dl301(self):
        diagnostics = check_liveness(self.dead_rule_program(), edb=["ghost"])
        assert "DL301" not in codes(diagnostics)

    def test_unconsumed_idb_is_dl302_note(self):
        program = Program()
        program.rule(atom("p", "X"), atom("r", "X"))
        program.add_facts("r", [(1,)])
        (diag,) = check_liveness(program)
        assert (diag.code, diag.severity) == ("DL302", Severity.NOTE)

    def test_negation_never_makes_a_rule_dead(self):
        program = Program()
        program.rule(atom("p", "X"), atom("r", "X"), negated("ghost", "X"))
        program.add_facts("r", [(1,)])
        assert "DL301" not in codes(check_liveness(program))

    def test_eliminate_dead_rules_preserves_results(self):
        program = self.dead_rule_program()
        optimized, removed = eliminate_dead_rules(program)
        assert len(removed) == 1
        assert removed[0].body[0].pred == "ghost"
        assert len(optimized.rules) == 1
        assert evaluate(optimized)["p"] == evaluate(program)["p"] == {(1,)}
        # The input program is untouched.
        assert len(program.rules) == 2

    def test_transitively_dead_rules_are_removed(self):
        program = Program()
        program.rule(atom("a", "X"), atom("ghost", "X"))
        program.rule(atom("b", "X"), atom("a", "X"))
        program.rule(atom("keep", "X"), atom("r", "X"))
        program.add_facts("r", [(1,)])
        optimized, removed = eliminate_dead_rules(program)
        assert len(removed) == 2
        assert [r.head.pred for r in optimized.rules] == ["keep"]


# ---------------------------------------------------------------------------
# The driver and the engines' strict mode.
# ---------------------------------------------------------------------------


class TestLintProgram:
    def test_report_aggregates_all_passes(self):
        program = unsafe_negation_program()
        program.rule(atom("p", "X", "Y"), atom("r", "X"), atom("r", "Y"))
        report = lint_program(program)
        assert "DL002" in report.codes()
        assert "DL101" in report.codes()
        assert not report.ok

    def test_pass_selection(self):
        report = lint_program(unsafe_negation_program(), passes=("schema",))
        assert report.ok
        with pytest.raises(ValueError, match="unknown lint pass"):
            lint_program(Program(), passes=("nope",))

    def test_clean_program_report(self):
        program = Program()
        program.rule(atom("path", "X", "Y"), atom("edge", "X", "Y"))
        program.rule(
            atom("path", "X", "Z"), atom("edge", "X", "Y"),
            atom("path", "Y", "Z"),
        )
        program.add_facts("edge", [(1, 2)])
        report = lint_program(program, subject="tc")
        assert report.ok
        assert report.summary() == "tc: clean"

    def test_lint_error_message_renders_diagnostics(self):
        report = lint_program(unsafe_negation_program())
        with pytest.raises(LintError, match="DL002") as exc:
            report.raise_if_errors()
        assert exc.value.report is report


class TestEngineStrictMode:
    def test_nonstrict_engine_crashes_mid_join(self):
        # The historical behaviour the analyzer front-runs: validate()
        # accepts the rule, the engine dies inside the join.
        engine = Engine(unsafe_negation_program())
        with pytest.raises(ValueError, match="unbound variable"):
            engine.run()

    def test_strict_engine_rejects_before_evaluation(self):
        with pytest.raises(LintError, match="DL002"):
            Engine(unsafe_negation_program(), strict=True)

    def test_strict_accepts_clean_program(self):
        program = Program()
        program.rule(atom("p", "X"), atom("r", "X"), negated("q", "X"))
        program.add_facts("r", [(1,), (2,)])
        program.add_facts("q", [(1,)])
        assert evaluate(program, strict=True)["p"] == {(2,)}

    def test_compiled_engine_strict_mode(self):
        from repro.datalog.codegen import CompiledEngine

        with pytest.raises(LintError, match="DL002"):
            CompiledEngine(unsafe_negation_program(), strict=True)


# ---------------------------------------------------------------------------
# Parser source positions feed diagnostics.
# ---------------------------------------------------------------------------


class TestPositions:
    SOURCE = """\
% transitive closure
path(X, Y) :- edge(X, Y).
p(X) :- !q(X), r(X).
"""

    def test_rule_and_literal_positions(self):
        program = parse_datalog(self.SOURCE)
        first, second = program.rules
        assert (first.pos.line, first.pos.column) == (2, 1)
        assert first.body[0].pos.column == 15
        assert second.pos.line == 3

    def test_diagnostic_carries_position(self):
        program = parse_datalog(self.SOURCE)
        (diag,) = check_safety(program)
        assert diag.code == "DL002"
        assert (diag.pos.line, diag.pos.column) == (3, 9)
        assert "3:9" in diag.render()


# ---------------------------------------------------------------------------
# IR well-formedness (IR001–IR005).
# ---------------------------------------------------------------------------


class TestIRCheck:
    def parse(self, source):
        from repro.frontend.parser import parse_program

        return parse_program(source)

    def test_figure1_is_clean(self):
        from repro.frontend.paper_programs import FIGURE_1
        from repro.lint.ircheck import check_ir

        report = check_ir(self.parse(FIGURE_1))
        assert report.ok

    def test_undefined_variable_is_ir001(self):
        # The source parser resolves every identifier (unknown names
        # become implicit field accesses), so a dangling read can only
        # be constructed directly in the IR.
        from repro.frontend import ir
        from repro.lint.ircheck import check_ir

        program = ir.Program()
        cls = program.add_class(ir.ClassDecl("Main"))
        cls.add_method(ir.Method(
            "main", "Main", params=("Main.main/args",), is_static=True,
            body=[ir.Assign("Main.main/x", "Main.main/phantom")],
        ))
        program.main_class = "Main"
        report = check_ir(program)
        (diag,) = [d for d in report if d.code == "IR001"]
        assert "phantom" in diag.message
        assert diag.where == "Main.main"

    def test_duplicate_site_label_is_ir003(self):
        from repro.lint.ircheck import check_ir

        report = check_ir(self.parse("""
            class Main {
                public static void main(String[] args) {
                    Object a = new Object(); // dup
                    Object b = new Object(); // dup
                }
            }
        """))
        (diag,) = [d for d in report if d.code == "IR003"]
        assert "'dup'" in diag.message

    def test_undeclared_superclass_is_ir004(self):
        # parse_program() validates the hierarchy itself, so the
        # defect has to be introduced at the IR level.
        from repro.frontend import ir
        from repro.lint.ircheck import check_ir

        program = ir.Program()
        program.add_class(ir.ClassDecl("Main", superclass="Ghost"))
        report = check_ir(program)
        assert "IR004" in report.codes()

    def test_missing_main_is_ir005(self):
        from repro.lint.ircheck import check_ir

        report = check_ir(self.parse("""
            class Helper {
                Helper id(Helper x) { return x; }
            }
        """))
        severities = {d.code: d.severity for d in report}
        assert severities.get("IR005") is Severity.WARNING


# ---------------------------------------------------------------------------
# Every emitted configuration lints clean.
# ---------------------------------------------------------------------------


def _valid_configurations(max_m=2):
    out = []
    for flavour in Flavour:
        for m in range(max_m + 1):
            for h in range(max_m + 1):
                try:
                    validate_levels(flavour, m, h)
                except ValueError:
                    continue
                out.append((flavour, m, h))
    return out


class TestEmittedConfigurationsLintClean:
    @pytest.fixture(scope="class")
    def facts(self):
        from repro.frontend.factgen import generate_facts
        from repro.frontend.paper_programs import FIGURE_1
        from repro.frontend.parser import parse_program

        return generate_facts(parse_program(FIGURE_1))

    @pytest.mark.parametrize(
        "flavour,m,h",
        _valid_configurations(),
        ids=lambda v: v.value if isinstance(v, Flavour) else str(v),
    )
    def test_all_emitters_lint_clean(self, facts, flavour, m, h):
        # compile_* lint internally (raising LintError on any error
        # diagnostic), so constructing the analyses is the assertion;
        # re-linting with the full pass list must also stay error-free.
        from repro.compile.emit import (
            _INPUT_RELATIONS,
            compile_context_string_analysis,
            compile_transformer_analysis,
            compile_transformer_analysis_naive,
        )

        for compiler in (
            compile_transformer_analysis,
            compile_context_string_analysis,
            compile_transformer_analysis_naive,
        ):
            analysis = compiler(facts, flavour, m, h)
            report = lint_program(
                analysis.program,
                builtins=analysis.builtins,
                edb=_INPUT_RELATIONS,
            )
            assert report.ok, report.render(Severity.ERROR)

    def test_eliminate_dead_preserves_points_to(self, facts):
        from repro.compile.emit import compile_transformer_analysis

        analysis = compile_transformer_analysis(facts, Flavour.OBJECT, 2, 1)
        baseline = compile_transformer_analysis(
            facts, Flavour.OBJECT, 2, 1
        ).run()
        optimized = analysis.run(eliminate_dead=True)
        assert optimized.pts == baseline.pts
