"""Tests for columnar kernels inside the parallel executor.

With ``kernels=True`` (the default) every shard compiles its plan's
shard-local rules to fused integer kernels and runs them over a
columnar store; exchange/broadcast/pinned rules stay on the
interpreted join path.  The contract: results identical to the
sequential engine and to a kernels-off run, the shard-safety
certificate intact (kernel-derived rows still route through the
ownership check), and the kernels actually engaged on real emitted
analyses.
"""

import pytest

from repro.datalog.engine import Engine
from repro.datalog.parallel import ParallelEngine
from repro.datalog.parser import parse_datalog

from tests.datalog.test_parallel import _GRID, compiled_for
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5


@pytest.mark.parametrize("source", [FIGURE_1, FIGURE_5], ids=["fig1", "fig5"])
@pytest.mark.parametrize("name", _GRID)
def test_kernel_shards_match_sequential(source, name):
    compiled = compiled_for(source, "ts", name)
    sequential = Engine(compiled.program, compiled.builtins).run()
    engine = ParallelEngine(
        compiled.program, compiled.builtins, shards=4, kernels=True
    )
    assert engine.run() == sequential, name
    assert engine.stats.cross_shard_probes_local == 0
    assert engine.stats.ownership_violations == 0


def test_kernels_engage_on_emitted_analysis():
    compiled = compiled_for(FIGURE_1, "ts", "2-object+H")
    engine = ParallelEngine(
        compiled.program, compiled.builtins, shards=4, kernels=True
    )
    engine.run()
    stats = engine.stats
    assert stats.kernel_rule_evaluations > 0
    assert stats.kernel_rule_evaluations <= stats.rule_evaluations
    assert stats.as_dict()["kernel_rule_evaluations"] > 0


def test_kernels_off_matches_kernels_on():
    compiled = compiled_for(FIGURE_5, "ts", "2-call+H")
    on = ParallelEngine(
        compiled.program, compiled.builtins, shards=4, kernels=True
    )
    off = ParallelEngine(
        compiled.program, compiled.builtins, shards=4, kernels=False
    )
    assert on.run() == off.run()
    assert off.stats.kernel_rule_evaluations == 0


def test_fork_backend_runs_kernels():
    compiled = compiled_for(FIGURE_1, "ts", "2-object+H")
    sequential = Engine(compiled.program, compiled.builtins).run()
    engine = ParallelEngine(
        compiled.program, compiled.builtins, shards=4,
        processes=True, kernels=True,
    )
    assert engine.run() == sequential
    assert engine.stats.backend == "fork"
    assert engine.stats.kernel_rule_evaluations > 0
    assert engine.stats.cross_shard_probes_local == 0
    assert engine.stats.ownership_violations == 0


def test_builtin_programs_stay_on_the_row_store():
    # Builtins keep the parallel engine un-interned, which disables
    # kernel mode; the run must still be correct.
    program = parse_datalog(
        """
        edge(1, 2). edge(2, 3). edge(3, 4).
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).
        big(X, Y) :- path(X, Y), lt(X, Y).
        """
    )
    sequential = Engine(program).run()
    engine = ParallelEngine(program, shards=2, kernels=True)
    assert engine.run() == sequential
    assert engine.stats.kernel_rule_evaluations == 0


def test_pure_datalog_program_uses_kernels():
    program = parse_datalog(
        """
        edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5).
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).
        """
    )
    sequential = Engine(program).run()
    engine = ParallelEngine(program, shards=2, kernels=True)
    assert engine.run() == sequential
