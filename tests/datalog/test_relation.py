"""Tests for indexed relation storage."""

import pytest

from repro.datalog.relation import Relation


class TestRelation:
    def test_add_and_membership(self):
        rel = Relation("r", 2)
        assert rel.add(("a", "b"))
        assert not rel.add(("a", "b"))  # duplicate
        assert ("a", "b") in rel
        assert len(rel) == 1

    def test_arity_checked(self):
        rel = Relation("r", 2)
        with pytest.raises(ValueError, match="arity"):
            rel.add(("a",))

    def test_lookup_builds_index_on_demand(self):
        rel = Relation("r", 3)
        rel.add_all([("a", 1, "x"), ("a", 2, "y"), ("b", 1, "z")])
        assert rel.index_count() == 0
        rows = rel.lookup((0,), ("a",))
        assert sorted(rows) == [("a", 1, "x"), ("a", 2, "y")]
        assert rel.index_count() == 1

    def test_index_maintained_incrementally(self):
        rel = Relation("r", 2)
        rel.add(("a", 1))
        assert rel.lookup((0,), ("a",)) == [("a", 1)]
        rel.add(("a", 2))
        assert sorted(rel.lookup((0,), ("a",))) == [("a", 1), ("a", 2)]

    def test_multi_column_lookup(self):
        rel = Relation("r", 3)
        rel.add_all([("a", 1, "x"), ("a", 1, "y"), ("a", 2, "z")])
        assert sorted(rel.lookup((0, 1), ("a", 1))) == [
            ("a", 1, "x"), ("a", 1, "y"),
        ]

    def test_empty_positions_scans(self):
        rel = Relation("r", 1)
        rel.add_all([("a",), ("b",)])
        assert sorted(rel.lookup((), ())) == [("a",), ("b",)]

    def test_missing_key_is_empty(self):
        rel = Relation("r", 2)
        rel.add(("a", 1))
        assert rel.lookup((0,), ("zz",)) == []

    def test_add_all_counts_new(self):
        rel = Relation("r", 1)
        assert rel.add_all([("a",), ("a",), ("b",)]) == 2

    def test_snapshot_is_a_copy(self):
        rel = Relation("r", 1)
        rel.add(("a",))
        snap = rel.snapshot()
        rel.add(("b",))
        assert snap == {("a",)}


class TestLookupPositionsNormalized:
    """Regression for the ``lookup`` positions contract: callers may
    pass positions in any order, with duplicates; the key is remapped
    alongside and permuted spellings share a single index."""

    def _rel(self):
        rel = Relation("r", 3)
        rel.add_all([("a", 1, "x"), ("a", 2, "y"), ("b", 1, "x")])
        return rel

    def test_unsorted_positions(self):
        rel = self._rel()
        assert rel.lookup((1, 0), (1, "a")) == rel.lookup((0, 1), ("a", 1))
        assert rel.index_count() == 1

    def test_duplicate_positions_deduplicated(self):
        rel = self._rel()
        assert sorted(rel.lookup((0, 0), ("b", "b"))) == [("b", 1, "x")]

    def test_conflicting_duplicates_match_nothing(self):
        rel = self._rel()
        assert rel.lookup((1, 1), (1, 2)) == []

    def test_key_positions_length_mismatch(self):
        rel = self._rel()
        with pytest.raises(ValueError, match="does not match"):
            rel.lookup((0,), ("a", 1))
