"""Tests for the columnar kernel backend (`repro.datalog.kernel`).

The acceptance criterion for the kernel compiler: the fused integer
kernels are bit-identical to the worklist solver across Figure 1 and
Figure 5, both abstractions, and the full (flavour, m, h) grid — the
same sweep the parallel executor is held to — plus engine-level
behaviour (builtins, negation, stratification, stats, strict lint).
"""

import pytest

from repro import analyze
from repro.compile.emit import (
    compile_context_string_analysis,
    compile_transformer_analysis,
)
from repro.core.config import config_by_name
from repro.datalog.ast import Literal, Var
from repro.datalog.engine import Engine
from repro.datalog.kernel import KernelEngine, evaluate_kernel, intern_program
from repro.datalog.parser import parse_datalog
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5
from repro.store import Interner

_GRID = (
    "1-call", "1-call+H", "2-call", "2-call+H",
    "1-object", "2-object+H", "1-type", "2-type+H",
)


@pytest.mark.parametrize("source", [FIGURE_1, FIGURE_5], ids=["fig1", "fig5"])
@pytest.mark.parametrize("abstraction", ["ts", "cs"])
@pytest.mark.parametrize("name", _GRID)
def test_kernel_backend_matches_worklist_solver(source, abstraction, name):
    facts = facts_from_source(source)
    config = config_by_name(
        name,
        "transformer-string" if abstraction == "ts" else "context-string",
    )
    compiler = (
        compile_transformer_analysis
        if abstraction == "ts"
        else compile_context_string_analysis
    )
    compiled = compiler(facts, config.flavour, config.m, config.h)
    solver = analyze(facts, config)
    result = compiled.run(backend="kernel")
    for relation in ("pts", "hpts", "call", "reach", "spts", "texc"):
        assert getattr(result, relation) == getattr(solver, relation), (
            abstraction, name, relation,
        )


@pytest.mark.parametrize("source", [FIGURE_1, FIGURE_5], ids=["fig1", "fig5"])
def test_kernel_engine_matches_interpreter_on_emitted_program(source):
    facts = facts_from_source(source)
    config = config_by_name("2-object+H")
    compiled = compile_transformer_analysis(
        facts, config.flavour, config.m, config.h
    )
    interpreted = Engine(compiled.program, compiled.builtins).run()
    assert evaluate_kernel(compiled.program, compiled.builtins) == interpreted


class TestEngineBehaviour:
    def test_recursion_negation_and_builtins(self):
        program = parse_datalog(
            """
            edge(1, 2). edge(2, 3). edge(3, 4). edge(1, 4).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            noloop(X, Y) :- path(X, Y), !path(Y, X).
            big(X, Y) :- path(X, Y), lt(X, Y).
            """
        )
        assert evaluate_kernel(program) == Engine(program).run()

    def test_generative_builtin_binds_fresh_values(self):
        program = parse_datalog(
            "n(1). n(2).\n"
            "next(X, Y) :- n(X), succ(X, Y).\n"
        )
        results = evaluate_kernel(program)
        assert results["next"] == {(1, 2), (2, 3)}

    def test_constants_in_heads_and_bodies(self):
        program = parse_datalog(
            "e(1, 2). e(2, 2).\n"
            "p(X, 7) :- e(X, 2).\n"
            "q(X) :- e(1, X).\n"
        )
        results = evaluate_kernel(program)
        assert results["p"] == {(1, 7), (2, 7)}
        assert results["q"] == {(2,)}

    def test_fact_rules_load(self):
        program = parse_datalog("p(1).\nq(X) :- p(X).\n")
        assert evaluate_kernel(program)["q"] == {(1,)}

    def test_stats_and_store_counters(self):
        program = parse_datalog(
            "e(1, 2). e(2, 3).\n"
            "p(X, Y) :- e(X, Y).\n"
            "p(X, Z) :- p(X, Y), p(Y, Z).\n"
        )
        engine = KernelEngine(program)
        engine.run()
        assert engine.stats.rule_evaluations > 0
        assert engine.stats.facts_derived >= 3
        assert engine.stats.seconds > 0
        described = engine.store_stats()
        assert described["p"]["rows"] == 3
        assert described["p"]["inserts"] == 3

    def test_query_decodes_and_tolerates_unknowns(self):
        program = parse_datalog("e(1).\np(X) :- e(X).\n")
        engine = KernelEngine(program)
        assert engine.query("p") == set()  # before run: no storage yet
        engine.run()
        assert engine.query("p") == {(1,)}
        assert engine.query("absent") == set()

    def test_builtin_name_overlap_rejected(self):
        program = parse_datalog("le(1, 2).\np(X, Y) :- le(X, Y).\n")
        with pytest.raises(ValueError, match="builtins"):
            KernelEngine(program)

    def test_strict_mode_lints(self):
        from repro.datalog.ast import Program
        from repro.datalog.lint import LintError

        # Passes Rule.validate() but is unsafe: negation before binding.
        program = Program()
        program.rule(
            Literal("p", (Var("X"),)),
            Literal("q", (Var("X"),), negated=True),
            Literal("r", (Var("X"),)),
        )
        program.add_facts("r", [(1,), (2,)])
        program.add_facts("q", [(1,)])
        with pytest.raises(LintError, match="DL002"):
            KernelEngine(program, strict=True)

    def test_results_hide_body_only_edb(self):
        program = parse_datalog("e(1).\np(X) :- e(X), f(X).\n")
        program.add_facts("f", {(1,)})
        results = evaluate_kernel(program)
        assert set(results) == {"e", "f", "p"}


class TestInternProgram:
    def test_constants_and_facts_are_interned(self):
        interner = Interner()
        program = parse_datalog('p(X, "c") :- e(X, "b").\n')
        program.add_facts("e", {("a", "b")})
        encoded = intern_program(program, interner)
        assert encoded.facts  # loaded facts survive
        for rows in encoded.facts.values():
            for row in rows:
                assert all(isinstance(v, int) for v in row)
        body_const = encoded.rules[0].body[0].args[1]
        assert interner.value_of(body_const.value) == "b"

    def test_interning_is_deterministic(self):
        source = 'e("x", "y").\ne("y", "z").\np(A, B) :- e(A, B).\n'
        first = intern_program(parse_datalog(source), Interner())
        second = intern_program(parse_datalog(source), Interner())
        assert first.facts == second.facts
