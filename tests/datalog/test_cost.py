"""Tests for the static cost & cardinality analysis (DL5xx).

Covers the layers bottom-up: exact relation profiles (rows, distinct
counts, minimal keys, functional dependencies), probe-match estimates,
binding-legality of candidate orders, IDB bound propagation, the
join-order planner's choices on hand-written programs, each DL501–DL504
diagnostic, the byte-stable ``repro-cost-plan/1`` document and its
self-check, and — the property the whole module rests on — that
applying a plan is a pure rewrite: bit-identical fixpoints on the
interpreting engine, the compiled backend, and the fused kernels,
including the delta-index fast paths the reordered programs exercise.
"""

import pytest

from repro.datalog.cost import (
    CostPlan,
    RelationProfile,
    _order_is_legal,
    _signatures,
    analyze_cost,
    profile_facts,
    reorder_program,
    verify_cost_plan,
)
from repro.datalog.codegen import CompiledEngine
from repro.datalog.engine import Engine
from repro.datalog.kernel import KernelEngine
from repro.datalog.parser import parse_datalog
from repro.lint.cost import check_cost, cost_plan_or_none
from repro.lint.diagnostics import Severity


def plan_of(text: str, **kwargs) -> CostPlan:
    return analyze_cost(parse_datalog(text, validate=False), **kwargs)


def codes(diagnostics):
    return sorted(d.code for d in diagnostics)


class TestRelationProfile:
    def test_matches_unbound_is_all_rows(self):
        profile = RelationProfile("r", 2, 100.0, (10.0, 50.0))
        assert profile.matches(()) == 100.0

    def test_matches_divides_by_distinct(self):
        profile = RelationProfile("r", 2, 100.0, (10.0, 50.0))
        assert profile.matches((0,)) == pytest.approx(10.0)
        assert profile.matches((1,)) == pytest.approx(2.0)

    def test_key_coverage_matches_at_most_one_row(self):
        profile = RelationProfile(
            "r", 2, 100.0, (10.0, 50.0), keys=((1,),)
        )
        assert profile.matches((1,)) == 1.0
        assert profile.matches((0, 1)) == 1.0
        assert profile.matches((0,)) == pytest.approx(10.0)

    def test_selective_iff_probe_discriminates(self):
        profile = RelationProfile("r", 2, 8.0, (1.0, 8.0))
        assert not profile.selective((0,))  # one value: every row matches
        assert profile.selective((1,))


class TestProfileFacts:
    def test_exact_rows_and_distincts(self):
        program = parse_datalog("p(x, y).", validate=False)
        program.facts["edge"] = {(1, 2), (1, 3), (2, 3)}
        profile = profile_facts(program)["edge"]
        assert profile.exact
        assert profile.rows == 3.0
        assert profile.distinct == (2.0, 2.0)

    def test_single_column_key_detected(self):
        program = parse_datalog("p(x, y).", validate=False)
        program.facts["f"] = {(1, "a"), (2, "a"), (3, "b")}
        profile = profile_facts(program)["f"]
        assert (0,) in profile.keys
        # Column 0 is a key, so the FD scan skips it; 1 -/-> 0.
        assert (1, 0) not in profile.determines

    def test_functional_dependency_detected(self):
        program = parse_datalog("p(x, y).", validate=False)
        program.facts["f"] = {
            (1, "a", "x"), (2, "a", "x"), (3, "b", "y"), (4, "b", "y"),
        }
        profile = profile_facts(program)["f"]
        assert (1, 2) in profile.determines

    def test_bodyless_constant_rules_count_as_facts(self):
        program = parse_datalog(
            """
            seed("q").
            p(X) :- seed(X).
            """
        )
        profile = profile_facts(program)["seed"]
        assert profile.rows == 1.0
        assert profile.exact


class TestOrderLegality:
    def test_negation_needs_binders_first(self):
        program = parse_datalog(
            """
            p(X) :- e(X), !q(X).
            """,
            validate=False,
        )
        body = program.rules[0].body
        signatures = _signatures(None)
        assert _order_is_legal(body, (0, 1), signatures)
        assert not _order_is_legal(body, (1, 0), signatures)

    def test_builtin_binding_discipline(self):
        program = parse_datalog(
            """
            p(X, Y) :- e(X), lt(X, Y), f(Y).
            """,
            validate=False,
        )
        body = program.rules[0].body
        signatures = _signatures(None)
        # The default lt builtin needs both sides bound: it can only
        # run after e and f have bound X and Y.
        assert _order_is_legal(body, (0, 2, 1), signatures)
        assert not _order_is_legal(body, (0, 1, 2), signatures)

    def test_unknown_builtin_pins_source_order(self):
        program = parse_datalog(
            """
            p(X, Y) :- e(X), mystery(X, Y), f(Y).
            """,
            validate=False,
        )
        program.facts["e"] = {(1,)}
        program.facts["f"] = {(2,)}
        plan = analyze_cost(program, builtins={"mystery": lambda args: ()})
        assert plan.order_of(0) == (0, 1, 2)


class TestPlannerChoices:
    def test_selective_literal_moves_first(self):
        # big is a 100-row cross against the head var; tiny pins X.
        program = parse_datalog(
            """
            p(X, Y) :- big(X, Y), tiny(X).
            """,
            validate=False,
        )
        program.facts["big"] = {(i, i % 7) for i in range(100)}
        program.facts["tiny"] = {(1,)}
        plan = analyze_cost(program)
        assert plan.order_of(0) == (1, 0)
        assert plan.reordered_count() == 1

    def test_source_order_wins_ties(self):
        program = parse_datalog(
            """
            p(X, Y) :- a(X), b(Y).
            """,
            validate=False,
        )
        program.facts["a"] = {(1,)}
        program.facts["b"] = {(2,)}
        plan = analyze_cost(program)
        assert plan.order_of(0) == (0, 1)
        assert plan.reordered_count() == 0

    def test_greedy_never_worse_than_source(self):
        # Six literals: beyond EXHAUSTIVE_LIMIT, so the greedy path
        # runs; it must not pick an order costlier than the author's.
        text = "p(A, B, C, D, E, F) :- " + ", ".join(
            f"e{i}(V{i}, V{i + 1})" for i in range(6)
        ).replace("V6", "A") + "."
        text = text.replace("V0", "A").replace("V1", "B")
        program = parse_datalog(
            """
            p(A) :- e0(A, B), e1(B, C), e2(C, D), e3(D, E), e4(E, F),
                    e5(F, A).
            """,
            validate=False,
        )
        for i in range(6):
            program.facts[f"e{i}"] = {(j, j + 1) for j in range(4)}
        plan = analyze_cost(program)
        entry = plan.rules[0]
        assert entry.cost <= entry.source_cost

    def test_recursive_literal_not_buried(self):
        # path is the recursive predicate; the planner must keep its
        # delta probe cheap rather than re-paying an EDB prefix per
        # round.  Whatever order is chosen must stay bit-identical.
        program = parse_datalog(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        program.facts["edge"] = {(i, i + 1) for i in range(30)}
        plan = analyze_cost(program)
        baseline = Engine(program).run()
        assert Engine(plan.apply()).run() == baseline


class TestDiagnostics:
    def test_dl501_cross_product(self):
        program = parse_datalog(
            """
            p(X, Y) :- a(X), b(Y).
            """,
            validate=False,
        )
        program.facts["a"] = {(i,) for i in range(5)}
        program.facts["b"] = {(i,) for i in range(5)}
        diagnostics = check_cost(program)
        assert "DL501" in codes(diagnostics)
        (diag,) = [d for d in diagnostics if d.code == "DL501"]
        assert diag.severity is Severity.WARNING
        assert diag.rule_index == 0

    def test_dl502_unselective_probe(self):
        # Column 0 of f has a single value: binding it filters nothing.
        program = parse_datalog(
            """
            p(Y) :- seed(X), f(X, Y).
            """,
            validate=False,
        )
        program.facts["seed"] = {(1,)}
        program.facts["f"] = {(1, i) for i in range(6)}
        diagnostics = check_cost(program)
        assert "DL502" in codes(diagnostics)

    def test_dl503_reorder_reported_with_order(self):
        program = parse_datalog(
            """
            p(X, Y) :- big(X, Y), tiny(X).
            """,
            validate=False,
        )
        program.facts["big"] = {(i, i % 7) for i in range(100)}
        program.facts["tiny"] = {(1,)}
        diagnostics = check_cost(program)
        (diag,) = [d for d in diagnostics if d.code == "DL503"]
        assert "[1, 0]" in diag.message

    def test_dl504_shared_prefix(self):
        program = parse_datalog(
            """
            p(X, Z) :- e(X, Y), f(Y, Z), g(Z).
            q(X, Z) :- e(X, Y), f(Y, Z), h(Z).
            """,
            validate=False,
        )
        for pred in "efgh":
            arity = 1 if pred in "gh" else 2
            program.facts[pred] = {(1,) * arity}
        diagnostics = check_cost(program)
        (diag,) = [d for d in diagnostics if d.code == "DL504"]
        assert "[0, 1]" in diag.message

    def test_clean_program_has_no_findings(self):
        program = parse_datalog(
            """
            p(X, Y) :- e(X, Y).
            """
        )
        program.facts["e"] = {(1, 2)}
        assert check_cost(program) == []

    def test_unstratifiable_program_defers_to_dl201(self):
        program = parse_datalog(
            """
            p(X) :- e(X), !q(X).
            q(X) :- e(X), !p(X).
            """,
            validate=False,
        )
        program.facts["e"] = {(1,)}
        plan, diagnostics = cost_plan_or_none(program)
        assert plan is None
        assert diagnostics == []


class TestDocument:
    def _plan(self):
        program = parse_datalog(
            """
            p(X, Y) :- big(X, Y), tiny(X).
            """,
            validate=False,
        )
        program.facts["big"] = {(i, i % 3) for i in range(20)}
        program.facts["tiny"] = {(1,)}
        return analyze_cost(program)

    def test_round_trip_self_check(self):
        document = self._plan().to_json()
        summary = verify_cost_plan(document)
        assert summary["schema"] == CostPlan.SCHEMA
        assert summary["rules"] == 1
        assert summary["reordered"] == 1

    def test_digest_is_byte_stable(self):
        assert self._plan().to_json() == self._plan().to_json()

    def test_tampered_digest_rejected(self):
        document = self._plan().to_json()
        document["body"]["reordered"] = 0
        with pytest.raises(ValueError, match="digest mismatch"):
            verify_cost_plan(document)

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="not a cost plan"):
            verify_cost_plan({"schema": "repro-shard-plan/1"})

    def test_inconsistent_counts_rejected(self):
        document = self._plan().to_json()
        document["body"]["rules"] = 7
        document["digest"] = (
            "sha256:" + __import__("hashlib").sha256(
                __import__("json").dumps(
                    document["body"], sort_keys=True,
                    separators=(",", ":"), ensure_ascii=True,
                ).encode()
            ).hexdigest()
        )
        with pytest.raises(ValueError, match="declares 7 rules"):
            verify_cost_plan(document)

    def test_render_mentions_reordered_rules(self):
        text = self._plan().render()
        assert "1 reordered" in text


class TestApplyParity:
    """A plan's rewrite is invisible to every backend."""

    def _program(self):
        program = parse_datalog(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            goal(X, Z) :- big(X, Y), path(Y, Z), tiny(Z).
            """
        )
        program.facts["edge"] = {(i, i + 1) for i in range(12)}
        program.facts["big"] = {(i % 5, i) for i in range(40)}
        program.facts["tiny"] = {(6,), (9,)}
        return program

    def test_bit_identical_on_all_backends(self):
        program = self._program()
        baseline = Engine(program).run()
        ordered = reorder_program(program)
        assert Engine(ordered).run() == baseline
        assert CompiledEngine(ordered).run() == baseline
        assert KernelEngine(ordered).run() == baseline

    def test_engine_cost_order_flag(self):
        program = self._program()
        engine = Engine(program, cost_order=True)
        assert engine.cost_ordered
        assert engine.run() == Engine(self._program()).run()

    def test_apply_preserves_rule_count_and_facts(self):
        program = self._program()
        ordered = reorder_program(program)
        assert len(ordered.rules) == len(program.rules)
        assert ordered.facts == program.facts
        for before, after in zip(program.rules, ordered.rules):
            assert before.head == after.head
            assert sorted(map(repr, before.body)) == sorted(
                map(repr, after.body)
            )


class TestDeltaIndexRegression:
    """The reordered programs put delta literals at arbitrary body
    positions; both engines must probe the delta through a hash index
    (and stay correct) rather than scanning it linearly."""

    def _program(self, delta_last: bool) -> "Program":
        body = (
            "path(X, Y), edge(Y, Z)" if not delta_last
            else "edge(Y, Z), path(X, Y)"
        )
        program = parse_datalog(
            f"""
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- {body}.
            """
        )
        program.facts["edge"] = {(i, i + 1) for i in range(40)}
        return program

    def test_engine_matches_for_either_delta_position(self):
        first = Engine(self._program(False)).run()
        last = Engine(self._program(True)).run()
        assert first == last
        assert len(first["path"]) == 40 * 41 // 2

    def test_kernel_matches_for_either_delta_position(self):
        assert (
            KernelEngine(self._program(False)).run()
            == KernelEngine(self._program(True)).run()
        )

    def test_kernel_delta_variant_builds_bucket_index(self):
        # The recursive rule's delta variant probes path with Y bound
        # (edge runs first), so the generated function must bucket the
        # delta ids instead of scanning them per outer binding.
        engine = KernelEngine(self._program(True))
        assert "_dbuckets" in engine.kernels.source
