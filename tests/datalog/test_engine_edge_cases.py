"""Edge-case tests for the Datalog engine."""

import pytest

from repro.datalog.ast import Program, Rule, atom, negated
from repro.datalog.engine import Engine, evaluate


class TestRecursionShapes:
    def test_mutual_recursion(self):
        program = Program()
        program.rule(atom("even", 0))
        program.rule(atom("even", "Y"), atom("odd", "X"), atom("succ", "X", "Y"),
                     atom("le", "Y", 10))
        program.rule(atom("odd", "Y"), atom("even", "X"), atom("succ", "X", "Y"),
                     atom("le", "Y", 10))
        result = evaluate(program)
        assert result["even"] == {(n,) for n in range(0, 11, 2)}
        assert result["odd"] == {(n,) for n in range(1, 11, 2)}

    def test_nonlinear_recursion(self):
        # path(X,Z) :- path(X,Y), path(Y,Z): both body literals IDB.
        program = Program()
        program.rule(atom("path", "X", "Y"), atom("edge", "X", "Y"))
        program.rule(
            atom("path", "X", "Z"), atom("path", "X", "Y"), atom("path", "Y", "Z")
        )
        program.add_facts("edge", [(i, i + 1) for i in range(16)])
        assert len(evaluate(program)["path"]) == 16 * 17 // 2

    def test_self_loop_edges(self):
        program = Program()
        program.rule(atom("path", "X", "Y"), atom("edge", "X", "Y"))
        program.rule(
            atom("path", "X", "Z"), atom("edge", "X", "Y"), atom("path", "Y", "Z")
        )
        program.add_facts("edge", [("a", "a")])
        assert evaluate(program)["path"] == {("a", "a")}

    def test_duplicate_rules_harmless(self):
        program = Program()
        program.rule(atom("p", "X"), atom("q", "X"))
        program.rule(atom("p", "X"), atom("q", "X"))
        program.add_facts("q", [(1,)])
        assert evaluate(program)["p"] == {(1,)}


class TestValueKinds:
    def test_tuple_valued_constants(self):
        # Packed contexts are tuples; the engine must treat them opaquely.
        program = Program()
        program.rule(atom("p", "C"), atom("q", "C"))
        program.add_facts("q", [((("a", "b"),))])
        assert evaluate(program)["p"] == {(("a", "b"),)}

    def test_mixed_types_in_one_column(self):
        program = Program()
        program.rule(atom("p", "X"), atom("q", "X"))
        program.add_facts("q", [(1,), ("one",), ((1,),)])
        assert len(evaluate(program)["p"]) == 3

    def test_zero_arity_predicates(self):
        program = Program()
        program.rule(atom("flag"))
        program.rule(atom("out", "X"), atom("flag"), atom("q", "X"))
        program.add_facts("q", [(7,)])
        assert evaluate(program)["out"] == {(7,)}


class TestCrossStratumInteraction:
    def test_negation_of_recursive_predicate(self):
        program = Program()
        program.rule(atom("reach", "a"))
        program.rule(atom("reach", "Y"), atom("reach", "X"), atom("edge", "X", "Y"))
        program.rule(
            atom("blocked", "X"), atom("node", "X"), negated("reach", "X")
        )
        program.rule(atom("island", "X"), atom("blocked", "X"), atom("edge", "X", "X"))
        program.add_facts("edge", [("a", "b"), ("z", "z")])
        program.add_facts("node", [("a",), ("b",), ("z",)])
        result = evaluate(program)
        assert result["blocked"] == {("z",)}
        assert result["island"] == {("z",)}

    def test_double_negation_chain(self):
        program = Program()
        program.rule(atom("a", "X"), atom("u", "X"), negated("b", "X"))
        program.rule(atom("b", "X"), atom("v", "X"))
        program.rule(atom("c", "X"), atom("u", "X"), negated("a", "X"))
        program.add_facts("u", [(1,), (2,)])
        program.add_facts("v", [(1,)])
        result = evaluate(program)
        assert result["a"] == {(2,)}
        assert result["c"] == {(1,)}


class TestEngineRobustness:
    def test_empty_program(self):
        assert evaluate(Program()) == {}

    def test_facts_only(self):
        program = Program()
        program.add_facts("e", [(1, 2)])
        assert evaluate(program)["e"] == {(1, 2)}

    def test_rule_with_unused_edb(self):
        program = Program()
        program.rule(atom("p", "X"), atom("q", "X"))
        program.add_facts("q", [(1,)])
        program.add_facts("unrelated", [(9,)])
        result = evaluate(program)
        assert result["p"] == {(1,)}
        assert result["unrelated"] == {(9,)}

    def test_idb_predicate_with_no_derivations(self):
        program = Program()
        program.rule(atom("p", "X"), atom("q", "X"))
        engine = Engine(program)
        engine.run()
        assert engine.query("p") == set()

    def test_rerunning_engine_is_idempotent(self):
        program = Program()
        program.rule(atom("path", "X", "Y"), atom("edge", "X", "Y"))
        program.rule(
            atom("path", "X", "Z"), atom("edge", "X", "Y"), atom("path", "Y", "Z")
        )
        program.add_facts("edge", [(1, 2), (2, 3)])
        engine = Engine(program)
        first = engine.run()["path"]
        second = engine.run()["path"]
        assert first == second
