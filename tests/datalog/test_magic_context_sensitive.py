"""Magic sets over *context-sensitive* specialized programs.

The paper's concluding future-work paragraph anticipates "synergy
between demand-driven workloads and the transformer string abstraction's
ability to represent local pointer information of a method without
enumerating all reachable contexts".  The configuration-specialized
programs are pure Datalog, so the classical magic-sets transformation
applies to the full context-sensitive analysis directly; these tests
check that a demanded variable's context-sensitive points-to facts come
back exactly, across configurations, while evaluation stays demand-
bounded.
"""

import pytest

from repro import analyze, config_by_name
from repro.compile.configurations import decode, enumerate_configurations
from repro.compile.emit import compile_transformer_analysis
from repro.core.sensitivity import Flavour
from repro.datalog.engine import Engine
from repro.datalog.magic import magic_transform
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5


def demand_points_to(compiled, var, h, m):
    """All context-sensitive pts facts for ``var`` via magic queries,
    one per transformer-string configuration."""
    answers = set()
    idb = compiled.program.idb_predicates()
    for config in enumerate_configurations(h, m):
        pred = config.predicate_name("pts")
        if pred not in idb:
            continue
        free = [None] * (1 + config.context_arity)  # H + context attrs
        magic, answer_pred = magic_transform(
            compiled.program, pred, (var, *free)
        )
        for row in Engine(magic).run().get(answer_pred, set()):
            answers.add((row[0], row[1], decode(config.tag, row[2:])))
    return answers


@pytest.mark.parametrize(
    "source,config_name,flavour,m,h,var",
    [
        (FIGURE_5, "1-call+H", Flavour.CALL_SITE, 1, 1, "T.main/x"),
        (FIGURE_5, "1-call+H", Flavour.CALL_SITE, 1, 1, "T.id/p"),
        (FIGURE_1, "1-object", Flavour.OBJECT, 1, 0, "T.main/x2"),
        (FIGURE_1, "1-call", Flavour.CALL_SITE, 1, 0, "T.main/z"),
    ],
)
def test_demand_matches_exhaustive(source, config_name, flavour, m, h, var):
    facts = facts_from_source(source)
    compiled = compile_transformer_analysis(facts, flavour, m, h)
    exhaustive = analyze(facts, config_by_name(config_name, "transformer-string"))
    expected = {
        (y, heap, a) for (y, heap, a) in exhaustive.pts if y == var
    }
    assert demand_points_to(compiled, var, h, m) == expected


def test_demand_derives_less_than_exhaustive():
    facts = facts_from_source(FIGURE_1)
    compiled = compile_transformer_analysis(facts, Flavour.OBJECT, 2, 1)

    exhaustive_engine = Engine(compiled.program, compiled.builtins)
    exhaustive_engine.run()

    magic, answer_pred = magic_transform(
        compiled.program, "pts__", ("T.main/x", None)
    )
    demand_engine = Engine(magic)
    demand_engine.run()
    assert (
        demand_engine.stats.facts_derived
        < exhaustive_engine.stats.facts_derived
    )


def test_unused_configuration_yields_empty_answers():
    facts = facts_from_source(FIGURE_5)
    compiled = compile_transformer_analysis(facts, Flavour.CALL_SITE, 1, 1)
    # T.m/h points to h1 only under the ε configuration; the xe query
    # must come back empty rather than wrong.
    magic, answer_pred = magic_transform(
        compiled.program, "pts__xe", ("T.m/h", None, None, None)
    )
    assert Engine(magic).run().get(answer_pred, set()) == set()
