"""Property test: sharded evaluation is invisible to the result.

For random stratified programs and random partition specs, the
plan-driven executor at 2/4/8 shards derives exactly the sequential
engine's facts, and the run-time certificate holds: shard-local rules
perform zero cross-shard probes and no shard ever inserts a row it
does not own.  This is the executable statement of the shard-safety
analysis' soundness claim — whatever the plan classifies as local
really is local.
"""

from hypothesis import given, note, settings
from hypothesis import strategies as st

from repro.datalog.engine import Engine
from repro.datalog.parallel import ParallelEngine
from repro.datalog.partition import PartitionSpec
from repro.datalog.stratify import StratificationError, stratify

from tests.datalog.test_engine_fuzz import random_datalog


def program_arities(program):
    arities = {}
    for pred, rows in program.facts.items():
        for row in rows:
            arities[pred] = len(row)
            break
    for rule in program.rules:
        arities[rule.head.pred] = rule.head.arity
        for lit in rule.body:
            if lit.pred != "le":
                arities.setdefault(lit.pred, lit.arity)
    return arities


@st.composite
def program_and_spec(draw):
    seed = draw(st.integers(min_value=0, max_value=100_000))
    program = random_datalog(seed)
    arities = program_arities(program)
    columns = {}
    replicated = set()
    for pred in sorted(arities):
        choice = draw(
            st.integers(min_value=-1, max_value=arities[pred] - 1)
        )
        if choice < 0:
            replicated.add(pred)
        else:
            columns[pred] = choice
    spec = PartitionSpec(
        key=f"random-{seed}", columns=columns,
        replicated=frozenset(replicated),
    )
    return program, spec


@settings(max_examples=60, deadline=None)
@given(program_and_spec(), st.sampled_from([2, 4, 8]))
def test_sharded_run_equals_sequential(pair, shards):
    program, spec = pair
    if not program.rules:
        return
    try:
        program.validate()
        stratify(program, {"le"})
    except (ValueError, StratificationError):
        return
    sequential = Engine(program).run()
    engine = ParallelEngine(program, shards=shards, spec=spec)
    note(f"spec={spec.key} columns={spec.columns}")
    assert engine.run() == sequential
    assert engine.stats.cross_shard_probes_local == 0
    assert engine.stats.ownership_violations == 0
