"""Tests for the plan-driven parallel executor.

The acceptance criterion for the shard-safety analysis: the parallel
solve at 2/4/8 shards is bit-identical to the sequential engine across
Figure 1 and Figure 5, both abstractions, call/object/type flavours and
the (m, h) grid, with the cross-shard-probe counter for shard-local
rules at zero.  The sweep here runs the in-process backend (same
sharded code path, no fork overhead); one test exercises the real
multiprocessing backend end to end.
"""

import pytest

from repro.compile.emit import (
    compile_context_string_analysis,
    compile_transformer_analysis,
)
from repro.core.config import config_by_name
from repro.datalog.engine import Engine
from repro.datalog.parallel import ParallelEngine, evaluate_parallel
from repro.datalog.parser import parse_datalog
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5

_GRID = (
    "1-call", "1-call+H", "2-call", "2-call+H",
    "1-object", "2-object+H", "1-type", "2-type+H",
)


def compiled_for(source, abstraction, name):
    facts = facts_from_source(source)
    config = config_by_name(name)
    compiler = (
        compile_transformer_analysis
        if abstraction == "ts"
        else compile_context_string_analysis
    )
    return compiler(facts, config.flavour, config.m, config.h)


@pytest.mark.parametrize("source", [FIGURE_1, FIGURE_5], ids=["fig1", "fig5"])
@pytest.mark.parametrize("abstraction", ["ts", "cs"])
@pytest.mark.parametrize("name", _GRID)
def test_parity_across_shard_counts(source, abstraction, name):
    compiled = compiled_for(source, abstraction, name)
    sequential = Engine(compiled.program, compiled.builtins).run()
    for shards in (2, 4, 8):
        engine = ParallelEngine(
            compiled.program, compiled.builtins, shards=shards
        )
        assert engine.run() == sequential, (abstraction, name, shards)
        assert engine.stats.cross_shard_probes_local == 0
        assert engine.stats.ownership_violations == 0


@pytest.mark.parametrize("key", ["variable", "heap", "method"])
def test_parity_for_every_partition_key(key):
    compiled = compiled_for(FIGURE_1, "ts", "2-object+H")
    sequential = Engine(compiled.program, compiled.builtins).run()
    engine = ParallelEngine(
        compiled.program, compiled.builtins, shards=4, key=key
    )
    assert engine.run() == sequential
    assert engine.stats.cross_shard_probes_local == 0


def test_fork_backend_parity():
    compiled = compiled_for(FIGURE_1, "ts", "2-object+H")
    sequential = Engine(compiled.program, compiled.builtins).run()
    engine = ParallelEngine(
        compiled.program, compiled.builtins, shards=4, processes=True
    )
    assert engine.run() == sequential
    assert engine.stats.backend == "fork"
    assert engine.stats.cross_shard_probes_local == 0
    assert engine.stats.ownership_violations == 0


def test_single_shard_degenerates_to_sequential():
    compiled = compiled_for(FIGURE_1, "ts", "1-call")
    sequential = Engine(compiled.program, compiled.builtins).run()
    assert evaluate_parallel(
        compiled.program, compiled.builtins, shards=1
    ) == sequential


def test_negation_and_builtins_survive_sharding():
    program = parse_datalog(
        """
        edge(1, 2). edge(2, 3). edge(3, 4). edge(1, 4).
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).
        noloop(X, Y) :- path(X, Y), !path(Y, X).
        big(X, Y) :- path(X, Y), lt(X, Y).
        """
    )
    sequential = Engine(program).run()
    for shards in (2, 4):
        assert evaluate_parallel(program, shards=shards) == sequential


def test_stats_expose_communication_volume():
    compiled = compiled_for(FIGURE_1, "ts", "2-object+H")
    engine = ParallelEngine(compiled.program, compiled.builtins, shards=4)
    engine.run()
    stats = engine.stats.as_dict()
    assert stats["shards"] == 4
    assert stats["rounds"] > 0
    assert len(stats["per_shard_derived"]) == 4
    assert stats["skew"] >= 1.0
    assert stats["broadcast_volume"] == stats["broadcast_rows"] * 3


def test_pinned_rules_split_across_shards():
    # Entirely replicated EDB: every rule is pinned, yet the union of
    # the shards' derivations must still equal the sequential result.
    program = parse_datalog(
        """
        e(1, 2). e(2, 3).
        p(X, Y) :- e(X, Y).
        q(X, Y) :- e(Y, X).
        """
    )
    from repro.datalog.partition import PartitionSpec

    spec = PartitionSpec(
        key="test", columns={}, replicated=frozenset(("e", "p", "q"))
    )
    sequential = Engine(program).run()
    assert evaluate_parallel(program, shards=3, spec=spec) == sequential
