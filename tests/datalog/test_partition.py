"""Tests for the shard-safety analysis (partition/communication plans).

Covers the classification rules on small hand-written programs —
shard-local, exchange (head repartition), broadcast (replica /
replicated head / pinned), the DL4xx diagnostic codes, and witness
positions — plus the full sweep the acceptance criterion asks for:
every rule of every emitted configuration over Figure 1 and Figure 5,
both abstractions, call/object/type flavours, and the (m, h) grid is
classified, and every non-local classification carries a witness.
"""

import pytest

from repro.compile.emit import (
    compile_context_string_analysis,
    compile_transformer_analysis,
)
from repro.datalog.parser import parse_datalog
from repro.datalog.partition import (
    DEFAULT_KEY,
    PartitionSpec,
    ShardPlan,
    base_predicate,
    build_shard_plan,
    pointer_partition_spec,
    stable_shard_of,
)
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5


def plan_of(text: str, columns, replicated=(), key="test") -> ShardPlan:
    program = parse_datalog(text, validate=False)
    spec = PartitionSpec(
        key=key, columns=dict(columns), replicated=frozenset(replicated)
    )
    return build_shard_plan(program, spec)


class TestStableShardOf:
    def test_ints_hash_by_value(self):
        assert stable_shard_of(10, 4) == 2
        assert stable_shard_of(7, 4) == 3

    def test_strings_are_deterministic(self):
        first = stable_shard_of("T.main/x", 8)
        assert 0 <= first < 8
        assert stable_shard_of("T.main/x", 8) == first

    def test_bool_not_treated_as_int(self):
        # bools repr-hash: the partition must not collapse True to 1.
        assert stable_shard_of(True, 2) == stable_shard_of(True, 2)

    def test_every_value_lands_in_range(self):
        for value in ("a", "b", 3, -17, ("t", 1), None):
            for shards in (1, 2, 4, 8):
                assert 0 <= stable_shard_of(value, shards) < shards


class TestBasePredicate:
    def test_strips_specialization_tag(self):
        assert base_predicate("pts__xwe") == "pts"
        assert base_predicate("call__") == "call"

    def test_strips_reach_subscript(self):
        assert base_predicate("reach_2") == "reach"

    def test_plain_name_unchanged(self):
        assert base_predicate("assign") == "assign"


class TestClassification:
    def test_local_rule(self):
        plan = plan_of(
            "p(X, Y) :- e(X, Z), f(X, Y).",
            {"p": 0, "e": 0, "f": 0},
        )
        [rule] = plan.rules
        assert rule.kind == "local"
        assert rule.witnesses == ()

    def test_exchange_rule_gets_dl401(self):
        # Head partitioned on Y, but the join anchor is X.
        plan = plan_of(
            "p(X, Y) :- e(X, Y).",
            {"p": 1, "e": 0},
        )
        [rule] = plan.rules
        assert rule.kind == "exchange"
        assert [w.code for w in rule.witnesses] == ["DL401"]

    def test_copartition_violation_forces_replica(self):
        # f is probed on Y, not the anchor X: f gains a replica copy
        # but STAYS partitioned for every other rule.
        plan = plan_of(
            "p(X, Y) :- e(X, Y), f(Y, Z).\nq(A, B) :- f(A, B).",
            {"p": 0, "e": 0, "f": 0, "q": 0},
        )
        first, second = plan.rules
        assert first.kind == "broadcast"
        assert "DL402" in [w.code for w in first.witnesses]
        assert "f" in plan.replicas
        assert "f" not in plan.replicated
        assert second.kind == "local"  # the replica did not cascade

    def test_recursive_replica_warns_dl403(self):
        plan = plan_of(
            "p(X, Y) :- e(X, Y).\np(X, Z) :- e(X, Y), p(Y, Z).",
            {"p": 0, "e": 0},
        )
        recursive = plan.rules[1]
        assert recursive.kind == "broadcast"
        assert "DL403" in [w.code for w in recursive.witnesses]

    def test_unanchored_rule_pinned_dl404(self):
        plan = plan_of(
            "p(X) :- e(X).",
            {"p": 0},  # e is unmapped -> replicated; rule unanchored
            replicated=("e",),
        )
        [rule] = plan.rules
        assert rule.pinned
        assert "DL404" in [w.code for w in rule.witnesses]

    def test_negation_on_non_anchor_column_dl405(self):
        plan = plan_of(
            "p(X, Y) :- e(X, Y), !f(Y).",
            {"p": 0, "e": 0, "f": 0},
        )
        [rule] = plan.rules
        codes = [w.code for w in rule.witnesses]
        assert "DL405" in codes

    def test_every_rule_is_classified(self):
        plan = plan_of(
            "p(X, Y) :- e(X, Y).\nq(Y) :- p(X, Y).\nr(X) :- e(X, X).",
            {"p": 0, "e": 0, "q": 0, "r": 0},
        )
        counts = plan.counts()
        assert sum(counts.values()) == len(plan.rules) == 3


class TestWitnesses:
    def test_witness_carries_rule_position(self):
        program = parse_datalog(
            "p(X, Y) :- e(X, Y).", validate=False
        )
        spec = PartitionSpec(key="test", columns={"p": 1, "e": 0})
        plan = build_shard_plan(program, spec)
        [rule] = plan.rules
        [witness] = rule.witnesses
        assert witness.pos is not None
        assert witness.pos.line == 1

    def test_witness_json_shape(self):
        plan = plan_of("p(X, Y) :- e(X, Y).", {"p": 1, "e": 0})
        data = plan.rules[0].witnesses[0].to_json()
        assert data["code"] == "DL401"
        assert data["rule"] == 0
        assert data["line"] == 1
        assert data["column"] == 1

    def test_plan_json_is_self_describing(self):
        plan = plan_of("p(X, Y) :- e(X, Y).", {"p": 1, "e": 0})
        data = plan.to_json()
        assert data["schema"] == "repro-shard-plan/1"
        assert data["counts"]["exchange"] == 1
        assert len(data["strata"]) == 1

    def test_diagnostics_match_witnesses(self):
        plan = plan_of(
            "p(X, Y) :- e(X, Y).\np(X, Y) :- p(Y, X).",
            {"p": 0, "e": 0},
        )
        assert len(plan.diagnostics) == plan.witness_count()
        for diagnostic in plan.diagnostics:
            assert diagnostic.code.startswith("DL4")


class TestPointerSpec:
    def test_known_keys(self):
        program = parse_datalog(
            "pts(V, H) :- assign_new(V, H, M).", validate=False
        )
        for key in ("variable", "heap", "method"):
            spec = pointer_partition_spec(program, key)
            assert spec.key == key

    def test_unknown_key_rejected(self):
        program = parse_datalog("p(X) :- p(X).", validate=False)
        with pytest.raises(ValueError):
            pointer_partition_spec(program, "bogus")

    def test_default_key_is_heap(self):
        assert DEFAULT_KEY == "heap"

    def test_out_of_arity_column_becomes_replicated(self):
        # 'pts' maps heap -> column 1; a unary pts cannot carry it.
        program = parse_datalog("pts(V) :- pts(V).", validate=False)
        spec = pointer_partition_spec(program, "heap")
        assert "pts" in spec.replicated


# The acceptance sweep: every emitted configuration is 100% classified
# and every non-local rule carries at least one witness.
_GRID = (
    "1-call", "1-call+H", "2-call", "2-call+H",
    "1-object", "2-object+H", "1-type", "2-type+H",
)


@pytest.mark.parametrize("source", [FIGURE_1, FIGURE_5], ids=["fig1", "fig5"])
@pytest.mark.parametrize("abstraction", ["ts", "cs"])
@pytest.mark.parametrize("name", _GRID)
@pytest.mark.parametrize("key", ["variable", "heap", "method"])
def test_full_classification_sweep(source, abstraction, name, key):
    from repro.core.config import config_by_name

    facts = facts_from_source(source)
    config = config_by_name(name)
    compiler = (
        compile_transformer_analysis
        if abstraction == "ts"
        else compile_context_string_analysis
    )
    compiled = compiler(facts, config.flavour, config.m, config.h)
    spec = pointer_partition_spec(compiled.program, key)
    plan = build_shard_plan(compiled.program, spec, compiled.builtins)
    counts = plan.counts()
    assert sum(counts.values()) == len(plan.rules) == len(
        compiled.program.rules
    )
    for rule in plan.rules:
        if rule.kind != "local" and not rule.is_fact:
            assert rule.witnesses, (name, abstraction, key, rule.rule_index)
