"""Differential fuzzing of the two Datalog engines.

Random safe positive programs (with optional stratified negation tails
and comparison builtins) are evaluated by the interpreting engine and
the compiling back-end; the results must be identical.  This guards the
code generator against the long tail of rule shapes — repeated
variables, constants in heads and bodies, cross-products, self-joins —
that hand-written tests undersample.
"""

import random
from typing import List

import pytest

from repro.datalog.ast import Const, Literal, Program, Rule, Var
from repro.datalog.codegen import CompiledEngine
from repro.datalog.engine import Engine


def random_datalog(seed: int) -> Program:
    rng = random.Random(seed)
    program = Program()

    n_edb = rng.randint(1, 3)
    edb = []
    for k in range(n_edb):
        arity = rng.randint(1, 3)
        name = f"e{k}"
        edb.append((name, arity))
        rows = set()
        for _ in range(rng.randint(2, 10)):
            rows.add(tuple(rng.randint(0, 4) for _ in range(arity)))
        program.add_facts(name, rows)

    idb: List = []
    n_idb = rng.randint(1, 4)
    for k in range(n_idb):
        arity = rng.randint(1, 3)
        idb.append((f"p{k}", arity))

    def random_literal(pool, bound_vars, allow_fresh=True):
        name, arity = rng.choice(pool)
        args = []
        for _ in range(arity):
            roll = rng.random()
            if roll < 0.15:
                args.append(Const(rng.randint(0, 4)))
            elif bound_vars and (roll < 0.7 or not allow_fresh):
                args.append(rng.choice(bound_vars))
            else:
                var = Var(f"V{len(bound_vars)}{rng.randint(0, 9)}")
                bound_vars.append(var)
                args.append(var)
        return Literal(name, tuple(args))

    for (head_name, head_arity) in idb:
        for _ in range(rng.randint(1, 3)):
            bound_vars: List[Var] = []
            body = []
            # Positive body: EDB relations plus possibly earlier IDB
            # relations (recursion included via self-reference).
            pool = list(edb) + [p for p in idb]
            for _ in range(rng.randint(1, 3)):
                body.append(random_literal(pool, bound_vars))
            if bound_vars and rng.random() < 0.3:
                left = rng.choice(bound_vars)
                right = (
                    rng.choice(bound_vars)
                    if rng.random() < 0.5
                    else Const(rng.randint(0, 4))
                )
                body.append(Literal("le", (left, right)))
            head_args = tuple(
                rng.choice(bound_vars) if bound_vars and rng.random() < 0.85
                else Const(rng.randint(0, 4))
                for _ in range(head_arity)
            )
            rule = Rule(Literal(head_name, head_args), tuple(body))
            try:
                rule.validate()
            except ValueError:
                continue
            program.rules.append(rule)

    # A stratified negation consumer over the first IDB predicate.
    if idb and rng.random() < 0.5:
        name, arity = idb[0]
        edb_name, edb_arity = edb[0]
        if arity <= edb_arity:
            variables = tuple(Var(f"N{i}") for i in range(edb_arity))
            program.rules.append(
                Rule(
                    Literal("neg0", variables[:arity]),
                    (
                        Literal(edb_name, variables),
                        Literal(name, variables[:arity], negated=True),
                    ),
                )
            )
    return program


@pytest.mark.parametrize("seed", range(40))
def test_engines_agree(seed):
    program = random_datalog(seed)
    if not program.rules:
        return
    try:
        program.validate()
    except ValueError:
        return
    interpreted = Engine(program).run()
    compiled = CompiledEngine(program).run()
    assert compiled == interpreted


def test_fuzz_generates_recursion_somewhere():
    recursive = 0
    for seed in range(40):
        program = random_datalog(seed)
        heads = {r.head.pred for r in program.rules}
        for rule in program.rules:
            if any(lit.pred in heads for lit in rule.body):
                recursive += 1
                break
    assert recursive > 5
