"""Property tests: the kernel backend is invisible to the result.

Two layers of the same claim.  At the Datalog layer, random safe
programs (recursion, constants, repeated variables, comparison
builtins, stratified negation) evaluate bit-identically on the fused
columnar kernels, the interpreting engine, and the compiled tuple-row
backend.  At the analysis layer, random Java-subset programs under
randomly sampled context-sensitivity configurations produce the same
points-to relations from the kernel backend, the generic engine, and
the worklist solver — the executable statement of the acceptance
criterion "bit-identical across backends".
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import analyze
from repro.bench.fuzz import random_program
from repro.compile.emit import compile_transformer_analysis
from repro.core.config import config_by_name
from repro.datalog.codegen import CompiledEngine
from repro.datalog.engine import Engine
from repro.datalog.kernel import evaluate_kernel
from repro.frontend.factgen import generate_facts

from tests.datalog.test_engine_fuzz import random_datalog

_CONFIGS = (
    "insensitive", "1-call", "1-call+H", "2-call+H",
    "1-object", "2-object+H", "2-type+H",
)


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_kernel_matches_both_engines_on_random_datalog(seed):
    program = random_datalog(seed)
    if not program.rules:
        return
    try:
        program.validate()
    except ValueError:
        return
    interpreted = Engine(program).run()
    assert evaluate_kernel(program) == interpreted
    assert CompiledEngine(program).run() == interpreted


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=1_000),
    st.sampled_from(_CONFIGS),
)
def test_kernel_backend_matches_solver_on_random_programs(seed, name):
    facts = generate_facts(random_program(seed, size=3))
    config = config_by_name(name)
    compiled = compile_transformer_analysis(
        facts, config.flavour, config.m, config.h
    )
    solver = analyze(facts, config)
    kernel = compiled.run(backend="kernel")
    engine = compiled.run(backend="interpreted")
    for relation in ("pts", "hpts", "call", "reach", "spts", "texc"):
        assert getattr(kernel, relation) == getattr(solver, relation), (
            seed, name, relation,
        )
        assert getattr(kernel, relation) == getattr(engine, relation), (
            seed, name, relation,
        )
