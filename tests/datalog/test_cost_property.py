"""Property tests: cost-chosen join orders are invisible to results.

Random safe Datalog programs (recursion, constants, repeated
variables, comparison builtins, stratified negation) are planned by
the DL5xx cost analyzer and the reordered program is evaluated on the
interpreting engine, the compiled backend, and the fused kernels —
every fixpoint must be bit-identical to the source-order program.  A
second property pins the safety claim DL503 makes: a reorder never
introduces a DL001–DL004 safety error, because every chosen order is
legal under the same binding discipline the safety pass checks.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.codegen import CompiledEngine
from repro.datalog.cost import analyze_cost
from repro.datalog.engine import Engine
from repro.datalog.kernel import evaluate_kernel
from repro.datalog.stratify import StratificationError
from repro.lint.passes import lint_program

from tests.datalog.test_engine_fuzz import random_datalog

SAFETY_CODES = {"DL001", "DL002", "DL003", "DL004"}


def _planned(seed):
    """(program, plan) for a valid random program, else None."""
    program = random_datalog(seed)
    if not program.rules:
        return None
    try:
        program.validate()
        plan = analyze_cost(program)
    except (ValueError, StratificationError):
        return None
    return program, plan


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_cost_order_bit_identical_on_every_backend(seed):
    planned = _planned(seed)
    if planned is None:
        return
    program, plan = planned
    ordered = plan.apply()
    baseline = Engine(program).run()
    assert Engine(ordered).run() == baseline, seed
    assert CompiledEngine(ordered).run() == baseline, seed
    assert evaluate_kernel(ordered) == baseline, seed


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_reorders_preserve_safety(seed):
    planned = _planned(seed)
    if planned is None:
        return
    program, plan = planned
    before = {
        d.code for d in lint_program(program).diagnostics
        if d.code in SAFETY_CODES
    }
    after = {
        d.code for d in lint_program(plan.apply()).diagnostics
        if d.code in SAFETY_CODES
    }
    # A legal permutation can only remove binding-order complaints
    # (e.g. a DL002 suggestion the reorder implements), never add one.
    assert after <= before, seed


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_engine_cost_order_flag_matches_plain_run(seed):
    program = random_datalog(seed)
    if not program.rules:
        return
    try:
        program.validate()
        baseline = Engine(program).run()
    except (ValueError, StratificationError):
        return
    assert Engine(program, cost_order=True).run() == baseline, seed
