"""Tests for the magic-sets transformation (experiment E10)."""

import pytest

from repro.datalog.ast import Program, atom, negated
from repro.datalog.engine import evaluate
from repro.datalog.magic import MagicSetError, magic_transform


def tc_program(edges):
    program = Program()
    program.rule(atom("path", "X", "Y"), atom("edge", "X", "Y"))
    program.rule(
        atom("path", "X", "Z"), atom("edge", "X", "Y"), atom("path", "Y", "Z")
    )
    program.add_facts("edge", edges)
    return program


CHAIN = [(i, i + 1) for i in range(20)] + [(100 + i, 101 + i) for i in range(20)]


class TestMagicTransform:
    def test_bound_free_query_answers_match(self):
        program = tc_program(CHAIN)
        exhaustive = {t for t in evaluate(program)["path"] if t[0] == 0}
        magic, query_pred = magic_transform(program, "path", (0, None))
        answers = evaluate(magic).get(query_pred, set())
        assert answers == exhaustive

    def test_demand_computes_less(self):
        program = tc_program(CHAIN)
        full = evaluate(tc_program(CHAIN))["path"]
        magic, query_pred = magic_transform(program, "path", (0, None))
        result = evaluate(magic)
        computed = set()
        for pred, rows in result.items():
            if pred.startswith("path__"):
                computed |= rows
        # Only the component containing node 0 is explored.
        assert computed < full
        assert all(t[0] < 100 for t in computed)

    def test_bound_bound_query(self):
        program = tc_program(CHAIN)
        magic, query_pred = magic_transform(program, "path", (0, 5))
        assert (0, 5) in evaluate(magic).get(query_pred, set())
        magic2, query_pred2 = magic_transform(program, "path", (0, 105))
        assert evaluate(magic2).get(query_pred2, set()) == set()

    def test_free_free_query_equals_exhaustive(self):
        program = tc_program(CHAIN[:10])
        exhaustive = evaluate(tc_program(CHAIN[:10]))["path"]
        magic, query_pred = magic_transform(program, "path", (None, None))
        assert evaluate(magic).get(query_pred, set()) == exhaustive

    def test_same_generation_bound_query(self):
        program = Program()
        program.rule(atom("sg", "X", "X"), atom("person", "X"))
        program.rule(
            atom("sg", "X", "Y"),
            atom("parent", "X", "XP"),
            atom("sg", "XP", "YP"),
            atom("parent", "Y", "YP"),
        )
        program.add_facts("person", [("a",), ("c1",), ("c2",), ("z",)])
        program.add_facts("parent", [("c1", "a"), ("c2", "a")])
        exhaustive = {
            t for t in evaluate(program)["sg"] if t[0] == "c1"
        }
        magic, query_pred = magic_transform(program, "sg", ("c1", None))
        assert evaluate(magic).get(query_pred, set()) == exhaustive

    def test_non_idb_query_rejected(self):
        with pytest.raises(MagicSetError, match="IDB"):
            magic_transform(tc_program(CHAIN), "edge", (0, None))

    def test_negation_rejected(self):
        program = Program()
        program.rule(atom("p", "X"), atom("e", "X"), negated("q", "X"))
        program.rule(atom("q", "X"), atom("f", "X"))
        with pytest.raises(MagicSetError, match="negation"):
            magic_transform(program, "p", (None,))
