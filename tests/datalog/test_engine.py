"""Tests for the semi-naive Datalog engine: classic programs, negation,
builtins, statistics."""

import pytest

from repro.datalog.ast import Program, atom, negated
from repro.datalog.builtins import BuiltinBindingError, function_builtin
from repro.datalog.engine import Engine, evaluate
from repro.datalog.stratify import StratificationError


def chain_edges(n):
    return [(i, i + 1) for i in range(n)]


class TestTransitiveClosure:
    def program(self, edges):
        program = Program()
        program.rule(atom("path", "X", "Y"), atom("edge", "X", "Y"))
        program.rule(
            atom("path", "X", "Z"), atom("edge", "X", "Y"), atom("path", "Y", "Z")
        )
        program.add_facts("edge", edges)
        return program

    def test_chain(self):
        result = evaluate(self.program(chain_edges(5)))
        assert len(result["path"]) == 15  # 5+4+3+2+1

    def test_cycle(self):
        result = evaluate(self.program([("a", "b"), ("b", "c"), ("c", "a")]))
        assert len(result["path"]) == 9  # complete relation on 3 nodes

    def test_right_recursive_variant_agrees(self):
        left = evaluate(self.program(chain_edges(8)))["path"]
        program = Program()
        program.rule(atom("path", "X", "Y"), atom("edge", "X", "Y"))
        program.rule(
            atom("path", "X", "Z"), atom("path", "X", "Y"), atom("edge", "Y", "Z")
        )
        program.add_facts("edge", chain_edges(8))
        right = evaluate(program)["path"]
        assert left == right

    def test_empty_edb(self):
        result = evaluate(self.program([]))
        assert result.get("path", set()) == set()


class TestSameGeneration:
    def test_same_generation(self):
        program = Program()
        program.rule(atom("sg", "X", "X"), atom("person", "X"))
        program.rule(
            atom("sg", "X", "Y"),
            atom("parent", "X", "XP"),
            atom("sg", "XP", "YP"),
            atom("parent", "Y", "YP"),
        )
        program.add_facts("person", [("a",), ("b",), ("c1",), ("c2",), ("d",)])
        program.add_facts(
            "parent",
            [("c1", "a"), ("c2", "a"), ("d", "c1")],
        )
        result = evaluate(program)
        assert ("c1", "c2") in result["sg"]
        assert ("c2", "c1") in result["sg"]
        assert ("d", "c1") not in result["sg"]


class TestConstantsAndRepeatedVars:
    def test_constant_in_body_filters(self):
        program = Program()
        program.rule(atom("from_a", "Y"), atom("edge", "a", "Y"))
        program.add_facts("edge", [("a", "b"), ("c", "d")])
        assert evaluate(program)["from_a"] == {("b",)}

    def test_constant_in_head(self):
        program = Program()
        program.rule(atom("tagged", "x", "Y"), atom("edge", "Y", "Y"))
        program.add_facts("edge", [("b", "b"), ("a", "c")])
        assert evaluate(program)["tagged"] == {("x", "b")}

    def test_repeated_variable_selects_diagonal(self):
        program = Program()
        program.rule(atom("loop", "X"), atom("edge", "X", "X"))
        program.add_facts("edge", [("a", "a"), ("a", "b"), ("b", "b")])
        assert evaluate(program)["loop"] == {("a",), ("b",)}

    def test_facts_as_rules(self):
        program = Program()
        program.rule(atom("edge", "a", "b"))
        program.rule(atom("path", "X", "Y"), atom("edge", "X", "Y"))
        assert evaluate(program)["path"] == {("a", "b")}


class TestNegation:
    def test_stratified_negation(self):
        program = Program()
        program.rule(atom("node", "X"), atom("edge", "X", "_A"))
        program.rule(atom("node", "Y"), atom("edge", "_B", "Y"))
        program.rule(atom("reach", "a"))
        program.rule(
            atom("reach", "Y"), atom("reach", "X"), atom("edge", "X", "Y")
        )
        program.rule(
            atom("unreachable", "X"), atom("node", "X"), negated("reach", "X")
        )
        program.add_facts("edge", [("a", "b"), ("b", "c"), ("d", "e")])
        result = evaluate(program)
        assert result["unreachable"] == {("d",), ("e",)}

    def test_unstratifiable_rejected(self):
        program = Program()
        program.rule(atom("p", "X"), atom("n", "X"), negated("q", "X"))
        program.rule(atom("q", "X"), atom("n", "X"), negated("p", "X"))
        program.add_facts("n", [("a",)])
        with pytest.raises(StratificationError):
            Engine(program).run()

    def test_negation_on_edb(self):
        program = Program()
        program.rule(
            atom("missing", "X"), atom("candidate", "X"), negated("present", "X")
        )
        program.add_facts("candidate", [("a",), ("b",)])
        program.add_facts("present", [("a",)])
        assert evaluate(program)["missing"] == {("b",)}


class TestBuiltins:
    def test_comparison(self):
        program = Program()
        program.rule(
            atom("big", "X"), atom("n", "X"), atom("gt", "X", 2)
        )
        program.add_facts("n", [(1,), (2,), (3,), (4,)])
        assert evaluate(program)["big"] == {(3,), (4,)}

    def test_neq_filters_pairs(self):
        program = Program()
        program.rule(
            atom("distinct", "X", "Y"),
            atom("n", "X"),
            atom("n", "Y"),
            atom("neq", "X", "Y"),
        )
        program.add_facts("n", [(1,), (2,)])
        assert evaluate(program)["distinct"] == {(1, 2), (2, 1)}

    def test_succ_generates(self):
        program = Program()
        program.rule(atom("next", "X", "Y"), atom("n", "X"), atom("succ", "X", "Y"))
        program.add_facts("n", [(1,), (5,)])
        assert evaluate(program)["next"] == {(1, 2), (5, 6)}

    def test_function_builtin(self):
        double = function_builtin("double", lambda x: (2 * x,), out_positions=(1,))
        program = Program()
        program.rule(atom("d", "X", "Y"), atom("n", "X"), atom("double", "X", "Y"))
        program.add_facts("n", [(3,), (4,)])
        result = evaluate(program, builtins={"double": double})
        assert result["d"] == {(3, 6), (4, 8)}

    def test_function_builtin_failure_is_no_match(self):
        half = function_builtin(
            "half", lambda x: (x // 2,) if x % 2 == 0 else None, out_positions=(1,)
        )
        program = Program()
        program.rule(atom("h", "X", "Y"), atom("n", "X"), atom("half", "X", "Y"))
        program.add_facts("n", [(4,), (5,)])
        result = evaluate(program, builtins={"half": half})
        assert result["h"] == {(4, 2)}

    def test_function_builtin_checks_bound_output(self):
        double = function_builtin("double", lambda x: (2 * x,), out_positions=(1,))
        program = Program()
        program.rule(atom("ok", "X"), atom("pair", "X", "Y"), atom("double", "X", "Y"))
        program.add_facts("pair", [(2, 4), (3, 7)])
        result = evaluate(program, builtins={"double": double})
        assert result["ok"] == {(2,)}

    def test_unbound_comparison_raises(self):
        program = Program()
        program.rule(atom("bad", "X"), atom("gt", "X", 2), atom("n", "X"))
        program.add_facts("n", [(3,)])
        with pytest.raises(BuiltinBindingError):
            evaluate(program)

    def test_builtin_name_collision_rejected(self):
        program = Program()
        program.rule(atom("eq", "X", "X"), atom("n", "X"))
        program.add_facts("n", [(1,)])
        with pytest.raises(ValueError, match="builtins"):
            Engine(program)


class TestEngineMechanics:
    def test_stats(self):
        program = Program()
        program.rule(atom("path", "X", "Y"), atom("edge", "X", "Y"))
        program.rule(
            atom("path", "X", "Z"), atom("edge", "X", "Y"), atom("path", "Y", "Z")
        )
        program.add_facts("edge", chain_edges(10))
        engine = Engine(program)
        engine.run()
        assert engine.stats.facts_derived == 55
        assert engine.stats.rounds >= 8
        assert engine.stats.seconds > 0

    def test_query_accessor(self):
        program = Program()
        program.rule(atom("p", "X"), atom("q", "X"))
        program.add_facts("q", [(1,)])
        engine = Engine(program)
        engine.run()
        assert engine.query("p") == {(1,)}
        assert engine.query("absent") == set()

    def test_multi_strata_pipeline(self):
        # Three dependent strata through two negations.
        program = Program()
        program.rule(atom("a", "X"), atom("base", "X"))
        program.rule(atom("b", "X"), atom("base", "X"), negated("a", "X"))
        program.rule(atom("c", "X"), atom("universe", "X"), negated("b", "X"))
        program.add_facts("base", [(1,)])
        program.add_facts("universe", [(1,), (2,)])
        result = evaluate(program)
        assert result.get("b", set()) == set()
        assert result["c"] == {(1,), (2,)}
