"""Tests for the Datalog text syntax (parse and pretty-print)."""

import pytest

from repro.datalog.ast import Const, Var, atom
from repro.datalog.engine import evaluate
from repro.datalog.parser import (
    DatalogSyntaxError,
    format_program,
    format_rule,
    parse_datalog,
)

TC = """
% transitive closure
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
edge("a", "b").
edge("b", "c").
"""


class TestParsing:
    def test_rules_and_facts(self):
        program = parse_datalog(TC)
        assert len(program.rules) == 4
        assert evaluate(program)["path"] == {
            ("a", "b"), ("b", "c"), ("a", "c"),
        }

    def test_variable_vs_constant_convention(self):
        program = parse_datalog("p(X, y, 3) :- q(X).")
        head = program.rules[0].head
        assert head.args == (Var("X"), Const("y"), Const(3))

    def test_anonymous_variables_are_fresh(self):
        program = parse_datalog("p(X) :- q(X, _, _).")
        body = program.rules[0].body[0]
        assert body.args[1] != body.args[2]

    def test_negation(self):
        program = parse_datalog("p(X) :- q(X), !r(X).")
        assert program.rules[0].body[1].negated

    def test_comments_both_styles(self):
        program = parse_datalog("% one\n// two\np(1).\n")
        assert len(program.rules) == 1

    def test_negative_numbers(self):
        program = parse_datalog("p(-3).")
        assert program.rules[0].head.args[0] == Const(-3)

    def test_string_escapes(self):
        program = parse_datalog('p("a\\"b").')
        assert program.rules[0].head.args[0] == Const('a"b')

    def test_zero_arity(self):
        program = parse_datalog("go. p(1) :- go.")
        assert evaluate(program)["p"] == {(1,)}

    def test_unsafe_rule_rejected(self):
        with pytest.raises(ValueError, match="unsafe"):
            parse_datalog("p(X, Y) :- q(X).")

    def test_syntax_errors(self):
        with pytest.raises(DatalogSyntaxError):
            parse_datalog("p(X) :- q(X)")  # missing period
        with pytest.raises(DatalogSyntaxError):
            parse_datalog("p(X) q(X).")
        with pytest.raises(DatalogSyntaxError):
            parse_datalog("p(@).")
        with pytest.raises(DatalogSyntaxError):
            parse_datalog("!p(1).")


class TestFormatting:
    def test_format_rule_roundtrip(self):
        source = 'path(X, Z) :- edge(X, Y), path(Y, Z).'
        rule = parse_datalog(source).rules[0]
        assert format_rule(rule) == source

    def test_format_constants(self):
        rule = parse_datalog('p("Hello World", lower, 7).').rules[0]
        assert format_rule(rule) == 'p("Hello World", lower, 7).'

    def test_program_roundtrip_evaluates_identically(self):
        program = parse_datalog(TC)
        reparsed = parse_datalog(format_program(program))
        assert evaluate(program) == evaluate(reparsed)

    def test_negation_roundtrip(self):
        source = "p(X) :- q(X), !r(X)."
        rule = parse_datalog(source).rules[0]
        assert format_rule(rule) == source
