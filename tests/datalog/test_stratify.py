"""Tests for program stratification."""

import pytest

from repro.datalog.ast import Program, atom, negated
from repro.datalog.stratify import StratificationError, stratify


def stratum_of(strata, pred):
    for index, stratum in enumerate(strata):
        if pred in stratum:
            return index
    raise AssertionError(f"{pred} not in any stratum")


class TestStratify:
    def test_single_stratum_positive_program(self):
        program = Program()
        program.rule(atom("p", "X"), atom("e", "X"))
        program.rule(atom("q", "X"), atom("p", "X"))
        program.rule(atom("p", "X"), atom("q", "X"))
        strata = stratify(program)
        assert len(strata) == 1
        assert strata[0] == {"p", "q"}

    def test_negation_forces_order(self):
        program = Program()
        program.rule(atom("p", "X"), atom("e", "X"))
        program.rule(atom("q", "X"), atom("e", "X"), negated("p", "X"))
        strata = stratify(program)
        assert stratum_of(strata, "p") < stratum_of(strata, "q")

    def test_edb_not_in_strata(self):
        program = Program()
        program.rule(atom("p", "X"), atom("e", "X"))
        strata = stratify(program)
        assert all("e" not in s for s in strata)

    def test_recursion_through_negation_rejected(self):
        program = Program()
        program.rule(atom("p", "X"), atom("e", "X"), negated("q", "X"))
        program.rule(atom("q", "X"), atom("e", "X"), negated("p", "X"))
        with pytest.raises(StratificationError):
            stratify(program)

    def test_self_negation_rejected(self):
        program = Program()
        program.rule(atom("p", "X"), atom("e", "X"), negated("p", "X"))
        with pytest.raises(StratificationError):
            stratify(program)

    def test_builtins_excluded(self):
        program = Program()
        program.rule(atom("p", "X"), atom("e", "X"), atom("gt", "X", 1))
        strata = stratify(program, builtin_preds={"gt"})
        assert all("gt" not in s for s in strata)

    def test_independent_positive_strata_merge(self):
        program = Program()
        program.rule(atom("p", "X"), atom("e", "X"))
        program.rule(atom("q", "X"), atom("p", "X"))
        strata = stratify(program)
        assert len(strata) == 1
