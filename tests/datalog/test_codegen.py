"""Tests for the compiling Datalog back-end.

The compiled engine must agree with the interpreting engine bit-for-bit
on every program shape the repository uses — classic recursion,
negation, builtins, the pointer-analysis instantiations, magic-set
transforms, and random fuzz programs.
"""

import pytest

from repro.bench.fuzz import random_program
from repro.compile.emit import (
    compile_context_string_analysis,
    compile_transformer_analysis,
    compile_transformer_analysis_naive,
)
from repro.core.sensitivity import Flavour
from repro.datalog.ast import Program, atom, negated
from repro.datalog.builtins import function_builtin
from repro.datalog.codegen import CompiledEngine
from repro.datalog.engine import Engine, evaluate
from repro.datalog.magic import magic_transform
from repro.frontend.factgen import facts_from_source, generate_facts
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5


def assert_same(program, builtins=None):
    interpreted = Engine(program, builtins).run()
    compiled = CompiledEngine(program, builtins).run()
    assert compiled == interpreted
    return compiled


class TestClassicPrograms:
    def test_transitive_closure(self):
        program = Program()
        program.rule(atom("path", "X", "Y"), atom("edge", "X", "Y"))
        program.rule(
            atom("path", "X", "Z"), atom("edge", "X", "Y"), atom("path", "Y", "Z")
        )
        program.add_facts("edge", [(i, i + 1) for i in range(25)])
        result = assert_same(program)
        assert len(result["path"]) == 25 * 26 // 2

    def test_nonlinear_recursion(self):
        program = Program()
        program.rule(atom("path", "X", "Y"), atom("edge", "X", "Y"))
        program.rule(
            atom("path", "X", "Z"), atom("path", "X", "Y"), atom("path", "Y", "Z")
        )
        program.add_facts("edge", [(i, i + 1) for i in range(12)])
        assert_same(program)

    def test_same_generation(self):
        program = Program()
        program.rule(atom("sg", "X", "X"), atom("person", "X"))
        program.rule(
            atom("sg", "X", "Y"),
            atom("parent", "X", "XP"),
            atom("sg", "XP", "YP"),
            atom("parent", "Y", "YP"),
        )
        program.add_facts("person", [("a",), ("c1",), ("c2",), ("d",)])
        program.add_facts("parent", [("c1", "a"), ("c2", "a"), ("d", "c1")])
        assert_same(program)

    def test_stratified_negation(self):
        program = Program()
        program.rule(atom("node", "X"), atom("edge", "X", "_A"))
        program.rule(atom("node", "Y"), atom("edge", "_B", "Y"))
        program.rule(atom("reach", "a"))
        program.rule(atom("reach", "Y"), atom("reach", "X"), atom("edge", "X", "Y"))
        program.rule(
            atom("unreachable", "X"), atom("node", "X"), negated("reach", "X")
        )
        program.add_facts("edge", [("a", "b"), ("d", "e")])
        result = assert_same(program)
        assert result["unreachable"] == {("d",), ("e",)}

    def test_constants_and_repeats(self):
        program = Program()
        program.rule(atom("from_a", "Y"), atom("edge", "a", "Y"))
        program.rule(atom("loop", "X"), atom("edge", "X", "X"))
        program.rule(atom("tagged", "x", "Y"), atom("edge", "Y", "Y"))
        program.add_facts("edge", [("a", "b"), ("c", "c")])
        result = assert_same(program)
        assert result["from_a"] == {("b",)}
        assert result["tagged"] == {("x", "c")}

    def test_builtins(self):
        double = function_builtin("double", lambda x: (2 * x,), out_positions=(1,))
        program = Program()
        program.rule(atom("big", "X"), atom("n", "X"), atom("gt", "X", 2))
        program.rule(atom("d", "X", "Y"), atom("n", "X"), atom("double", "X", "Y"))
        program.rule(atom("next", "X", "Y"), atom("n", "X"), atom("succ", "X", "Y"))
        program.add_facts("n", [(1,), (3,), (4,)])
        result = assert_same(program, {"double": double})
        assert result["d"] == {(1, 2), (3, 6), (4, 8)}

    def test_zero_arity(self):
        program = Program()
        program.rule(atom("flag"))
        program.rule(atom("out", "X"), atom("flag"), atom("q", "X"))
        program.add_facts("q", [(7,)])
        result = assert_same(program)
        assert result["out"] == {(7,)}

    def test_facts_as_rules(self):
        program = Program()
        program.rule(atom("edge", "a", "b"))
        program.rule(atom("path", "X", "Y"), atom("edge", "X", "Y"))
        assert_same(program)

    def test_tuple_valued_constants(self):
        program = Program()
        program.rule(atom("p", "C"), atom("q", "C"))
        program.add_facts("q", [((("a", "b"),))])
        assert_same(program)


class TestPointerAnalysisPrograms:
    @pytest.mark.parametrize(
        "compiler,flavour,m,h",
        [
            (compile_transformer_analysis, Flavour.CALL_SITE, 1, 1),
            (compile_transformer_analysis, Flavour.OBJECT, 2, 1),
            (compile_transformer_analysis_naive, Flavour.CALL_SITE, 1, 1),
            (compile_context_string_analysis, Flavour.OBJECT, 2, 1),
        ],
    )
    def test_matches_interpreter_on_figure1(self, compiler, flavour, m, h):
        facts = facts_from_source(FIGURE_1)
        compiled_analysis = compiler(facts, flavour, m, h)
        assert_same(compiled_analysis.program, compiled_analysis.builtins)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_interpreter_on_fuzz(self, seed):
        facts = generate_facts(random_program(seed, size=3))
        compiled_analysis = compile_transformer_analysis(
            facts, Flavour.CALL_SITE, 1, 1
        )
        assert_same(compiled_analysis.program, compiled_analysis.builtins)

    def test_magic_transformed_program(self):
        # The CI instantiation keeps the adorned program small enough
        # for the (slow) interpreting reference run.
        facts = facts_from_source(FIGURE_5)
        compiled_analysis = compile_transformer_analysis(
            facts, Flavour.CALL_SITE, 0, 0
        )
        magic, answer = magic_transform(
            compiled_analysis.program, "pts__", ("T.m/h", None)
        )
        result = assert_same(magic)
        assert result.get(answer)


class TestEngineMechanics:
    def test_stats(self):
        program = Program()
        program.rule(atom("path", "X", "Y"), atom("edge", "X", "Y"))
        program.rule(
            atom("path", "X", "Z"), atom("edge", "X", "Y"), atom("path", "Y", "Z")
        )
        program.add_facts("edge", [(i, i + 1) for i in range(10)])
        engine = CompiledEngine(program)
        engine.run()
        assert engine.stats.facts_derived == 55
        assert engine.stats.rounds >= 8

    def test_query_before_and_after_run(self):
        program = Program()
        program.rule(atom("p", "X"), atom("q", "X"))
        program.add_facts("q", [(1,)])
        engine = CompiledEngine(program)
        assert engine.query("p") == set()
        engine.run()
        assert engine.query("p") == {(1,)}
        assert engine.query("absent") == set()

    def test_generated_source_is_inspectable(self):
        program = Program()
        program.rule(atom("p", "X"), atom("q", "X"))
        engine = CompiledEngine(program)
        assert "def _rule0_v0" in engine.source
        assert "out.append" in engine.source

    def test_rerun_is_idempotent(self):
        program = Program()
        program.rule(atom("path", "X", "Y"), atom("edge", "X", "Y"))
        program.rule(
            atom("path", "X", "Z"), atom("edge", "X", "Y"), atom("path", "Y", "Z")
        )
        program.add_facts("edge", [(1, 2), (2, 3)])
        engine = CompiledEngine(program)
        assert engine.run()["path"] == engine.run()["path"]

    def test_builtin_collision_rejected(self):
        program = Program()
        program.rule(atom("eq", "X", "X"), atom("n", "X"))
        program.add_facts("n", [(1,)])
        with pytest.raises(ValueError, match="builtins"):
            CompiledEngine(program)

    def test_unsafe_negation_order_rejected_at_compile_time(self):
        program = Program()
        # Negation before its variables are bound: the interpreter fails
        # at run time; the compiler rejects at build time.
        rule = Program()
        rule.rules.append(
            type(program.rules)() if False else None
        )
        from repro.datalog.ast import Literal, Rule, Var

        bad = Rule(
            Literal("p", (Var("X"),)),
            (Literal("r", (Var("X"),), negated=True), Literal("q", (Var("X"),))),
        )
        program.rules.append(bad)
        program.add_facts("q", [(1,)])
        with pytest.raises(ValueError, match="unbound"):
            CompiledEngine(program)
