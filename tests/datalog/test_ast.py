"""Tests for the Datalog AST and safety validation."""

import pytest

from repro.datalog.ast import Const, Literal, Program, Rule, Var, atom, negated


class TestTerms:
    def test_atom_uppercase_is_var(self):
        lit = atom("p", "X", "y", 3)
        assert lit.args == (Var("X"), Const("y"), Const(3))

    def test_atom_underscore_is_var(self):
        lit = atom("p", "_X")
        assert isinstance(lit.args[0], Var)

    def test_explicit_terms_pass_through(self):
        lit = atom("p", Var("q"), Const("Q"))
        assert lit.args == (Var("q"), Const("Q"))

    def test_negated_constructor(self):
        lit = negated("p", "X")
        assert lit.negated

    def test_variables(self):
        lit = atom("p", "X", "y", "Z")
        assert lit.variables() == {Var("X"), Var("Z")}

    def test_repr(self):
        assert repr(atom("p", "X", "c")) == 'p(X, "c")'
        assert repr(negated("q", 1)) == "!q(1)"


class TestRuleSafety:
    def test_safe_rule_validates(self):
        Rule(atom("p", "X"), (atom("q", "X"),)).validate()

    def test_unsafe_head_rejected(self):
        with pytest.raises(ValueError, match="unsafe head"):
            Rule(atom("p", "X", "Y"), (atom("q", "X"),)).validate()

    def test_unsafe_negation_rejected(self):
        with pytest.raises(ValueError, match="negated"):
            Rule(
                atom("p", "X"),
                (atom("q", "X"), negated("r", "Y")),
            ).validate()

    def test_negated_head_rejected(self):
        with pytest.raises(ValueError, match="negated head"):
            Rule(negated("p", "X"), (atom("q", "X"),)).validate()

    def test_ground_fact_is_safe(self):
        Rule(atom("p", "a", 1)).validate()

    def test_is_fact(self):
        assert Rule(atom("p", "a")).is_fact()
        assert not Rule(atom("p", "X"), (atom("q", "X"),)).is_fact()


class TestProgram:
    def test_rule_helper_validates(self):
        program = Program()
        program.rule(atom("p", "X"), atom("q", "X"))
        assert len(program) == 1
        with pytest.raises(ValueError):
            program.rule(atom("p", "X"), atom("q", "Y"))

    def test_fact_helpers(self):
        program = Program()
        program.fact("edge", "a", "b")
        program.add_facts("edge", [("b", "c"), ("c", "d")])
        assert program.facts["edge"] == {("a", "b"), ("b", "c"), ("c", "d")}

    def test_idb_edb_partition(self):
        program = Program()
        program.rule(atom("path", "X", "Y"), atom("edge", "X", "Y"))
        program.fact("edge", "a", "b")
        assert program.idb_predicates() == {"path"}
        assert program.edb_predicates() == {"edge"}

    def test_arity_mismatch_rejected(self):
        program = Program()
        program.rule(atom("p", "X"), atom("q", "X"))
        program.rule(atom("p", "X", "X"), atom("q", "X"))
        with pytest.raises(ValueError, match="arities"):
            program.validate()

    def test_fact_arity_mismatch_rejected(self):
        program = Program()
        program.rule(atom("p", "X"), atom("q", "X"))
        program.fact("q", "a", "b")
        with pytest.raises(ValueError, match="arity"):
            program.validate()
