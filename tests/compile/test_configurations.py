"""Tests for transformer-string configurations (experiment E8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compile.configurations import (
    Configuration,
    configuration_of,
    decode,
    encode,
    enumerate_configurations,
    parse_tag,
)
from repro.core.transformer_strings import TransformerString

ALPHABET = ("a", "b", "c")

transformer_strings = st.builds(
    TransformerString,
    pops=st.lists(st.sampled_from(ALPHABET), max_size=3).map(tuple),
    wildcard=st.booleans(),
    pushes=st.lists(st.sampled_from(ALPHABET), max_size=3).map(tuple),
)


class TestEnumeration:
    def test_paper_count_12_for_2m1h_pts_domain(self):
        """Section 7: "the domain of transformer strings for the pts
        relation … in a 2-method-1-heap … instantiation has 12
        configurations"."""
        assert len(enumerate_configurations(1, 2)) == 12

    def test_paper_count_8_for_1m1h(self):
        """Section 7: a 1-method-1-heap instantiation "has 8
        configurations of transformer strings"."""
        assert len(enumerate_configurations(1, 1)) == 8

    def test_general_count(self):
        for i in range(4):
            for j in range(4):
                assert len(enumerate_configurations(i, j)) == (
                    (i + 1) * (j + 1) * 2
                )

    def test_deterministic_order(self):
        assert enumerate_configurations(1, 1) == enumerate_configurations(1, 1)

    def test_tags_unique(self):
        tags = [c.tag for c in enumerate_configurations(2, 3)]
        assert len(tags) == len(set(tags))


class TestTags:
    def test_tag_format(self):
        assert Configuration(2, True, 1).tag == "xxwe"
        assert Configuration(0, False, 0).tag == ""
        assert Configuration(0, True, 0).tag == "w"
        assert Configuration(1, False, 2).tag == "xee"

    def test_predicate_name(self):
        assert Configuration(2, True, 1).predicate_name("pts") == "pts__xxwe"

    def test_parse_tag_roundtrip(self):
        for config in enumerate_configurations(3, 3):
            assert parse_tag(config.tag) == config

    def test_parse_malformed(self):
        with pytest.raises(ValueError):
            parse_tag("exw")
        with pytest.raises(ValueError):
            parse_tag("xwx")

    def test_context_arity(self):
        assert Configuration(2, True, 1).context_arity == 3


class TestEncodeDecode:
    def test_paper_example(self):
        """pts(Y, H, X1·X2·∗·Ê1) becomes ptst_xxwe(Y, H, X1, X2, E1)."""
        t = TransformerString(("X1", "X2"), True, ("E1",))
        tag, attributes = encode(t)
        assert tag == "xxwe"
        assert attributes == ("X1", "X2", "E1")

    def test_decode_arity_checked(self):
        with pytest.raises(ValueError, match="attributes"):
            decode("xe", ("only-one",))

    @given(transformer_strings)
    @settings(max_examples=200, deadline=None)
    def test_roundtrip(self, t):
        tag, attributes = encode(t)
        assert decode(tag, attributes) == t
        assert configuration_of(t).tag == tag
