"""Cross-validation: all three compiled Datalog paths must reproduce the
worklist solver fact-for-fact (the strongest correctness check in the
repository — four independent implementations of the same rules)."""

import pytest

from repro import analyze, config_by_name
from repro.compile.emit import (
    compile_context_string_analysis,
    compile_transformer_analysis,
    compile_transformer_analysis_naive,
)
from repro.core.sensitivity import Flavour
from repro.frontend.factgen import FactSet, facts_from_source
from repro.frontend.paper_programs import ALL_PROGRAMS

CONFIGS = [
    ("1-call", Flavour.CALL_SITE, 1, 0),
    ("1-call+H", Flavour.CALL_SITE, 1, 1),
    ("1-object", Flavour.OBJECT, 1, 0),
    ("2-object+H", Flavour.OBJECT, 2, 1),
    ("2-type+H", Flavour.TYPE, 2, 1),
]

EXTRA_PROGRAM = """
class Node { Object value; Node next; }
class List {
    Node head;
    void push(Object v) {
        Node n = new Node(); // alloc_node
        n.value = v;
        n.next = head;
        head = n;
    }
    Object peek() {
        Node n = head;
        Object v = n.value;
        return v;
    }
}
class M {
    public static void main(String[] args) {
        List l1 = new List(); // l1
        List l2 = new List(); // l2
        Object a = new M(); // ha
        Object b = new M(); // hb
        l1.push(a); // p1
        l2.push(b); // p2
        Object x = l1.peek(); // q1
        Object y = l2.peek(); // q2
    }
}
"""

EXTENSIONS_PROGRAM = """
class Exc { }
class Config { static Object current; }
class Loader {
    static Object init() {
        Object c = new Config(); // hc
        Config.current = c;
        return c;
    }
}
class Worker {
    Object step() {
        Object cfg = Config.current;
        if (...) {
            Exc e = new Exc(); // he
            throw e;
        }
        return cfg;
    }
}
class M {
    public static void main(String[] args) {
        Object a = Loader.init(); // c1
        Worker w = new Worker(); // hw
        try {
            Object r = w.step(); // c2
        } catch (Exc ex) {
            Object oops = ex;
        }
    }
}
"""

PROGRAMS = dict(
    ALL_PROGRAMS, container=EXTRA_PROGRAM, extensions=EXTENSIONS_PROGRAM
)


@pytest.fixture(scope="module")
def all_facts():
    return {name: facts_from_source(src) for name, src in PROGRAMS.items()}


@pytest.mark.parametrize("program_name", sorted(PROGRAMS))
@pytest.mark.parametrize("config_name,flavour,m,h", CONFIGS)
class TestSpecializedTransformerAgreesWithSolver:
    def test_all_relations_identical(
        self, all_facts, program_name, config_name, flavour, m, h
    ):
        facts = all_facts[program_name]
        solver = analyze(facts, config_by_name(config_name, "transformer-string"))
        compiled = compile_transformer_analysis(facts, flavour, m, h).run()
        assert compiled.pts == solver.pts
        assert compiled.hpts == solver.hpts
        assert compiled.call == solver.call
        assert compiled.reach == solver.reach
        assert compiled.spts == solver.spts
        assert compiled.texc == solver.texc


@pytest.mark.parametrize("program_name", sorted(PROGRAMS))
@pytest.mark.parametrize("config_name,flavour,m,h", CONFIGS)
class TestNaiveTransformerAgreesWithSolver:
    def test_pts_and_call_identical(
        self, all_facts, program_name, config_name, flavour, m, h
    ):
        facts = all_facts[program_name]
        solver = analyze(facts, config_by_name(config_name, "transformer-string"))
        compiled = compile_transformer_analysis_naive(facts, flavour, m, h).run()
        assert compiled.pts == solver.pts
        assert compiled.call == solver.call


@pytest.mark.parametrize("program_name", sorted(PROGRAMS))
@pytest.mark.parametrize("config_name,flavour,m,h", CONFIGS)
class TestContextStringProgramAgreesWithSolver:
    def test_all_relations_identical(
        self, all_facts, program_name, config_name, flavour, m, h
    ):
        facts = all_facts[program_name]
        solver = analyze(facts, config_by_name(config_name, "context-string"))
        compiled = compile_context_string_analysis(facts, flavour, m, h).run()
        assert compiled.pts == solver.pts
        assert compiled.hpts == solver.hpts
        assert compiled.call == solver.call
        assert compiled.reach == solver.reach
        assert compiled.spts == solver.spts
        assert compiled.texc == solver.texc


class TestCompiledResultViews:
    def test_ci_projections(self, all_facts):
        compiled = compile_transformer_analysis(
            all_facts["figure5"], Flavour.CALL_SITE, 1, 1
        ).run()
        assert ("T.main/x", "h1") in compiled.pts_ci()
        assert ("m1", "T.m") in compiled.call_graph()

    def test_description_strings(self, all_facts):
        facts = all_facts["figure5"]
        spec = compile_transformer_analysis(facts, Flavour.OBJECT, 2, 1)
        assert "specialized" in spec.description
        naive = compile_transformer_analysis_naive(facts, Flavour.OBJECT, 2, 1)
        assert "naive" in naive.description

    def test_missing_main_rejected(self):
        empty = FactSet()
        with pytest.raises(ValueError, match="main"):
            compile_transformer_analysis(empty, Flavour.CALL_SITE, 1, 0)
        with pytest.raises(ValueError, match="main"):
            compile_context_string_analysis(empty, Flavour.CALL_SITE, 1, 0)

    def test_specialized_program_is_pure_datalog(self, all_facts):
        compiled = compile_transformer_analysis(
            all_facts["figure1"], Flavour.OBJECT, 2, 1
        )
        assert compiled.builtins == {}

    def test_specialized_program_round_trips_through_text_syntax(
        self, all_facts
    ):
        from repro.datalog.parser import format_program, parse_datalog

        compiled = compile_transformer_analysis(
            all_facts["figure5"], Flavour.CALL_SITE, 1, 1
        )
        text = format_program(compiled.program)
        reparsed = parse_datalog(text)
        reparsed.facts = compiled.program.facts
        from repro.datalog.engine import Engine

        raw_a = Engine(compiled.program).run()
        raw_b = Engine(reparsed).run()
        assert raw_a == raw_b
