"""Tests for symbolic specialization: the symbolic algebra must mirror
the concrete one, and the generated rule sets must match the paper's
counts and worked example."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compile.configurations import Configuration, enumerate_configurations
from repro.compile.specialize import (
    SymbolicTransformer,
    TransformerSpecializer,
    apply_substitution,
    compose_symbolic,
    fresh_symbolic,
    inverse_symbolic,
    solve_constraints,
    trunc_symbolic,
)
from repro.core import transformer_strings as ts
from repro.core.sensitivity import Flavour
from repro.core.transformer_strings import TransformerString
from repro.datalog.ast import Const, Literal, Var

ALPHABET = ("a", "b", "c")

concrete_strings = st.builds(
    TransformerString,
    pops=st.lists(st.sampled_from(ALPHABET), max_size=2).map(tuple),
    wildcard=st.booleans(),
    pushes=st.lists(st.sampled_from(ALPHABET), max_size=2).map(tuple),
)


def to_symbolic(t: TransformerString) -> SymbolicTransformer:
    return SymbolicTransformer(
        tuple(Const(a) for a in t.pops),
        t.wildcard,
        tuple(Const(a) for a in t.pushes),
    )


def to_concrete(t: SymbolicTransformer) -> TransformerString:
    assert all(isinstance(term, Const) for term in t.attributes)
    return TransformerString(
        tuple(term.value for term in t.pops),
        t.wildcard,
        tuple(term.value for term in t.pushes),
    )


class TestSymbolicMirrorsConcrete:
    @given(concrete_strings, concrete_strings)
    @settings(max_examples=300, deadline=None)
    def test_compose(self, x, y):
        """Symbolic composition + constraint solving on ground strings
        equals concrete composition (⊥ iff unification fails)."""
        result, constraints = compose_symbolic(to_symbolic(x), to_symbolic(y))
        substitution = solve_constraints(constraints)
        concrete = ts.compose(x, y)
        if concrete is None:
            assert substitution is None
        else:
            assert substitution == {}
            assert to_concrete(result) == concrete

    @given(concrete_strings)
    @settings(max_examples=100, deadline=None)
    def test_inverse(self, x):
        assert to_concrete(inverse_symbolic(to_symbolic(x))) == ts.inverse(x)

    @given(
        concrete_strings,
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=200, deadline=None)
    def test_trunc(self, x, i, j):
        assert to_concrete(trunc_symbolic(to_symbolic(x), i, j)) == ts.trunc(
            x, i, j
        )


class TestConstraintSolving:
    def test_var_var_unifies(self):
        subst = solve_constraints([(Var("A"), Var("B"))])
        assert apply_substitution(
            Literal("p", (Var("A"), Var("B"))), subst
        ).args[0] == apply_substitution(
            Literal("p", (Var("A"), Var("B"))), subst
        ).args[1]

    def test_var_const_binds(self):
        subst = solve_constraints([(Var("A"), Const("k"))])
        lit = apply_substitution(Literal("p", (Var("A"),)), subst)
        assert lit.args == (Const("k"),)

    def test_const_mismatch_fails(self):
        assert solve_constraints([(Const("a"), Const("b"))]) is None

    def test_transitive_chain(self):
        subst = solve_constraints(
            [(Var("A"), Var("B")), (Var("B"), Const("k")), (Var("A"), Const("k"))]
        )
        assert subst is not None
        lit = apply_substitution(Literal("p", (Var("A"), Var("B"))), subst)
        assert lit.args == (Const("k"), Const("k"))

    def test_empty_constraints(self):
        assert solve_constraints([]) == {}


class TestPaperWorkedExample:
    """Section 7: composing the xe configuration with itself yields the
    rule hpts__xe(G,F,H,X,M), hload__xe(G,F,M,E) ⊢ pts__xe(Y,H,X,E)."""

    def test_ind_xe_xe_instance(self):
        specializer = TransformerSpecializer(Flavour.CALL_SITE, 1, 1)
        rules = specializer.indirect_rules()
        matching = [
            r
            for r in rules
            if r.body[0].pred == "hpts__xe" and r.body[1].pred == "hload__xe"
        ]
        assert len(matching) == 1
        rule = matching[0]
        assert rule.head.pred == "pts__xe"
        # The join variable: hpts's entry must be hload's exit.
        hpts_entry = rule.body[0].args[-1]
        hload_exit = rule.body[1].args[3]
        assert hpts_entry == hload_exit
        # Head carries hpts's exit and hload's entry.
        assert rule.head.args[2] == rule.body[0].args[3]
        assert rule.head.args[3] == rule.body[1].args[-1]

    def test_ind_instantiated_64_times_at_1m1h(self):
        """Section 7: "the IND. rule is instantiated 64 times"."""
        specializer = TransformerSpecializer(Flavour.CALL_SITE, 1, 1)
        assert len(specializer.indirect_rules()) == 64


class TestRuleGeneration:
    @pytest.mark.parametrize(
        "flavour,m,h",
        [
            (Flavour.CALL_SITE, 1, 0),
            (Flavour.CALL_SITE, 1, 1),
            (Flavour.CALL_SITE, 0, 0),
            (Flavour.OBJECT, 1, 0),
            (Flavour.OBJECT, 2, 1),
            (Flavour.TYPE, 2, 1),
        ],
    )
    def test_all_rules_are_safe(self, flavour, m, h):
        for rule in TransformerSpecializer(flavour, m, h).rules():
            rule.validate()

    def test_rule_counts_scale_with_configurations(self):
        small = len(TransformerSpecializer(Flavour.CALL_SITE, 1, 0).rules())
        large = len(TransformerSpecializer(Flavour.CALL_SITE, 2, 1).rules())
        assert large > small

    def test_type_flavour_adds_class_of_literal(self):
        rules = TransformerSpecializer(Flavour.TYPE, 2, 1).virtual_rules()
        assert all(
            any(lit.pred == "class_of" for lit in r.body) for r in rules
        )
        rules_obj = TransformerSpecializer(Flavour.OBJECT, 2, 1).virtual_rules()
        assert not any(
            any(lit.pred == "class_of" for lit in r.body) for r in rules_obj
        )

    def test_static_rules_object_guard_shape(self):
        """merge_s under object sensitivity is M̌·M̂: the call head's pops
        and pushes repeat the same reach-context variables."""
        rules = TransformerSpecializer(Flavour.OBJECT, 2, 1).static_rules()
        two = [r for r in rules if r.body[1].pred == "reach_2"]
        assert len(two) == 1
        head = two[0].head
        assert head.pred == "call__xxee"
        assert head.args[2:4] == head.args[4:6]

    def test_entry_fact(self):
        specializer = TransformerSpecializer(Flavour.CALL_SITE, 2, 1)
        fact = specializer.entry_fact("T.main")
        assert fact.head.pred == "reach_1"
        assert fact.head.args == (Const("T.main"), Const("<entry>"))

    def test_entry_fact_m0(self):
        specializer = TransformerSpecializer(Flavour.CALL_SITE, 0, 0)
        fact = specializer.entry_fact("T.main")
        assert fact.head.pred == "reach_0"
