"""Tests for the configuration-closure certifier (DL505).

The specializer is only sound if the configuration universe at each
sensitivity cell is closed under the rule families' symbolic
operations, and the kernel compiler is only sound if every rule has
its full-evaluation and delta variants.  These tests certify every
supported (m, h) cell across the flavours, audit a real compiled
kernel program, inject a coverage hole and check DL505 fires, and
round-trip the byte-stable ``repro-kernel-cert/1`` document through
its self-check.
"""

import pytest

from repro.compile.closure import (
    SCHEMA,
    certify_kernels,
    closure_obligations,
    required_variant_keys,
    verify_kernel_cert,
)
from repro.compile.emit import compile_transformer_analysis
from repro.core.config import config_by_name
from repro.core.sensitivity import Flavour
from repro.datalog.kernel import KernelEngine
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_1

#: Every sensitivity cell the emitted configurations cover, per
#: flavour — the named-configuration table's (m, h) grid.
SUPPORTED_CELLS = [
    (Flavour.CALL_SITE, 0, 0),
    (Flavour.CALL_SITE, 1, 0),
    (Flavour.CALL_SITE, 1, 1),
    (Flavour.CALL_SITE, 2, 0),
    (Flavour.CALL_SITE, 2, 1),
    (Flavour.OBJECT, 1, 0),
    (Flavour.OBJECT, 2, 1),
    (Flavour.TYPE, 1, 0),
    (Flavour.TYPE, 2, 1),
    (Flavour.PLAIN_OBJECT, 1, 0),
    (Flavour.PLAIN_OBJECT, 2, 1),
    (Flavour.HYBRID, 1, 0),
    (Flavour.HYBRID, 2, 1),
    (Flavour.CALL_SITE, 3, 0),
    (Flavour.CALL_SITE, 3, 2),
    (Flavour.OBJECT, 3, 2),
]


@pytest.fixture(scope="module")
def figure1_kernels():
    config = config_by_name("2-object+H")
    facts = facts_from_source(FIGURE_1)
    compiled = compile_transformer_analysis(
        facts, config.flavour, config.m, config.h
    )
    engine = KernelEngine(compiled.program, compiled.builtins)
    return config, engine


class TestClosureGrid:
    @pytest.mark.parametrize(
        "flavour,m,h", SUPPORTED_CELLS,
        ids=[f"{m}-{f.value}+{h}H" for f, m, h in SUPPORTED_CELLS],
    )
    def test_every_supported_cell_is_closed(self, flavour, m, h):
        certificate = certify_kernels(flavour, m, h)
        assert certificate.closed, certificate.violations()
        assert certificate.certified
        # Closure-only certification: no variant audit was requested.
        assert certificate.exhaustive is None
        assert certificate.diagnostics == []

    def test_obligations_cover_every_family(self):
        obligations = closure_obligations(Flavour.OBJECT, 2, 1)
        families = {o.family for o in obligations}
        assert families >= {
            "assign", "load", "throw", "catch", "store", "indirect",
            "param", "return", "exception", "merge", "this", "static",
            "reach", "new", "static_store", "static_load",
        }

    def test_obligation_order_is_deterministic(self):
        first = closure_obligations(Flavour.CALL_SITE, 2, 1)
        second = closure_obligations(Flavour.CALL_SITE, 2, 1)
        assert first == second


class TestVariantAudit:
    def test_figure1_kernels_are_exhaustive(self, figure1_kernels):
        config, engine = figure1_kernels
        certificate = certify_kernels(
            config.flavour, config.m, config.h,
            program=engine.program, kernels=engine.kernels,
            builtins=engine.builtins,
        )
        assert certificate.certified
        assert certificate.exhaustive is True
        assert certificate.missing == []
        assert certificate.rules == len(
            [r for r in engine.program.rules if not r.is_fact()]
        )

    def test_injected_hole_fires_dl505(self, figure1_kernels):
        config, engine = figure1_kernels
        required = required_variant_keys(
            engine.program, builtins=engine.builtins
        )
        # Punch one delta variant out of the compiled program.
        hole = next(key for key in required if key[1] is not None)
        punched = dict(engine.kernels.variants_by_key)
        del punched[hole]
        engine.kernels.variants_by_key = punched
        try:
            certificate = certify_kernels(
                config.flavour, config.m, config.h,
                program=engine.program, kernels=engine.kernels,
                builtins=engine.builtins,
            )
        finally:
            # Rebuild the full key map from the variant list (the
            # fixture is module-scoped).
            engine.kernels.variants_by_key = {}
            engine.kernels.__post_init__()
        assert not certificate.certified
        assert certificate.exhaustive is False
        assert certificate.missing == [hole]
        (diagnostic,) = certificate.diagnostics
        assert diagnostic.code == "DL505"
        assert "delta variant" in diagnostic.message
        assert diagnostic.rule_index == hole[0]

    def test_program_without_kernels_rejected(self, figure1_kernels):
        config, engine = figure1_kernels
        with pytest.raises(ValueError, match="both the program"):
            certify_kernels(
                config.flavour, config.m, config.h, program=engine.program
            )

    def test_required_keys_mirror_kernel_compiler(self, figure1_kernels):
        _config, engine = figure1_kernels
        required = set(
            required_variant_keys(engine.program, builtins=engine.builtins)
        )
        assert required == set(engine.kernels.variants_by_key)


class TestCertificateDocument:
    def _certificate(self):
        return certify_kernels(Flavour.CALL_SITE, 1, 1)

    def test_round_trip_self_check(self):
        summary = verify_kernel_cert(self._certificate().to_json())
        assert summary["schema"] == SCHEMA
        assert summary["certified"] is True
        assert summary["violations"] == 0
        assert summary["variants"] is None

    def test_digest_is_byte_stable(self):
        assert self._certificate().to_json() == self._certificate().to_json()

    def test_tampered_digest_rejected(self):
        document = self._certificate().to_json()
        document["body"]["certified"] = False
        with pytest.raises(ValueError, match="digest mismatch"):
            verify_kernel_cert(document)

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="expected schema"):
            verify_kernel_cert({"schema": "repro-cost-plan/1"})

    def test_audited_document_reports_variants(self, figure1_kernels):
        config, engine = figure1_kernels
        document = certify_kernels(
            config.flavour, config.m, config.h,
            program=engine.program, kernels=engine.kernels,
            builtins=engine.builtins,
        ).to_json()
        summary = verify_kernel_cert(document)
        assert summary["variants"] == len(engine.kernels.variants_by_key)
        assert summary["missing"] == 0
        assert summary["certified"] is True
