"""Tests for the kernel compiler (`repro.compile.kernels`).

Covers the lowering contract in isolation: configuration-aware column
layouts, variant enumeration (one full kernel plus one per positive
IDB body position), the interning precondition, subset compilation
for shard plans, and the behaviour of instantiated kernel functions
on hand-built columnar storage.
"""

import pytest

from repro.compile.kernels import (
    KernelCompilationError,
    compile_kernels,
    relation_layout,
)
from repro.datalog.ast import Const, Literal, Program, Rule, Var
from repro.datalog.parser import parse_datalog
from repro.store import ColumnarStore, Interner


def interned(source: str):
    interner = Interner()
    from repro.datalog.kernel import intern_program

    return intern_program(parse_datalog(source), interner), interner


def bind_storage(kernels, store):
    ordered = sorted(kernels.pred_ids, key=kernels.pred_ids.get)
    relations = {
        pred: store.relation(pred, kernels.arity_of(pred))
        for pred in ordered
    }
    db = [relations[pred].rows for pred in ordered]
    idx = [None] * len(kernels.index_ids)
    for (pred, positions), slot in kernels.index_ids.items():
        idx[slot] = relations[pred].index_view(positions)
    cols = [None] * len(kernels.column_ids)
    for (pred, position), slot in kernels.column_ids.items():
        cols[slot] = relations[pred].columns[position]
    return relations, cols, db, idx


class TestRelationLayout:
    def test_configuration_suffix_splits_columns(self):
        layout = relation_layout("pts__xxe", 5)
        assert layout["base"] == "pts"
        assert layout["tag"] == "xxe"
        assert layout["context_arity"] == 3
        assert layout["entity_arity"] == 2

    def test_wildcard_tag(self):
        layout = relation_layout("call__xw", 4)
        assert layout["context_arity"] == 1  # w matches, adds no column
        assert layout["entity_arity"] == 3

    def test_plain_name_is_all_entity(self):
        layout = relation_layout("assign", 2)
        assert layout["base"] is None
        assert layout["entity_arity"] == 2

    def test_unparseable_tag_is_all_entity(self):
        layout = relation_layout("not__atag", 2)
        assert layout["base"] is None
        assert layout["context_arity"] == 0

    def test_kernel_program_layout_covers_all_predicates(self):
        program, _ = interned(
            "p__xe(V, C1, C2) :- e(V, C1, C2).\n"
        )
        kernels = compile_kernels(program)
        layouts = {entry["relation"]: entry for entry in kernels.layout()}
        assert set(layouts) == {"p__xe", "e"}
        assert layouts["p__xe"]["context_arity"] == 2


class TestVariantEnumeration:
    def test_one_full_plus_one_per_idb_position(self):
        program, _ = interned(
            "p(X, Y) :- e(X, Y).\n"
            "p(X, Z) :- p(X, Y), p(Y, Z).\n"
        )
        kernels = compile_kernels(program)
        by_rule = {}
        for variant in kernels.variants:
            by_rule.setdefault(variant.rule_index, []).append(variant)
        # Rule 0: e is EDB-only, so just the full variant.
        assert [v.delta_position for v in by_rule[0]] == [None]
        # Rule 1: full + delta at both recursive positions.
        assert [v.delta_position for v in by_rule[1]] == [None, 0, 1]
        assert all(v.head == "p" for v in kernels.variants)
        assert kernels.variants_by_key[(1, 1)].delta_pred == "p"

    def test_negated_and_builtin_literals_get_no_delta_variant(self):
        program, _ = interned(
            "q(X) :- e(X).\n"
            "p(X) :- e(X), !q(X), le(X, X).\n"
        )
        kernels = compile_kernels(program)
        positions = [
            v.delta_position for v in kernels.variants if v.rule_index == 1
        ]
        assert positions == [None]

    def test_fact_rules_are_skipped(self):
        program, _ = interned("p(1).\nq(X) :- p(X).\n")
        kernels = compile_kernels(program)
        assert {v.rule_index for v in kernels.variants} == {1}

    def test_rules_subset_keeps_plan_numbering(self):
        program, _ = interned(
            "p(X) :- e(X).\n"
            "q(X) :- p(X).\n"
            "r(X) :- q(X).\n"
        )
        subset = [(2, program.rules[2])]
        kernels = compile_kernels(program, rules=subset)
        assert {v.rule_index for v in kernels.variants} == {2}
        # Storage tables still cover the whole program.
        assert set(kernels.pred_ids) == {"e", "p", "q", "r"}

    def test_uninterned_constants_are_rejected(self):
        program = Program()
        program.rules.append(
            Rule(
                Literal("p", (Var("X"),)),
                (Literal("e", (Var("X"), Const("heap"))),),
            )
        )
        with pytest.raises(KernelCompilationError):
            compile_kernels(program)


class TestInstantiatedKernels:
    def test_join_kernel_produces_head_rows(self):
        program, interner = interned(
            "path(X, Y) :- edge(X, Y).\n"
            "path(X, Z) :- edge(X, Y), path(Y, Z).\n"
        )
        kernels = compile_kernels(program)
        functions = kernels.instantiate(None, interner)
        store = ColumnarStore(interner)
        relations, cols, db, idx = bind_storage(kernels, store)
        a, b, c = (interner.intern(v) for v in "abc")
        relations["edge"].load((a, b))
        relations["edge"].load((b, c))
        relations["path"].load((b, c))

        out = []
        full = kernels.variants_by_key[(1, None)]
        functions[full.name](cols, db, idx, (), out)
        assert set(out) == {(a, c)}

    def test_delta_variant_scans_only_the_frontier(self):
        program, interner = interned(
            "p(X, Z) :- e(X, Y), p(Y, Z).\n"
        )
        kernels = compile_kernels(program)
        functions = kernels.instantiate(None, interner)
        store = ColumnarStore(interner)
        relations, cols, db, idx = bind_storage(kernels, store)
        sym = {v: interner.intern(v) for v in "abcd"}
        relations["e"].load((sym["a"], sym["b"]))
        relations["e"].load((sym["b"], sym["c"]))
        p = relations["p"]
        p.add((sym["b"], sym["d"]))
        p.promote()  # (b, d) is the frontier
        p.add((sym["c"], sym["d"]))  # pending: not visible to delta scan

        out = []
        variant = kernels.variants_by_key[(0, 1)]
        functions[variant.name](cols, db, idx, p.delta_ids, out)
        assert set(out) == {(sym["a"], sym["d"])}

    def test_builtin_kernel_crosses_the_interner_boundary(self):
        program, interner = interned(
            "big(X) :- n(X), le(3, X).\n"
        )
        kernels = compile_kernels(program)
        functions = kernels.instantiate(None, interner)
        store = ColumnarStore(interner)
        relations, cols, db, idx = bind_storage(kernels, store)
        for value in (1, 5):
            relations["n"].load((interner.intern(value),))

        out = []
        variant = kernels.variants_by_key[(0, None)]
        functions[variant.name](cols, db, idx, (), out)
        assert {interner.decode_row(row) for row in out} == {(5,)}

    def test_builtins_without_interner_rejected_at_instantiate(self):
        program, interner = interned("p(X) :- n(X), le(X, 9).\n")
        kernels = compile_kernels(program)
        with pytest.raises(KernelCompilationError, match="interner"):
            kernels.instantiate(None, None)

    def test_source_is_pure_python_functions(self):
        program, _ = interned("p(X) :- e(X).\n")
        kernels = compile_kernels(program)
        assert kernels.source.startswith("def _k0_v0(")
        assert "TransformerString" not in kernels.source
