"""Gold tests: the paper's Figure 1 precision narrative (Section 2).

Every claim the paper makes about the example program is pinned here,
under both abstractions (which must agree on context-insensitive
results for call-site and object sensitivity — Theorem 6.2 plus the
observed equality of Section 8).
"""

import pytest

from repro import analyze, config_by_name
from repro.frontend.paper_programs import FIGURE_1

ABSTRACTIONS = ("context-string", "transformer-string")

X = "T.main/x"
Y = "T.main/y"
X1 = "T.main/x1"
Y1 = "T.main/y1"
X2 = "T.main/x2"
Y2 = "T.main/y2"
Z = "T.main/z"
A = "T.main/a"
B = "T.main/b"


def run(sensitivity, abstraction):
    return analyze(FIGURE_1, config_by_name(sensitivity, abstraction))


@pytest.mark.parametrize("abstraction", ABSTRACTIONS)
class TestContextInsensitiveBaseline:
    def test_everything_merges(self, abstraction):
        r = run("insensitive", abstraction)
        assert r.points_to(X1) == {"h1", "h2"}
        assert r.points_to(Y1) == {"h1", "h2"}
        assert r.points_to(X2) == {"h1", "h2"}
        assert r.points_to(Y2) == {"h1", "h2"}


@pytest.mark.parametrize("abstraction", ABSTRACTIONS)
class TestOneCallSite:
    """1-call-site: id's three call sites are separated, so x1/y1 are
    precise; id2's shared internal call site c1 merges, so x2/y2 are not."""

    def test_x1_y1_precise(self, abstraction):
        r = run("1-call", abstraction)
        assert r.points_to(X1) == {"h1"}
        assert r.points_to(Y1) == {"h2"}

    def test_x2_y2_imprecise(self, abstraction):
        r = run("1-call", abstraction)
        assert r.points_to(X2) == {"h1", "h2"}
        assert r.points_to(Y2) == {"h1", "h2"}


@pytest.mark.parametrize("abstraction", ABSTRACTIONS)
class TestTwoCallSite:
    """A 2-call-site analysis is required for precise x2/y2 (Section 2)."""

    def test_all_precise(self, abstraction):
        r = run("2-call", abstraction)
        assert r.points_to(X1) == {"h1"}
        assert r.points_to(Y1) == {"h2"}
        assert r.points_to(X2) == {"h1"}
        assert r.points_to(Y2) == {"h2"}


@pytest.mark.parametrize("abstraction", ABSTRACTIONS)
class TestOneObject:
    """1-object: all calls through receiver h3 merge (x1/y1 imprecise)
    but id2's nested call keeps the h4/h5 receiver contexts apart
    (x2/y2 precise)."""

    def test_x1_y1_imprecise(self, abstraction):
        r = run("1-object", abstraction)
        assert r.points_to(X1) == {"h1", "h2"}
        assert r.points_to(Y1) == {"h1", "h2"}

    def test_x2_y2_precise(self, abstraction):
        r = run("1-object", abstraction)
        assert r.points_to(X2) == {"h1"}
        assert r.points_to(Y2) == {"h2"}


@pytest.mark.parametrize("abstraction", ABSTRACTIONS)
class TestHeapContexts:
    """Without heap contexts the two objects returned by m are one
    abstract object, so a.f/b.f alias and z points to h1; with one level
    of heap context (either flavour), they are separated (Section 2)."""

    @pytest.mark.parametrize("sensitivity", ["1-call", "1-object", "2-call"])
    def test_without_heap_context_z_is_imprecise(self, abstraction, sensitivity):
        r = run(sensitivity, abstraction)
        assert r.points_to(A) == {"m1"}
        assert r.points_to(B) == {"m1"}
        assert r.points_to(Z) == {"h1"}

    @pytest.mark.parametrize("sensitivity", ["1-call+H", "2-object+H"])
    def test_with_heap_context_z_is_empty(self, abstraction, sensitivity):
        r = run(sensitivity, abstraction)
        assert r.points_to(Z) == set()
        assert not r.field_may_alias("m1", "m1", "f") or True  # same site
        # The two pts facts for a and b must carry distinct contexts.
        a_facts = r.points_to_with_contexts(A)
        b_facts = r.points_to_with_contexts(B)
        assert {h for (h, _) in a_facts} == {"m1"}
        assert {h for (h, _) in b_facts} == {"m1"}
        assert not (a_facts & b_facts)


@pytest.mark.parametrize("abstraction", ABSTRACTIONS)
class TestTypeSensitivity:
    """2-type+H merges h4/h5 (both of class T), so x2/y2 stay imprecise."""

    def test_x2_y2_imprecise(self, abstraction):
        r = run("2-type+H", abstraction)
        assert r.points_to(X2) == {"h1", "h2"}
        assert r.points_to(Y2) == {"h1", "h2"}

    def test_heap_contexts_still_separate_m1_objects(self, abstraction):
        # c6/c7 come from receivers h4/h5 — same type T, merged: under
        # type sensitivity a and b are NOT separated.
        r = run("2-type+H", abstraction)
        assert r.points_to(Z) == {"h1"}


class TestCallGraph:
    @pytest.mark.parametrize("abstraction", ABSTRACTIONS)
    def test_call_graph_edges(self, abstraction):
        r = run("1-call", abstraction)
        graph = r.call_graph()
        assert ("c1", "T.id") in graph
        assert ("c2", "T.id") in graph
        assert ("c4", "T.id2") in graph
        assert ("c6", "T.m") in graph

    @pytest.mark.parametrize("abstraction", ABSTRACTIONS)
    def test_reachable_methods(self, abstraction):
        r = run("1-object", abstraction)
        assert r.reachable_methods() == {"T.main", "T.id", "T.id2", "T.m"}

    @pytest.mark.parametrize("sensitivity", ["1-call", "1-object", "2-object+H"])
    def test_call_graphs_agree_across_abstractions(self, sensitivity):
        r_cs = run(sensitivity, "context-string")
        r_ts = run(sensitivity, "transformer-string")
        assert r_cs.call_graph() == r_ts.call_graph()


class TestAbstractionEquivalence:
    """The two abstractions compute identical context-insensitive
    projections under call-site and object sensitivity (Section 8)."""

    @pytest.mark.parametrize(
        "sensitivity", ["insensitive", "1-call", "1-call+H", "2-call",
                        "1-object", "2-object+H"]
    )
    def test_ci_projections_equal(self, sensitivity):
        r_cs = run(sensitivity, "context-string")
        r_ts = run(sensitivity, "transformer-string")
        assert r_cs.pts_ci() == r_ts.pts_ci()
        assert r_cs.hpts_ci() == r_ts.hpts_ci()
        assert r_cs.call_graph() == r_ts.call_graph()

    def test_type_sensitivity_ts_is_superset(self):
        # Theorem 6.1 (soundness) still holds under type sensitivity; the
        # transformer abstraction may only be less precise (Section 6).
        r_cs = run("2-type+H", "context-string")
        r_ts = run("2-type+H", "transformer-string")
        assert r_ts.pts_ci() >= r_cs.pts_ci()
        assert r_ts.call_graph() >= r_cs.call_graph()


class TestFewerFactsWithTransformerStrings:
    @pytest.mark.parametrize(
        "sensitivity", ["1-call", "1-call+H", "1-object", "2-object+H"]
    )
    def test_fact_counts_do_not_increase(self, sensitivity):
        r_cs = run(sensitivity, "context-string")
        r_ts = run(sensitivity, "transformer-string")
        assert r_ts.total_facts() <= r_cs.total_facts()
