"""The cost-order acceptance sweep.

Cost-ordered evaluation must be bit-identical to left-to-right source
order on the full grid: both paper programs (Figure 1, Figure 5), both
abstractions (transformer-string and context-string), the eight paper
configurations, and every backend (interpreting engine, compiled
backend, fused kernels).  The plan is computed once per cell and its
rewrite shared by the three backends, exactly as the CLI and the bench
harness consume it.
"""

import pytest

from repro.compile.emit import (
    compile_context_string_analysis,
    compile_transformer_analysis,
)
from repro.core.config import config_by_name
from repro.datalog.codegen import CompiledEngine
from repro.datalog.cost import analyze_cost
from repro.datalog.engine import Engine
from repro.datalog.kernel import KernelEngine
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5

CONFIGURATIONS = (
    "1-call", "1-call+H", "2-call", "2-call+H",
    "1-object", "2-object+H", "1-type", "2-type+H",
)

COMPILERS = {
    "transformer-string": compile_transformer_analysis,
    "context-string": compile_context_string_analysis,
}

_FACTS = {}


def _facts(name):
    if name not in _FACTS:
        _FACTS[name] = facts_from_source(
            FIGURE_1 if name == "figure1" else FIGURE_5
        )
    return _FACTS[name]


@pytest.mark.parametrize("abstraction", sorted(COMPILERS))
@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@pytest.mark.parametrize("source", ("figure1", "figure5"))
def test_cost_order_is_bit_identical(source, configuration, abstraction):
    config = config_by_name(configuration)
    compiled = COMPILERS[abstraction](
        _facts(source), config.flavour, config.m, config.h
    )
    program, builtins = compiled.program, compiled.builtins

    baseline = Engine(program, builtins).run()
    ordered = analyze_cost(program, builtins=builtins).apply()

    assert Engine(ordered, builtins).run() == baseline
    assert CompiledEngine(ordered, builtins).run() == baseline
    assert KernelEngine(ordered, builtins).run() == baseline
