"""Smoke tests: every shipped example runs cleanly as a script."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)

EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)

SRC_DIR = os.path.abspath(
    os.path.join(EXAMPLES_DIR, os.pardir, "src")
)


def _example_env():
    """Subprocess environment with ``src`` importable.

    The examples import ``repro`` from the source tree; the subprocess
    does not inherit pytest's ``sys.path``, so prepend ``src`` to
    ``PYTHONPATH`` explicitly.
    """
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        SRC_DIR if not existing else SRC_DIR + os.pathsep + existing
    )
    return env


def test_at_least_three_examples_ship():
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example, tmp_path):
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, example)],
        capture_output=True,
        text=True,
        timeout=120,
        cwd=str(tmp_path),  # examples must not depend on the CWD
        env=_example_env(),
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples should narrate their output"


def test_quickstart_shows_precision_story(tmp_path):
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True, text=True, timeout=120, cwd=str(tmp_path),
        env=_example_env(),
    )
    assert "1-call" in completed.stdout
    assert "2-object+H" in completed.stdout


def test_precision_example_reports_figure5_counts(tmp_path):
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "precision_example.py")],
        capture_output=True, text=True, timeout=120, cwd=str(tmp_path),
        env=_example_env(),
    )
    assert "12 vs 5" in completed.stdout
