"""Differential testing over random programs.

Four independent implementations of the deduction rules must agree on
arbitrary well-formed input: the worklist solver under both abstractions
(context-insensitive projections equal outside type sensitivity —
Theorem 6.2), the specialized and naive compiled Datalog programs (all
relations identical to the solver), and the CFL-reachability fixpoint at
m = 0.
"""

import pytest

from repro import analyze, config_by_name
from repro.bench.fuzz import random_program
from repro.cfl.pag import build_pag
from repro.cfl.solver import FlowsToSolver
from repro.compile.emit import (
    compile_context_string_analysis,
    compile_transformer_analysis,
    compile_transformer_analysis_naive,
)
from repro.core.sensitivity import Flavour
from repro.frontend.factgen import generate_facts

SEEDS = list(range(12))


@pytest.fixture(scope="module")
def fuzzed():
    out = {}
    for seed in SEEDS:
        out[seed] = generate_facts(random_program(seed, size=3))
    return out


@pytest.mark.parametrize("seed", SEEDS)
class TestAbstractionAgreement:
    @pytest.mark.parametrize(
        "config_name", ["insensitive", "1-call", "1-call+H", "2-object+H"]
    )
    def test_ci_projections_equal(self, fuzzed, seed, config_name):
        facts = fuzzed[seed]
        cs = analyze(facts, config_by_name(config_name, "context-string"))
        ts = analyze(facts, config_by_name(config_name, "transformer-string"))
        assert cs.pts_ci() == ts.pts_ci()
        assert cs.hpts_ci() == ts.hpts_ci()
        assert cs.call_graph() == ts.call_graph()
        assert {(p, h) for (p, h, _) in cs.texc} == {
            (p, h) for (p, h, _) in ts.texc
        }

    def test_type_sensitivity_is_sound(self, fuzzed, seed):
        facts = fuzzed[seed]
        cs = analyze(facts, config_by_name("2-type+H", "context-string"))
        ts = analyze(facts, config_by_name("2-type+H", "transformer-string"))
        assert ts.pts_ci() >= cs.pts_ci()
        assert ts.call_graph() >= cs.call_graph()


@pytest.mark.parametrize("seed", SEEDS[:6])
class TestCompiledPathsAgree:
    @pytest.mark.parametrize(
        "config_name,flavour,m,h",
        [("1-call+H", Flavour.CALL_SITE, 1, 1),
         ("2-object+H", Flavour.OBJECT, 2, 1)],
    )
    def test_specialized_equals_solver(self, fuzzed, seed, config_name,
                                       flavour, m, h):
        facts = fuzzed[seed]
        solver = analyze(facts, config_by_name(config_name, "transformer-string"))
        compiled = compile_transformer_analysis(facts, flavour, m, h).run()
        assert compiled.pts == solver.pts
        assert compiled.hpts == solver.hpts
        assert compiled.call == solver.call
        assert compiled.spts == solver.spts
        assert compiled.texc == solver.texc

    def test_naive_equals_solver(self, fuzzed, seed, config_name=None,
                                 flavour=None, m=None, h=None):
        facts = fuzzed[seed]
        solver = analyze(facts, config_by_name("1-call+H", "transformer-string"))
        compiled = compile_transformer_analysis_naive(
            facts, Flavour.CALL_SITE, 1, 1
        ).run()
        assert compiled.pts == solver.pts
        assert compiled.call == solver.call

    def test_context_strings_equal_solver(self, fuzzed, seed,
                                          config_name=None, flavour=None,
                                          m=None, h=None):
        facts = fuzzed[seed]
        solver = analyze(facts, config_by_name("2-object+H", "context-string"))
        compiled = compile_context_string_analysis(
            facts, Flavour.OBJECT, 2, 1
        ).run()
        assert compiled.pts == solver.pts
        assert compiled.call == solver.call
        assert compiled.texc == solver.texc


@pytest.mark.parametrize("seed", SEEDS)
def test_cfl_fixpoint_matches_m0_rules(fuzzed, seed):
    facts = fuzzed[seed]
    result = analyze(facts, config_by_name("insensitive"))
    pag = build_pag(facts)
    solver = FlowsToSolver(pag).solve()
    assert solver.variable_flows_to_pairs() == {
        (h, y) for (y, h) in result.pts_ci()
    }
    assert solver.static_field_pairs() == {
        (h, f) for (f, h, _) in result.spts
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_index_ablation_identical(fuzzed, seed):
    facts = fuzzed[seed]
    indexed = analyze(facts, config_by_name("2-object+H", "transformer-string"))
    naive = analyze(
        facts,
        config_by_name(
            "2-object+H", "transformer-string", naive_transformer_index=True
        ),
    )
    assert indexed.pts == naive.pts
    assert indexed.call == naive.call


def test_generator_is_deterministic():
    from repro.frontend.doopfacts import facts_equal

    a = generate_facts(random_program(42, size=4))
    b = generate_facts(random_program(42, size=4))
    assert facts_equal(a, b)


def test_generator_varies_with_seed():
    a = generate_facts(random_program(1, size=3))
    b = generate_facts(random_program(2, size=3))
    assert a.assign_new != b.assign_new
