"""Soundness against concrete execution.

The strongest check a static analysis can face: run the program for
real and verify that everything that actually happened is predicted.
For every corpus and fuzz program, every configuration, and both
abstractions:

* every run-time variable binding ``(var, site)`` ∈ ``pts_ci``;
* every run-time field write ``(base site, f, value site)`` ∈ ``hpts_ci``;
* every run-time static write ∈ the ``spts`` projection;
* every dispatched call edge ∈ the call graph;
* every executed method ∈ ``reachable_methods``;
* every escaping exception ∈ the ``texc`` projection.
"""

import pytest

from repro import analyze, config_by_name
from repro.bench.concrete import run_concrete
from repro.bench.fuzz import random_program
from repro.bench.workloads import dacapo_program
from repro.frontend.factgen import generate_facts
from repro.frontend.parser import parse_program
from repro.frontend.paper_programs import ALL_PROGRAMS

CONFIGS = ("insensitive", "1-call", "1-call+H", "1-object", "2-object+H",
           "2-type+H", "2-hybrid+H")


def assert_sound(program, observed, result, label):
    pts = result.pts_ci()
    for binding in observed.var_points_to:
        assert binding in pts, (label, "pts", binding)
    hpts = result.hpts_ci()
    for write in observed.heap_points_to:
        assert write in hpts, (label, "hpts", write)
    spts = {(f, h) for (f, h, _) in result.spts}
    for write in observed.static_points_to:
        assert write in spts, (label, "spts", write)
    call_graph = result.call_graph()
    for edge in observed.call_edges:
        assert edge in call_graph, (label, "call", edge)
    reachable = result.reachable_methods()
    for method in observed.executed_methods:
        assert method in reachable, (label, "reach", method)
    texc = {(p, h) for (p, h, _) in result.texc}
    for escape in observed.escaped_exceptions:
        assert escape in texc, (label, "texc", escape)


@pytest.mark.parametrize("program_name", sorted(ALL_PROGRAMS))
@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("abstraction", ["context-string", "transformer-string"])
def test_paper_programs_sound(program_name, config_name, abstraction):
    program = parse_program(ALL_PROGRAMS[program_name])
    observed = run_concrete(program)
    result = analyze(
        generate_facts(program), config_by_name(config_name, abstraction)
    )
    assert_sound(program, observed, result,
                 (program_name, config_name, abstraction))


@pytest.mark.parametrize("seed", range(15))
def test_fuzz_programs_sound(seed):
    program = random_program(seed, size=4)
    observed = run_concrete(program, step_budget=5000)
    facts = generate_facts(program)
    for config_name in ("insensitive", "1-call+H", "2-object+H"):
        for abstraction in ("context-string", "transformer-string"):
            result = analyze(facts, config_by_name(config_name, abstraction))
            assert_sound(program, observed, result,
                         (seed, config_name, abstraction))


@pytest.mark.parametrize("name", ["luindex", "bloat", "jython"])
def test_workloads_sound(name):
    program = dacapo_program(name)
    observed = run_concrete(program, step_budget=50000)
    facts = generate_facts(program)
    result = analyze(facts, config_by_name("2-object+H"))
    assert_sound(program, observed, result, name)
    # The concrete run actually exercised the program.
    assert len(observed.var_points_to) > 20


class TestInterpreterMechanics:
    def test_observations_on_figure1(self):
        program = parse_program(ALL_PROGRAMS["figure1"])
        observed = run_concrete(program)
        assert ("T.main/x1", "h1") in observed.var_points_to
        assert ("m1", "f", "h1") in observed.heap_points_to
        assert ("c2", "T.id") in observed.call_edges
        # Concretely a and b are distinct m1-objects, so z never holds
        # h1 — the imprecision that heap contexts remove is exactly the
        # gap between this run and the h = 0 analyses.
        assert ("T.main/z", "h1") not in observed.var_points_to

    def test_budget_stops_recursion(self):
        source = """
        class M {
            static Object spin(Object p) {
                Object q = M.spin(p); // rec
                return p;
            }
            public static void main(String[] args) {
                Object x = new M(); // h1
                Object r = M.spin(x); // c1
            }
        }
        """
        program = parse_program(source)
        observed = run_concrete(program, step_budget=200)
        assert observed.steps <= 201
        assert ("M.spin/p", "h1") in observed.var_points_to

    def test_precision_gap_is_visible(self):
        """The concrete run under-approximates what the cheap analysis
        claims: Figure 1's x1 really only holds h1, while the
        insensitive analysis also claims h2 — the gap that motivates
        context sensitivity."""
        program = parse_program(ALL_PROGRAMS["figure1"])
        observed = run_concrete(program)
        concrete_x1 = {
            h for (v, h) in observed.var_points_to if v == "T.main/x1"
        }
        assert concrete_x1 == {"h1"}
        result = analyze(generate_facts(program), config_by_name("insensitive"))
        assert result.points_to("T.main/x1") == {"h1", "h2"}
