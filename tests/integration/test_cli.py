"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5


@pytest.fixture()
def figure1_file(tmp_path):
    path = tmp_path / "figure1.java"
    path.write_text(FIGURE_1)
    return str(path)


@pytest.fixture()
def figure5_file(tmp_path):
    path = tmp_path / "figure5.java"
    path.write_text(FIGURE_5)
    return str(path)


class TestAnalyzeCommand:
    def test_points_to_query(self, figure1_file, capsys):
        assert main([
            "analyze", figure1_file, "--config", "1-call",
            "--var", "T.main/x1", "--var", "T.main/x2",
        ]) == 0
        out = capsys.readouterr().out
        assert "T.main/x1 -> {h1}" in out
        assert "T.main/x2 -> {h1, h2}" in out

    def test_full_dump_and_stats(self, figure1_file, capsys):
        assert main(["analyze", figure1_file, "--stats", "--call-graph"]) == 0
        out = capsys.readouterr().out
        assert "T.main/x1" in out
        assert "call graph:" in out
        assert "|pts|=" in out
        assert "2-object+H" in out

    def test_stats_prints_store_counters(self, figure1_file, capsys):
        assert main(["analyze", figure1_file, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "relation" in out and "inserts" in out and "probes" in out
        counters = {}
        for line in out.splitlines():
            parts = line.split()
            if parts and parts[0] in ("pts", "hpts", "call"):
                counters[parts[0]] = [int(v) for v in parts[1:]]
        assert set(counters) == {"pts", "hpts", "call"}
        for name, (rows, inserts, dedup, probes, *_rest) in counters.items():
            assert inserts > 0, name
            assert probes > 0, name
        assert counters["pts"][2] > 0  # pts sees dedup hits on Figure 1

    def test_context_string_abstraction(self, figure5_file, capsys):
        assert main([
            "analyze", figure5_file, "--config", "1-call+H",
            "--abstraction", "cs", "--stats",
        ]) == 0
        assert "context-string" in capsys.readouterr().out

    def test_missing_input_errors(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--config", "1-call"])

    def test_unknown_config_rejected(self, figure1_file):
        with pytest.raises(SystemExit):
            main(["analyze", figure1_file, "--config", "9-quantum"])


class TestQueryCommand:
    def test_demand_query(self, figure1_file, capsys):
        assert main([
            "query", figure1_file, "--config", "1-call",
            "--var", "T.main/x1",
        ]) == 0
        out = capsys.readouterr().out
        assert "T.main/x1 -> {h1}" in out
        assert "demand slice:" in out

    def test_query_matches_analyze(self, figure1_file, capsys):
        main(["query", figure1_file, "--config", "2-object+H",
              "--var", "T.main/x2"])
        query_out = capsys.readouterr().out
        main(["analyze", figure1_file, "--config", "2-object+H",
              "--var", "T.main/x2"])
        analyze_out = capsys.readouterr().out
        assert "T.main/x2 -> {h1}" in query_out
        assert "T.main/x2 -> {h1}" in analyze_out

    def test_dot_export(self, figure1_file, tmp_path, capsys):
        out = tmp_path / "cg.dot"
        assert main([
            "analyze", figure1_file, "--config", "1-call", "--dot", str(out),
        ]) == 0
        text = out.read_text()
        assert text.startswith("digraph")
        assert '"T.id"' in text


class TestFactsCommand:
    def test_generates_directory(self, figure1_file, tmp_path, capsys):
        out_dir = str(tmp_path / "facts")
        assert main(["facts", figure1_file, "--out", out_dir]) == 0
        assert os.path.exists(os.path.join(out_dir, "AssignHeapAllocation.facts"))
        assert "wrote" in capsys.readouterr().out

    def test_roundtrip_through_analyze(self, figure1_file, tmp_path, capsys):
        out_dir = str(tmp_path / "facts")
        main(["facts", figure1_file, "--out", out_dir])
        assert main([
            "analyze", "--facts-dir", out_dir, "--config", "1-call",
            "--var", "T.main/x1",
        ]) == 0
        assert "T.main/x1 -> {h1}" in capsys.readouterr().out


class TestEmitCommand:
    def test_emit_to_stdout(self, figure5_file, capsys):
        assert main(["emit", figure5_file, "--config", "1-call+H"]) == 0
        out = capsys.readouterr().out
        assert "pts__" in out
        assert ":-" in out

    def test_emitted_program_parses(self, figure5_file, tmp_path, capsys):
        out_file = str(tmp_path / "analysis.dl")
        assert main([
            "emit", figure5_file, "--config", "1-call+H", "--out", out_file,
        ]) == 0
        from repro.datalog.parser import parse_datalog

        with open(out_file) as handle:
            program = parse_datalog(handle.read())
        assert len(program.rules) > 100


class TestFigure6Command:
    def test_small_table(self, capsys):
        assert main(["figure6", "--scale", "1"]) == 0
        out = capsys.readouterr().out
        assert "2-object+H" in out
        assert "Mean" in out

    def test_json_export(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "figure6.json"
        assert main([
            "figure6", "--scale", "1", "--json", str(out_file),
        ]) == 0
        assert "wrote JSON" in capsys.readouterr().out
        data = json.loads(out_file.read_text())
        assert data["schema"] == "repro-figure6/1"
        assert data["scale"] == 1
        assert data["engine"] == "solver"
        assert set(data["geomean"]) == set(data["configurations"])
        cell = data["cells"][0]
        assert cell["benchmark"] in data["benchmarks"]
        for side in ("context_string", "transformer_string"):
            measurement = cell[side]
            assert set(measurement["sizes"]) == {"pts", "hpts", "call"}
            assert measurement["total"] == sum(measurement["sizes"].values())
            assert measurement["seconds"] > 0
            assert measurement["counters"]["pts"]["inserts"] > 0
        assert set(cell["size_decrease"]) == {"pts", "hpts", "call"}


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self, figure1_file):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "analyze", figure1_file,
             "--config", "1-call", "--var", "T.main/x1"],
            capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 0
        assert "T.main/x1 -> {h1}" in completed.stdout

    def test_help_lists_subcommands(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, timeout=60,
        )
        assert completed.returncode == 0
        for command in ("analyze", "query", "facts", "emit", "figure6"):
            assert command in completed.stdout
