"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main
from repro.frontend.paper_programs import FIGURE_1, FIGURE_5


@pytest.fixture()
def figure1_file(tmp_path):
    path = tmp_path / "figure1.java"
    path.write_text(FIGURE_1)
    return str(path)


@pytest.fixture()
def figure5_file(tmp_path):
    path = tmp_path / "figure5.java"
    path.write_text(FIGURE_5)
    return str(path)


class TestAnalyzeCommand:
    def test_points_to_query(self, figure1_file, capsys):
        assert main([
            "analyze", figure1_file, "--config", "1-call",
            "--var", "T.main/x1", "--var", "T.main/x2",
        ]) == 0
        out = capsys.readouterr().out
        assert "T.main/x1 -> {h1}" in out
        assert "T.main/x2 -> {h1, h2}" in out

    def test_full_dump_and_stats(self, figure1_file, capsys):
        assert main(["analyze", figure1_file, "--stats", "--call-graph"]) == 0
        out = capsys.readouterr().out
        assert "T.main/x1" in out
        assert "call graph:" in out
        assert "|pts|=" in out
        assert "2-object+H" in out

    def test_stats_prints_store_counters(self, figure1_file, capsys):
        assert main(["analyze", figure1_file, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "relation" in out and "inserts" in out and "probes" in out
        counters = {}
        for line in out.splitlines():
            parts = line.split()
            if parts and parts[0] in ("pts", "hpts", "call"):
                counters[parts[0]] = [int(v) for v in parts[1:]]
        assert set(counters) == {"pts", "hpts", "call"}
        for name, (rows, inserts, dedup, probes, *_rest) in counters.items():
            assert inserts > 0, name
            assert probes > 0, name
        assert counters["pts"][2] > 0  # pts sees dedup hits on Figure 1

    def test_context_string_abstraction(self, figure5_file, capsys):
        assert main([
            "analyze", figure5_file, "--config", "1-call+H",
            "--abstraction", "cs", "--stats",
        ]) == 0
        assert "context-string" in capsys.readouterr().out

    def test_missing_input_errors(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--config", "1-call"])

    def test_unknown_config_rejected(self, figure1_file):
        with pytest.raises(SystemExit):
            main(["analyze", figure1_file, "--config", "9-quantum"])


class TestQueryCommand:
    def test_demand_query(self, figure1_file, capsys):
        assert main([
            "query", figure1_file, "--config", "1-call",
            "--var", "T.main/x1",
        ]) == 0
        out = capsys.readouterr().out
        assert "T.main/x1 -> {h1}" in out
        assert "demand slice:" in out

    def test_query_matches_analyze(self, figure1_file, capsys):
        main(["query", figure1_file, "--config", "2-object+H",
              "--var", "T.main/x2"])
        query_out = capsys.readouterr().out
        main(["analyze", figure1_file, "--config", "2-object+H",
              "--var", "T.main/x2"])
        analyze_out = capsys.readouterr().out
        assert "T.main/x2 -> {h1}" in query_out
        assert "T.main/x2 -> {h1}" in analyze_out

    def test_dot_export(self, figure1_file, tmp_path, capsys):
        out = tmp_path / "cg.dot"
        assert main([
            "analyze", figure1_file, "--config", "1-call", "--dot", str(out),
        ]) == 0
        text = out.read_text()
        assert text.startswith("digraph")
        assert '"T.id"' in text


class TestFactsCommand:
    def test_generates_directory(self, figure1_file, tmp_path, capsys):
        out_dir = str(tmp_path / "facts")
        assert main(["facts", figure1_file, "--out", out_dir]) == 0
        assert os.path.exists(os.path.join(out_dir, "AssignHeapAllocation.facts"))
        assert "wrote" in capsys.readouterr().out

    def test_roundtrip_through_analyze(self, figure1_file, tmp_path, capsys):
        out_dir = str(tmp_path / "facts")
        main(["facts", figure1_file, "--out", out_dir])
        assert main([
            "analyze", "--facts-dir", out_dir, "--config", "1-call",
            "--var", "T.main/x1",
        ]) == 0
        assert "T.main/x1 -> {h1}" in capsys.readouterr().out


class TestEmitCommand:
    def test_emit_to_stdout(self, figure5_file, capsys):
        assert main(["emit", figure5_file, "--config", "1-call+H"]) == 0
        out = capsys.readouterr().out
        assert "pts__" in out
        assert ":-" in out

    def test_emitted_program_parses(self, figure5_file, tmp_path, capsys):
        out_file = str(tmp_path / "analysis.dl")
        assert main([
            "emit", figure5_file, "--config", "1-call+H", "--out", out_file,
        ]) == 0
        from repro.datalog.parser import parse_datalog

        with open(out_file) as handle:
            program = parse_datalog(handle.read())
        assert len(program.rules) > 100


class TestFigure6Command:
    def test_small_table(self, capsys):
        assert main(["figure6", "--scale", "1"]) == 0
        out = capsys.readouterr().out
        assert "2-object+H" in out
        assert "Mean" in out

    def test_json_export(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "figure6.json"
        assert main([
            "figure6", "--scale", "1", "--json", str(out_file),
            "--no-query-latency", "--no-incremental", "--no-checks",
            "--no-parallel", "--no-kernels", "--no-serving",
        ]) == 0
        assert "wrote JSON" in capsys.readouterr().out
        data = json.loads(out_file.read_text())
        assert data["schema"] == "repro-figure6/8"
        assert data["query_latency"] is None  # suppressed by the flag
        assert data["incremental"] is None  # suppressed by the flag
        assert data["checks"] is None  # suppressed by the flag
        assert data["parallel"] is None  # suppressed by the flag
        assert data["kernels"] is None  # suppressed by the flag
        assert data["serving"] is None  # suppressed by the flag
        assert data["scale"] == 1
        assert data["engine"] == "solver"
        assert set(data["geomean"]) == set(data["configurations"])
        cell = data["cells"][0]
        assert cell["benchmark"] in data["benchmarks"]
        for side in ("context_string", "transformer_string"):
            measurement = cell[side]
            assert set(measurement["sizes"]) == {"pts", "hpts", "call"}
            assert measurement["total"] == sum(measurement["sizes"].values())
            assert measurement["seconds"] > 0
            assert measurement["counters"]["pts"]["inserts"] > 0
        assert set(cell["size_decrease"]) == {"pts", "hpts", "call"}

    def test_json_query_latency(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "figure6.json"
        assert main([
            "figure6", "--scale", "1", "--json", str(out_file),
        ]) == 0
        capsys.readouterr()
        data = json.loads(out_file.read_text())
        latency = data["query_latency"]
        assert latency["configuration"] == "2-object+H"
        for benchmark, entry in latency["benchmarks"].items():
            assert entry["warm"]["points_to"]["count"] > 0, benchmark
            assert entry["cold"]["points_to"]["count"] > 0, benchmark
        incremental = data["incremental"]
        assert incremental["single_edit"]["speedup"] > 0
        for benchmark, churn in incremental["benchmarks"].items():
            assert churn["edits"] > 0, benchmark
            assert churn["fallbacks"] == 0, benchmark
        checks = data["checks"]
        assert checks["schema"] == "repro-check-audit/1"
        assert checks["configurations"][0] == "insensitive"
        for benchmark, audit in checks["benchmarks"].items():
            assert audit["abstractions_agree"], benchmark
            assert all(audit["monotone"].values()), benchmark
            assert audit["cells"], benchmark


class TestSnapshotWorkflow:
    def test_save_lint_query_round_trip(self, figure1_file, tmp_path, capsys):
        snap = str(tmp_path / "figure1.snap")
        assert main([
            "analyze", figure1_file, "--save-snapshot", snap,
        ]) == 0
        assert "wrote snapshot" in capsys.readouterr().out

        assert main(["lint", snap]) == 0
        lint_out = capsys.readouterr().out
        assert "repro-snapshot/2" in lint_out
        assert "(verified)" in lint_out
        assert "snapshot ok" in lint_out

        assert main(["query", "--snapshot", snap, "--var", "T.main/x2"]) == 0
        query_out = capsys.readouterr().out
        assert "T.main/x2 -> {h1}" in query_out
        assert "snapshot served: 1 warm" in query_out

    def test_snapshot_query_skips_solving(self, figure1_file, tmp_path,
                                          capsys):
        from repro.core.solver import Solver

        snap = str(tmp_path / "figure1.snap")
        main(["analyze", figure1_file, "--save-snapshot", snap])
        capsys.readouterr()
        main(["analyze", figure1_file, "--var", "T.main/x1"])
        analyze_line = capsys.readouterr().out.strip()
        before = Solver.invocations
        assert main([
            "query", "--snapshot", snap,
            "--var", "T.main/x1", "--var", "T.main/x2",
        ]) == 0
        assert Solver.invocations == before
        out = capsys.readouterr().out
        assert analyze_line in out  # parity with the exhaustive solver

    def test_lint_rejects_tampered_snapshot(self, figure1_file, tmp_path,
                                            capsys):
        import json

        snap = tmp_path / "figure1.snap"
        main(["analyze", figure1_file, "--save-snapshot", str(snap)])
        capsys.readouterr()
        document = json.loads(snap.read_text())
        document["body"]["counts"]["pts"] += 1
        snap.write_text(json.dumps(document))
        assert main(["lint", str(snap)]) == 1
        assert "error[snapshot]" in capsys.readouterr().err

    def test_query_missing_snapshot_errors(self, tmp_path, capsys):
        assert main([
            "query", "--snapshot", str(tmp_path / "absent.snap"),
            "--var", "x",
        ]) == 1
        assert "repro query:" in capsys.readouterr().err


class TestIncrementalCli:
    @pytest.fixture()
    def figure1_edited_file(self, tmp_path):
        path = tmp_path / "figure1_edited.java"
        path.write_text(FIGURE_1.replace(
            "Object z = b.f;",
            "Object z = b.f;\n        Object w = y;",
        ))
        return str(path)

    def test_analyze_diff(self, figure1_file, figure1_edited_file, capsys):
        assert main([
            "analyze", "--diff", figure1_file, figure1_edited_file,
            "--config", "1-call",
        ]) == 0
        out = capsys.readouterr().out
        assert "fact delta" in out
        assert "assign: +1" in out
        assert "derived changes: pts +1/-0" in out
        assert "parity with scratch solve: ok" in out
        assert "incremental" in out and "scratch" in out

    def test_analyze_diff_empty_delta(self, figure1_file, capsys):
        assert main([
            "analyze", "--diff", figure1_file, figure1_file,
        ]) == 0
        out = capsys.readouterr().out
        assert "(empty delta)" in out
        assert "parity" not in out  # nothing to solve

    def test_query_snapshot_warns_when_stale(self, figure1_file,
                                             figure1_edited_file, tmp_path,
                                             capsys):
        snap = str(tmp_path / "figure1.snap")
        main(["analyze", figure1_file, "--save-snapshot", snap])
        capsys.readouterr()
        assert main([
            "query", "--snapshot", snap, figure1_edited_file,
            "--var", "T.main/x2",
        ]) == 0
        captured = capsys.readouterr()
        assert "generation 0" in captured.out
        assert "is stale" in captured.err
        assert "1 fact(s) missing" in captured.err

    def test_query_snapshot_no_warning_when_fresh(self, figure1_file,
                                                  tmp_path, capsys):
        snap = str(tmp_path / "figure1.snap")
        main(["analyze", figure1_file, "--save-snapshot", snap])
        capsys.readouterr()
        assert main([
            "query", "--snapshot", snap, figure1_file,
            "--var", "T.main/x2",
        ]) == 0
        assert capsys.readouterr().err == ""


class TestServeCommand:
    def test_stdio_session(self, figure1_file, tmp_path):
        import json
        import subprocess
        import sys

        snap = str(tmp_path / "figure1.snap")
        main(["analyze", figure1_file, "--save-snapshot", snap])
        requests = "\n".join(json.dumps(r) for r in [
            {"id": 1, "op": "ping"},
            {"id": 2, "op": "points_to", "var": "T.main/x2"},
            {"id": 3, "op": "shutdown"},
        ]) + "\n"
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--snapshot", snap],
            input=requests, capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 0
        assert "repro serve: ready" in completed.stderr
        responses = [
            json.loads(line) for line in completed.stdout.splitlines()
        ]
        assert responses[0]["result"] == "repro-serve/1"
        assert responses[1]["result"] == ["h1"]
        assert responses[1]["meta"]["path"] == "snapshot"
        assert responses[2]["result"] == "bye"


class TestQueryJson:
    def test_json_document_on_stdout(self, figure1_file, capsys):
        import json

        assert main([
            "query", figure1_file, "--config", "2-object+H",
            "--var", "T.main/x1", "--var", "T.main/x2", "--json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro-query/1"
        assert document["config"] == "2-object+H/transformer-string"
        assert document["generation"] == 0
        assert document["snapshot"] is None
        answers = {q["var"]: q["answer"] for q in document["queries"]}
        # Figure 1 under object sensitivity: x1/y1 share the receiver
        # (conflated), x2 is precise.
        assert answers == {"T.main/x1": ["h1", "h2"], "T.main/x2": ["h1"]}
        for query in document["queries"]:
            assert query["kind"] == "points_to"
            assert query["micros"] >= 0
            assert query["cached"] is False
            assert query["path"] in ("demand", "solved")

    def test_json_from_snapshot_is_pure_json(self, figure1_file, tmp_path,
                                             capsys):
        import json

        snap = str(tmp_path / "figure1.snap")
        main(["analyze", figure1_file, "--save-snapshot", snap])
        capsys.readouterr()
        assert main([
            "query", "--snapshot", snap, "--var", "T.main/x2", "--json",
        ]) == 0
        out = capsys.readouterr().out
        document = json.loads(out)  # no human header mixed in
        assert document["snapshot"] == snap
        assert document["queries"][0]["path"] == "snapshot"

    def test_text_output_stays_default(self, figure1_file, capsys):
        assert main([
            "query", figure1_file, "--var", "T.main/x2",
        ]) == 0
        out = capsys.readouterr().out
        assert "T.main/x2 -> {h1}" in out
        assert "demand slice:" in out


class TestDiffParityGate:
    @pytest.fixture()
    def figure1_edited_file(self, tmp_path):
        path = tmp_path / "figure1_edited.java"
        path.write_text(FIGURE_1.replace(
            "Object z = b.f;",
            "Object z = b.f;\n        Object w = y;",
        ))
        return str(path)

    def test_parity_mismatch_exits_nonzero(self, figure1_file,
                                           figure1_edited_file, capsys,
                                           monkeypatch):
        from repro.incremental import IncrementalSolver

        original = IncrementalSolver.relation_rows

        def corrupted(self):
            rows = {kind: set(r) for kind, r in original(self).items()}
            rows["pts"].add(("bogus/var", "bogus-heap"))
            return rows

        monkeypatch.setattr(IncrementalSolver, "relation_rows", corrupted)
        assert main([
            "analyze", "--diff", figure1_file, figure1_edited_file,
            "--config", "1-call",
        ]) == 1
        assert "parity with scratch solve: MISMATCH" in (
            capsys.readouterr().out
        )


class TestCheckCommand:
    @pytest.fixture()
    def eventbus_file(self, tmp_path):
        from tests.checkers.test_checks import _example_program

        path = tmp_path / "eventbus.java"
        path.write_text(_example_program())
        return str(path)

    def test_clean_program_passes(self, figure1_file, capsys):
        assert main(["check", figure1_file]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_findings_render_but_default_gate_is_error(self, eventbus_file,
                                                       capsys):
        # The event bus has warnings and infos, no errors: default
        # --fail-on error keeps the exit clean.
        assert main(["check", eventbus_file]) == 0
        out = capsys.readouterr().out
        assert "CK301" in out
        assert "CK401" in out
        assert "[races]" in out

    def test_fail_on_warning_gates_the_exit(self, eventbus_file, capsys):
        assert main(["check", eventbus_file, "--fail-on", "warning"]) == 1
        captured = capsys.readouterr()
        assert "repro check: failing" in captured.err
        assert main(["check", eventbus_file, "--fail-on", "never"]) == 0

    def test_checks_subset_and_unknown_selector(self, eventbus_file,
                                                capsys):
        assert main([
            "check", eventbus_file, "--checks", "races,CK4",
            "--fail-on", "never",
        ]) == 0
        out = capsys.readouterr().out
        assert "[races]" in out and "[leaks]" in out
        assert "[devirt]" not in out
        assert main(["check", eventbus_file, "--checks", "bogus"]) == 2
        assert "unknown checker" in capsys.readouterr().err

    def test_json_report_round_trips_through_lint(self, eventbus_file,
                                                  tmp_path, capsys):
        import json

        report_path = tmp_path / "report.json"
        assert main([
            "check", eventbus_file, "--config", "insensitive",
            "--json", str(report_path),
        ]) == 0
        capsys.readouterr()
        document = json.loads(report_path.read_text())
        assert document["schema"] == "repro-check/1"
        subjects = [
            f["subject"] for f in document["body"]["findings"]
        ]
        assert "cReplay" in subjects
        assert main(["lint", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "check report ok: 0 errors, 0 warnings" in out
        assert "(verified)" in out

    def test_lint_rejects_tampered_report(self, eventbus_file, tmp_path,
                                          capsys):
        import json

        report_path = tmp_path / "report.json"
        main(["check", eventbus_file, "--json", str(report_path)])
        capsys.readouterr()
        document = json.loads(report_path.read_text())
        document["body"]["findings"] = []
        report_path.write_text(json.dumps(document))
        assert main(["lint", str(report_path)]) == 1
        assert "error[check-report]" in capsys.readouterr().err

    def test_check_from_snapshot_matches_source(self, eventbus_file,
                                                tmp_path, capsys):
        import json

        snap = str(tmp_path / "eventbus.snap")
        main(["analyze", eventbus_file, "--save-snapshot", snap])
        live_path = tmp_path / "live.json"
        snap_path = tmp_path / "snap.json"
        assert main([
            "check", eventbus_file, "--json", str(live_path),
        ]) == 0
        assert main([
            "check", "--snapshot", snap, "--json", str(snap_path),
        ]) == 0
        capsys.readouterr()
        live = json.loads(live_path.read_text())
        loaded = json.loads(snap_path.read_text())
        assert live["digest"] == loaded["digest"]

    def test_missing_snapshot_exits_two(self, tmp_path, capsys):
        assert main([
            "check", "--snapshot", str(tmp_path / "absent.snap"),
        ]) == 2
        assert "repro check:" in capsys.readouterr().err

    def test_audit_sweeps_and_passes(self, eventbus_file, tmp_path, capsys):
        import json

        audit_path = tmp_path / "audit.json"
        assert main([
            "check", eventbus_file, "--audit", "--json", str(audit_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "monotone vs insensitive" in out
        assert "abstractions agree" in out
        document = json.loads(audit_path.read_text())
        assert document["schema"] == "repro-check-audit/1"
        assert all(document["monotone"].values())
        assert document["abstractions_agree"]

    def test_explain_prints_witness_derivations(self, eventbus_file,
                                                capsys):
        assert main([
            "check", eventbus_file, "--config", "insensitive",
            "--checks", "downcast", "--explain", "--fail-on", "never",
        ]) == 0
        out = capsys.readouterr().out
        assert "CK101" in out
        # --explain re-solves with provenance: witnesses expand into
        # derivation trees instead of the "solve with provenance" hint.
        assert "track_provenance" not in out


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self, figure1_file):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "analyze", figure1_file,
             "--config", "1-call", "--var", "T.main/x1"],
            capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 0
        assert "T.main/x1 -> {h1}" in completed.stdout

    def test_help_lists_subcommands(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, timeout=60,
        )
        assert completed.returncode == 0
        for command in (
            "analyze", "query", "facts", "emit", "figure6", "serve",
        ):
            assert command in completed.stdout


class TestAnalyzeShards:
    def test_shards_parity_and_certificate(self, figure1_file, capsys):
        assert main([
            "analyze", figure1_file, "--config", "1-call",
            "--shards", "4", "--in-process",
        ]) == 0
        out = capsys.readouterr().out
        assert "shard plan (key=heap):" in out
        assert "parity with sequential engine: ok" in out
        assert "cross-shard probes 0" in out
        assert "ownership violations 0" in out

    def test_shards_prints_points_to_sets(self, figure1_file, capsys):
        assert main([
            "analyze", figure1_file, "--config", "1-call",
            "--shards", "2", "--in-process", "--var", "T.main/x1",
        ]) == 0
        assert "T.main/x1 -> {h1}" in capsys.readouterr().out

    def test_shard_key_is_selectable(self, figure1_file, capsys):
        assert main([
            "analyze", figure1_file, "--config", "1-call",
            "--shards", "2", "--in-process", "--shard-key", "variable",
        ]) == 0
        assert "shard plan (key=variable):" in capsys.readouterr().out


class TestAnalyzeBackend:
    @pytest.mark.parametrize("backend", ["engine", "compiled", "kernel"])
    def test_backend_parity_and_points_to(self, figure1_file, backend,
                                          capsys):
        assert main([
            "analyze", figure1_file, "--config", "1-call",
            "--backend", backend, "--var", "T.main/x1",
        ]) == 0
        out = capsys.readouterr().out
        assert "T.main/x1 -> {h1}" in out
        assert f"{backend} backend:" in out
        assert "parity with worklist solver: ok" in out

    def test_kernel_backend_stats_and_call_graph(self, figure1_file,
                                                 capsys):
        assert main([
            "analyze", figure1_file, "--backend", "kernel",
            "--stats", "--call-graph",
        ]) == 0
        out = capsys.readouterr().out
        assert "call graph:" in out
        assert "rule_evaluations=" in out
        assert "relation" in out and "inserts" in out

    def test_backend_worklist_is_default_path(self, figure1_file, capsys):
        assert main([
            "analyze", figure1_file, "--config", "1-call",
            "--backend", "worklist", "--var", "T.main/x1",
        ]) == 0
        out = capsys.readouterr().out
        assert "T.main/x1 -> {h1}" in out
        assert "parity with worklist solver" not in out

    def test_mismatch_exits_nonzero(self, figure1_file, capsys,
                                    monkeypatch):
        from repro.compile import emit

        monkeypatch.setattr(
            emit.CompiledResult, "pts",
            property(lambda self: (
                self.relations.get("pts", set())
                | {("bogus/var", "bogus-heap", "ctx")}
            )),
        )
        assert main([
            "analyze", figure1_file, "--config", "1-call",
            "--backend", "kernel",
        ]) == 1
        assert "parity with worklist solver: MISMATCH" in (
            capsys.readouterr().out
        )


class TestLintShardPlan:
    @pytest.fixture()
    def datalog_file(self, tmp_path):
        path = tmp_path / "pointer.dl"
        path.write_text(
            "pts(V, H) :- assign_new(V, H, M).\n"
            "pts(V, H) :- assign(V, W), pts(W, H).\n"
        )
        return str(path)

    def test_plan_report_for_dl_file(self, datalog_file, capsys):
        assert main(["lint", datalog_file, "--shard-plan", "-v"]) == 0
        out = capsys.readouterr().out
        assert "shard plan (key=heap):" in out
        assert "local" in out and "broadcast" in out

    def test_plan_for_emitted_configuration(self, figure1_file, capsys):
        assert main([
            "lint", figure1_file, "--shard-plan", "--config", "1-call",
        ]) == 0
        out = capsys.readouterr().out
        assert "shard plan (key=heap):" in out

    def test_dl4xx_diagnostics_reach_the_report(self, datalog_file, capsys):
        assert main([
            "lint", datalog_file, "--shard-plan", "--shard-key",
            "variable", "-v",
        ]) == 0
        out = capsys.readouterr().out
        assert "DL402" in out  # pts probed off-anchor forces a replica
        assert "DL403" in out  # ... and pts is recursive


class TestLintJson:
    def test_document_shape_and_sorting(self, figure1_file, tmp_path,
                                         capsys):
        import json

        out_path = tmp_path / "lint.json"
        assert main([
            "lint", figure1_file, "--shard-plan", "--config", "1-call",
            "--json", str(out_path),
        ]) == 0
        document = json.loads(out_path.read_text())
        assert document["schema"] == "repro-lint/1"
        assert document["ok"] is True
        subjects = document["subjects"]
        assert [s["subject"] for s in subjects][0] == figure1_file
        emitted = subjects[1]
        assert emitted["shard_plan"]["schema"] == "repro-shard-plan/1"
        diagnostics = emitted["diagnostics"]
        keys = [
            (d["line"] or 0, d["column"] or 0, d["code"], d["message"])
            for d in diagnostics
        ]
        assert keys == sorted(keys)

    def test_output_is_byte_stable(self, figure1_file, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        for path in (first, second):
            assert main([
                "lint", figure1_file, "--shard-plan", "--config",
                "1-call", "--json", str(path),
            ]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_stdout_json(self, figure1_file, capsys):
        import json

        assert main(["lint", figure1_file, "--json", "-"]) == 0
        out = capsys.readouterr().out
        start = out.index("{")
        document = json.loads(out[start:])
        assert document["schema"] == "repro-lint/1"

    def test_dl201_witness_carries_position(self, tmp_path, capsys):
        import json

        path = tmp_path / "cycle.dl"
        path.write_text(
            "n(1).\n"
            "p(X) :- n(X), !q(X).\n"
            "q(X) :- n(X), !p(X).\n"
        )
        assert main(["lint", str(path), "--json", "-"]) == 1
        out = capsys.readouterr().out
        start = out.index("{")
        document = json.loads(out[start:])
        [subject] = document["subjects"]
        dl201 = [
            d for d in subject["diagnostics"] if d["code"] == "DL201"
        ]
        assert dl201, "expected DL201 findings"
        for diagnostic in dl201:
            assert diagnostic["line"] in (2, 3)
            assert "(at " in diagnostic["message"]
