"""The documentation's runnable snippets must actually run.

Extracts ``>>>`` doctest blocks from ``docs/walkthrough.md`` and
executes them, and sanity-checks the claims the prose makes about
emitted Datalog.
"""

import doctest
import os
import re

DOCS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "docs")


def _doctest_blocks(path):
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    return [
        block
        for block in re.findall(r"```python\n(.*?)```", text, re.S)
        if ">>>" in block
    ]


class TestWalkthrough:
    def test_doctest_blocks_pass(self):
        path = os.path.join(DOCS_DIR, "walkthrough.md")
        blocks = _doctest_blocks(path)
        assert blocks, "walkthrough should contain runnable snippets"
        parser = doctest.DocTestParser()
        runner = doctest.DocTestRunner(optionflags=doctest.ELLIPSIS)
        for index, block in enumerate(blocks):
            test = parser.get_doctest(
                block, {}, f"walkthrough[{index}]", path, 0
            )
            runner.run(test)
        assert runner.failures == 0

    def test_quoted_datalog_rule_is_emitted(self):
        from repro.compile.emit import compile_transformer_analysis
        from repro.core.sensitivity import Flavour
        from repro.datalog.parser import format_rule
        from repro.frontend.factgen import facts_from_source
        from repro.frontend.paper_programs import FIGURE_5

        compiled = compile_transformer_analysis(
            facts_from_source(FIGURE_5), Flavour.CALL_SITE, 1, 1
        )
        rules = {format_rule(r) for r in compiled.program.rules}
        assert (
            "pts__xe(Y, H, Bx0, Ce0) :- hpts__xe(G, F, H, Bx0, Cx0),"
            " hload__xe(G, F, Y, Cx0, Ce0)." in rules
        )


class TestReadmeClaims:
    def test_example_table_files_exist(self):
        readme = os.path.join(DOCS_DIR, os.pardir, "README.md")
        with open(readme, encoding="utf-8") as handle:
            text = handle.read()
        for name in re.findall(r"\| `(\w+\.py)` \|", text):
            assert os.path.exists(
                os.path.join(DOCS_DIR, os.pardir, "examples", name)
            ), name

    def test_referenced_docs_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert os.path.exists(os.path.join(DOCS_DIR, os.pardir, name))
