"""CLI surfaces of the DL5xx cost analyzer and the closure certifier.

``repro lint --cost`` (text and JSON), the self-check sniffers for
``repro-cost-plan/1`` and ``repro-kernel-cert/1`` documents, and
``repro analyze --magic`` — the demand-driven query path that runs the
cost pass over the transformed program and parity-checks its answers
against the full solve.
"""

import json

import pytest

from repro.cli import main
from repro.datalog.cost import analyze_cost, verify_cost_plan
from repro.datalog.parser import parse_datalog
from repro.frontend.paper_programs import FIGURE_1

#: A .dl program whose facts make one reorder clearly profitable
#: (DL503) and whose second rule is a live cross product (DL501).
COSTLY_DL = """
big("a0", "b0"). big("a1", "b1"). big("a2", "b2"). big("a3", "b3").
big("a4", "b0"). big("a5", "b1"). big("a6", "b2"). big("a7", "b3").
tiny("a1").
other("z0"). other("z1").

goal(X, Y) :- big(X, Y), tiny(X).
cross(X, Z) :- big(X, Y), other(Z).
"""


@pytest.fixture()
def costly_file(tmp_path):
    path = tmp_path / "costly.dl"
    path.write_text(COSTLY_DL)
    return str(path)


@pytest.fixture()
def figure1_file(tmp_path):
    path = tmp_path / "figure1.java"
    path.write_text(FIGURE_1)
    return str(path)


class TestLintCost:
    def test_text_output_reports_plan_and_codes(self, costly_file, capsys):
        assert main(["lint", costly_file, "--cost"]) == 0
        out = capsys.readouterr().out
        # The warning is printed in full; DL502/DL503/DL504 are notes,
        # summarized in the closing count line.
        assert "DL501" in out
        assert "cost plan: 2 rules, 2 reordered" in out
        assert "note(s)" in out

    def test_json_embeds_verifiable_cost_plan(self, costly_file, tmp_path):
        report_path = tmp_path / "lint.json"
        assert main([
            "lint", costly_file, "--cost", "--json", str(report_path),
        ]) == 0
        document = json.loads(report_path.read_text())
        assert document["schema"] == "repro-lint/1"
        (entry,) = document["subjects"]
        summary = verify_cost_plan(entry["cost_plan"])
        assert summary["reordered"] >= 1
        codes = {d["code"] for d in entry["diagnostics"]}
        assert {"DL501", "DL503"} <= codes

    def test_without_flag_no_cost_findings(self, costly_file, capsys):
        assert main(["lint", costly_file]) == 0
        assert "DL503" not in capsys.readouterr().out


class TestCostPlanSelfCheck:
    def _plan_document(self):
        program = parse_datalog(COSTLY_DL, validate=False)
        return analyze_cost(program).to_json()

    def test_valid_document_passes(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(self._plan_document()))
        assert main(["lint", str(path)]) == 0
        assert "cost plan" in capsys.readouterr().out

    def test_corrupted_digest_fails(self, tmp_path, capsys):
        document = self._plan_document()
        document["digest"] = "sha256:" + "0" * 64
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(document))
        assert main(["lint", str(path)]) == 1
        assert "digest" in capsys.readouterr().err


class TestKernelCertSelfCheck:
    def _cert_document(self):
        from repro.compile.closure import certify_kernels
        from repro.core.sensitivity import Flavour

        return certify_kernels(Flavour.CALL_SITE, 1, 1).to_json()

    def test_valid_certificate_passes(self, tmp_path, capsys):
        path = tmp_path / "cert.json"
        path.write_text(json.dumps(self._cert_document()))
        assert main(["lint", str(path)]) == 0
        assert "kernel certificate ok" in capsys.readouterr().out

    def test_tampered_certificate_fails(self, tmp_path, capsys):
        document = self._cert_document()
        document["body"]["certified"] = False
        path = tmp_path / "cert.json"
        path.write_text(json.dumps(document))
        assert main(["lint", str(path)]) == 1
        assert "digest" in capsys.readouterr().err


class TestAnalyzeMagic:
    def test_query_parity_and_cost_pass(self, figure1_file, capsys):
        assert main([
            "analyze", figure1_file, "--config", "1-call",
            "--magic", 'pts__("T.main/x", _)',
        ]) == 0
        out = capsys.readouterr().out
        assert "parity with full solve: ok" in out
        assert "magic program:" in out
        assert "cost pass (DL5xx)" in out

    def test_malformed_query_exits_nonzero(self, figure1_file):
        with pytest.raises(SystemExit):
            main(["analyze", figure1_file, "--magic", "pts__"])

    def test_wrong_arity_is_reported(self, figure1_file, capsys):
        assert main([
            "analyze", figure1_file, "--config", "1-call",
            "--magic", "pts__(a, b, c, d, e)",
        ]) == 2
        assert "arity" in capsys.readouterr().err
