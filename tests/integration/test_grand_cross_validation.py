"""The grand cross-validation gate.

One mid-size workload, every implementation path, one test file: if
anything in the stack drifts out of agreement, this is the test that
fails first.  (The per-module suites localize the fault.)
"""

import pytest

from repro import analyze, config_by_name
from repro.bench.concrete import run_concrete
from repro.bench.workloads import dacapo_program
from repro.cfl.pag import build_pag
from repro.cfl.solver import FlowsToSolver
from repro.compile.emit import (
    compile_context_string_analysis,
    compile_transformer_analysis,
    compile_transformer_analysis_naive,
)
from repro.core.demand import DemandPointerAnalysis
from repro.core.sensitivity import Flavour
from repro.frontend.factgen import generate_facts
from repro.frontend.parser import parse_program
from repro.frontend.printer import format_program


@pytest.fixture(scope="module")
def workload():
    program = dacapo_program("luindex", scale=1)
    return program, generate_facts(program)


@pytest.fixture(scope="module")
def exhaustive(workload):
    _, facts = workload
    return {
        (name, abstraction): analyze(facts, config_by_name(name, abstraction))
        for name in ("insensitive", "1-call+H", "2-object+H")
        for abstraction in ("context-string", "transformer-string")
    }


def test_abstractions_agree_ci(exhaustive):
    for name in ("insensitive", "1-call+H", "2-object+H"):
        cs = exhaustive[(name, "context-string")]
        ts = exhaustive[(name, "transformer-string")]
        assert cs.pts_ci() == ts.pts_ci(), name
        assert cs.hpts_ci() == ts.hpts_ci(), name
        assert cs.call_graph() == ts.call_graph(), name


def test_all_datalog_paths_match_solver(workload, exhaustive):
    _, facts = workload
    solver_ts = exhaustive[("1-call+H", "transformer-string")]
    solver_cs = exhaustive[("1-call+H", "context-string")]

    specialized = compile_transformer_analysis(facts, Flavour.CALL_SITE, 1, 1)
    for backend in ("interpreted", "compiled"):
        run = specialized.run(backend=backend)
        assert run.pts == solver_ts.pts, backend
        assert run.call == solver_ts.call, backend
        assert run.texc == solver_ts.texc, backend

    naive = compile_transformer_analysis_naive(
        facts, Flavour.CALL_SITE, 1, 1
    ).run()
    assert naive.pts == solver_ts.pts

    strings = compile_context_string_analysis(
        facts, Flavour.CALL_SITE, 1, 1
    ).run(backend="compiled")
    assert strings.pts == solver_cs.pts
    assert strings.call == solver_cs.call


def test_cfl_matches_m0(workload, exhaustive):
    _, facts = workload
    insensitive = exhaustive[("insensitive", "transformer-string")]
    solver = FlowsToSolver(build_pag(facts)).solve()
    assert solver.variable_flows_to_pairs() == {
        (h, y) for (y, h) in insensitive.pts_ci()
    }


def test_demand_matches_exhaustive(workload, exhaustive):
    _, facts = workload
    full = exhaustive[("2-object+H", "transformer-string")]
    demand = DemandPointerAnalysis(facts, config_by_name("2-object+H"))
    variables = sorted({y for (y, _) in full.pts_ci()})[:12]
    for var in variables:
        assert demand.points_to(var) == full.points_to(var), var


def test_concrete_execution_is_covered(workload, exhaustive):
    program, _ = workload
    observed = run_concrete(program, step_budget=30000)
    for key, result in exhaustive.items():
        pts = result.pts_ci()
        for binding in observed.var_points_to:
            assert binding in pts, (key, binding)
        call_graph = result.call_graph()
        for edge in observed.call_edges:
            assert edge in call_graph, (key, edge)


def test_printer_roundtrip_preserves_analysis(workload, exhaustive):
    program, _ = workload
    reparsed = parse_program(format_program(program))
    original = exhaustive[("2-object+H", "transformer-string")]
    redone = analyze(generate_facts(reparsed), config_by_name("2-object+H"))
    def tails(res):
        out = {}
        for (var, heap) in res.pts_ci():
            out.setdefault(var.rsplit("/", 1)[-1].replace("$", "t_"),
                           set()).add(heap)
        return out
    assert tails(original) == tails(redone)
    assert original.call_graph() == redone.call_graph()


def test_transformer_strings_win_on_facts(exhaustive):
    for name in ("1-call+H", "2-object+H"):
        cs = exhaustive[(name, "context-string")]
        ts = exhaustive[(name, "transformer-string")]
        assert ts.total_facts() < cs.total_facts(), name
