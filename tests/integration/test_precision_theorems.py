"""Experiments E6/E17: the soundness and precision theorems (Section 6).

* Theorem 6.1 (soundness): the context-insensitive projection of a
  transformer-string instantiation over-approximates the true relation —
  checked here against the context-string projection at the same levels
  (transformer CI results are never smaller in the type-sensitive case
  and exactly equal in the call-site/object cases on our corpus).
* Theorem 6.2 (precision): under call-site and object sensitivity,
  transformer strings are at least as precise; in practice (and on this
  corpus, like the paper's) exactly as precise.
* Section 6's caveat: under *type* sensitivity transformer strings are
  strictly less precise — witnessed by ``TYPE_PRECISION_LOSS``.
"""

import pytest

from repro import analyze, config_by_name
from repro.bench.workloads import dacapo_program
from repro.frontend.factgen import generate_facts
from repro.frontend.paper_programs import (
    ALL_PROGRAMS,
    STRICT_PRECISION_WITNESS,
    TYPE_PRECISION_LOSS,
)

CORPUS = dict(ALL_PROGRAMS)
CORPUS["type_loss_witness"] = TYPE_PRECISION_LOSS

EQUAL_CONFIGS = ("insensitive", "1-call", "1-call+H", "2-call",
                 "1-object", "2-object+H")


@pytest.fixture(scope="module")
def corpus_facts():
    facts = {
        name: generate_facts_from_source(source)
        for name, source in CORPUS.items()
    }
    facts["workload_luindex"] = generate_facts(dacapo_program("luindex"))
    facts["workload_bloat"] = generate_facts(dacapo_program("bloat"))
    return facts


def generate_facts_from_source(source):
    from repro.frontend.factgen import facts_from_source

    return facts_from_source(source)


def project(result):
    return (result.pts_ci(), result.hpts_ci(), result.call_graph())


class TestEqualPrecisionConfigs:
    """Call-site and object sensitivity: identical CI projections."""

    @pytest.mark.parametrize("config_name", EQUAL_CONFIGS)
    def test_projections_identical_on_corpus(self, corpus_facts, config_name):
        for name, facts in corpus_facts.items():
            cs = analyze(facts, config_by_name(config_name, "context-string"))
            ts = analyze(facts, config_by_name(config_name, "transformer-string"))
            assert project(cs) == project(ts), (name, config_name)


class TestTypeSensitivity:
    def test_soundness_transformers_are_supersets(self, corpus_facts):
        for name, facts in corpus_facts.items():
            cs = analyze(facts, config_by_name("2-type+H", "context-string"))
            ts = analyze(facts, config_by_name("2-type+H", "transformer-string"))
            assert ts.pts_ci() >= cs.pts_ci(), name
            assert ts.hpts_ci() >= cs.hpts_ci(), name
            assert ts.call_graph() >= cs.call_graph(), name

    def test_witness_program_loses_precision(self, corpus_facts):
        facts = corpus_facts["type_loss_witness"]
        cs = analyze(facts, config_by_name("2-type+H", "context-string"))
        ts = analyze(facts, config_by_name("2-type+H", "transformer-string"))
        assert cs.points_to("M.main/u") == {"s1"}
        assert cs.points_to("M.main/v") == {"s2"}
        assert ts.points_to("M.main/u") == {"s1", "s2"}
        assert ts.points_to("M.main/v") == {"s1", "s2"}
        assert ts.pts_ci() > cs.pts_ci()

    def test_witness_is_precise_under_other_flavours(self, corpus_facts):
        facts = corpus_facts["type_loss_witness"]
        for config_name in ("1-call+H", "2-object+H"):
            for abstraction in ("context-string", "transformer-string"):
                result = analyze(facts, config_by_name(config_name, abstraction))
                assert result.points_to("M.main/u") == {"s1"}, (
                    config_name, abstraction,
                )


class TestStrictPrecision:
    """Theorem 6.2 says *strictly* more precise; the paper observes
    equality on its benchmarks.  The witness makes the strict part
    concrete: Figure 5's cross-product pairs produce a spurious alias
    under context strings that transformer strings refute."""

    def test_transformer_strings_strictly_more_precise_at_1callH(self):
        cs = analyze(
            STRICT_PRECISION_WITNESS,
            config_by_name("1-call+H", "context-string"),
        )
        ts = analyze(
            STRICT_PRECISION_WITNESS,
            config_by_name("1-call+H", "transformer-string"),
        )
        assert cs.points_to("T.main/w") == {"hv"}   # spurious
        assert ts.points_to("T.main/w") == set()    # refuted
        assert ts.pts_ci() < cs.pts_ci()
        comparison = cs.compare_to(ts)
        assert comparison.precision_relation() == "right-more-precise"

    def test_deeper_context_strings_recover_the_precision(self):
        """At 2-call+H the cross products disappear, so both agree —
        the gap is about representations at equal levels, not about an
        unsound shortcut."""
        cs = analyze(
            STRICT_PRECISION_WITNESS,
            config_by_name("2-call+H", "context-string"),
        )
        ts = analyze(
            STRICT_PRECISION_WITNESS,
            config_by_name("2-call+H", "transformer-string"),
        )
        assert cs.points_to("T.main/w") == set()
        assert cs.pts_ci() == ts.pts_ci()

    def test_spurious_cross_products_are_the_mechanism(self):
        cs = analyze(
            STRICT_PRECISION_WITNESS,
            config_by_name("1-call+H", "context-string"),
        )
        x_heap_contexts = {
            a[0] for (y, h, a) in cs.pts
            if y == "T.main/x" and h == "h1"
        }
        # x carries the spurious (m2,) heap context from Figure 5's
        # cross product.
        assert ("m2",) in x_heap_contexts


class TestSensitivityLattice:
    """More context never loses precision (monotonicity sanity check)."""

    @pytest.mark.parametrize("abstraction", ["context-string", "transformer-string"])
    def test_deeper_call_strings_refine(self, corpus_facts, abstraction):
        for name, facts in corpus_facts.items():
            one = analyze(facts, config_by_name("1-call", abstraction))
            two = analyze(facts, config_by_name("2-call", abstraction))
            insensitive = analyze(facts, config_by_name("insensitive", abstraction))
            assert two.pts_ci() <= one.pts_ci(), name
            assert one.pts_ci() <= insensitive.pts_ci(), name
