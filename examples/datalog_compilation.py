#!/usr/bin/env python3
"""The Section 7 pipeline: parameterized rules → plain Datalog.

Shows the paper's implementation technique end to end:

1. instantiate the parameterized deduction rules for a 1-call-site,
   1-heap transformer-string analysis with *configuration
   specialization* — every relation with a transformer-string attribute
   split per ``x*w?e*`` configuration, ``comp``/``merge`` inlined as
   shared variables;
2. print a sample of the emitted plain-Datalog rules (including the
   paper's worked ``hpts__xe ⋈ hload__xe`` instance);
3. evaluate the program on the bottom-up engine and check it against
   the worklist solver fact for fact.

Run:  python examples/datalog_compilation.py
"""

from repro import analyze, config_by_name
from repro.compile.emit import compile_transformer_analysis
from repro.core.sensitivity import Flavour
from repro.datalog.parser import format_rule
from repro.frontend.factgen import facts_from_source
from repro.frontend.paper_programs import FIGURE_5


def main() -> None:
    facts = facts_from_source(FIGURE_5)
    compiled = compile_transformer_analysis(facts, Flavour.CALL_SITE, 1, 1)
    rules = compiled.program.rules

    print(f"emitted {len(rules)} plain Datalog rules; a sample:\n")
    shown = 0
    for rule in rules:
        text = format_rule(rule)
        if "hpts__xe" in text and "hload__xe" in text:
            print("  " + text + "      <- the paper's worked example")
            shown += 1
    for rule in rules:
        if rule.head.pred.startswith("pts__") and len(rule.body) == 2 and shown < 8:
            print("  " + format_rule(rule))
            shown += 1

    result = compiled.run()
    print(f"\nengine derived {len(result.pts)} pts facts:")
    for fact in sorted(result.pts, key=str):
        print("  ", fact)

    solver_result = analyze(facts, config_by_name("1-call+H", "transformer-string"))
    assert result.pts == solver_result.pts
    assert result.call == solver_result.call
    print("\nDatalog engine and worklist solver agree fact-for-fact.")

    stats = result.engine.stats
    print(
        f"engine: {stats.facts_derived} facts in {stats.rounds} semi-naive"
        f" rounds, {stats.rule_evaluations} rule evaluations,"
        f" {stats.seconds * 1000:.1f} ms"
    )


if __name__ == "__main__":
    main()
