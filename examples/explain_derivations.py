#!/usr/bin/env python3
"""Provenance: *why* does a variable point to an allocation site?

Every derived fact corresponds to a deduction-rule instance (paper
Figure 3).  With ``track_provenance=True`` the solver records the first
derivation of each fact, and ``explain_points_to`` renders the full
tree — the executable counterpart of the paper's worked derivations
(e.g. the Figure 5 table's third column of rule names).

This example answers two questions about the paper's Figure 1 program:

1. why is ``x1 → h1`` derived under 1-call-site sensitivity?  (the
   precise flow through ``id``);
2. why is ``z → h1`` derived without heap context?  (the imprecise flow
   through the conflated ``m1`` objects — the exact imprecision one
   level of heap context removes).

Run:  python examples/explain_derivations.py
"""

from repro import AnalysisConfig, Flavour, analyze, config_by_name
from repro.frontend.paper_programs import FIGURE_1


def main() -> None:
    config = AnalysisConfig(
        flavour=Flavour.CALL_SITE, m=1, h=0, track_provenance=True
    )
    result = analyze(FIGURE_1, config)

    print("Why does x1 point to h1?  (precise: the id(x) round trip)\n")
    print(result.explain_points_to("T.main/x1", "h1"))

    print("\n" + "=" * 72)
    print("\nWhy does z point to h1 without heap context?  (imprecise:\n"
          "a and b share the abstract object m1, so a.f and b.f alias)\n")
    print(result.explain_points_to("T.main/z", "h1"))

    print("\n" + "=" * 72)
    with_heap = analyze(FIGURE_1, config_by_name("1-call+H"))
    print(
        "\nWith one level of heap context (1-call+H), z points to:"
        f" {sorted(with_heap.points_to('T.main/z')) or '∅'} — the"
        " derivation above is no longer possible because the two m1"
        " objects carry the distinct heap contexts c6 and c7."
    )


if __name__ == "__main__":
    main()
