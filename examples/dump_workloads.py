#!/usr/bin/env python3
"""Materialize the synthetic DaCapo analogues as Java-subset source.

The Figure 6 benchmarks are generated IR programs; this script renders
them through the pretty-printer so they can be read, edited, and fed
back through the normal pipeline:

    python examples/dump_workloads.py [out-dir] [scale]
    python -m repro analyze out-dir/luindex.java --config 2-object+H --stats

Every dump is round-trip-checked on the spot: re-parsing the printed
source and analyzing it must reproduce the generated program's results.

Run:  python examples/dump_workloads.py
"""

import os
import sys

from repro import analyze, config_by_name, generate_facts, parse_program
from repro.bench.workloads import DACAPO_NAMES, EXCLUDED_NAMES, dacapo_program
from repro.frontend.printer import format_program


def tails(result):
    out = {}
    for (var, heap) in result.pts_ci():
        out.setdefault(
            var.rsplit("/", 1)[-1].replace("$", "t_"), set()
        ).add(heap)
    return out


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "workloads"
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    os.makedirs(out_dir, exist_ok=True)

    config = config_by_name("2-object+H")
    for name in DACAPO_NAMES + EXCLUDED_NAMES:
        program = dacapo_program(name, scale=scale)
        source = format_program(program)
        path = os.path.join(out_dir, f"{name}.java")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(source)

        original = analyze(generate_facts(program), config)
        reparsed = analyze(generate_facts(parse_program(source)), config)
        assert tails(original) == tails(reparsed), name
        assert original.call_graph() == reparsed.call_graph(), name

        lines = source.count("\n")
        marker = " (excluded from Figure 6)" if name in EXCLUDED_NAMES else ""
        print(
            f"  {path:28s} {lines:5d} lines,"
            f" {original.total_facts():5d} facts at 2-object+H"
            f" — round trip OK{marker}"
        )

    print(f"\n{len(DACAPO_NAMES) + len(EXCLUDED_NAMES)} workloads written"
          f" to {out_dir}/ at scale {scale}.")


if __name__ == "__main__":
    main()
