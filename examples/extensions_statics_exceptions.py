#!/usr/bin/env python3
"""Static fields and exceptions — the paper's elided extensions.

The paper notes its evaluated implementation also handles "static
fields, class initialization, reflection, exceptions" although the
presentation omits them.  This library implements static fields and
exceptions across all execution paths; this example shows both, and the
compactness story carrying over:

* a static field is a *global* join point — context strings must
  enumerate a loaded value once per reachable context of the loading
  method, while transformer strings keep one wildcard fact;
* thrown objects propagate up the (context-sensitive) call chain to the
  enclosing catch variables.

Run:  python examples/extensions_statics_exceptions.py
"""

from repro import analyze, config_by_name

PROGRAM = """
class ParseError { }
class Settings { static Object theme; }
class Boot {
    static Object install() {
        Object t = new Settings(); // hTheme
        Settings.theme = t;
        return t;
    }
}
class Page {
    Object render() {
        Object style = Settings.theme;
        if (...) {
            ParseError bad = new ParseError(); // hErr
            throw bad;
        }
        return style;
    }
}
class App {
    public static void main(String[] args) {
        Object installed = Boot.install(); // c1
        Page p1 = new Page(); // hp1
        Page p2 = new Page(); // hp2
        try {
            Object a = p1.render(); // c2
            Object b = p2.render(); // c3
        } catch (ParseError oops) {
            Object report = oops;
        }
    }
}
"""


def main() -> None:
    result = analyze(PROGRAM, config_by_name("2-object+H"))

    print("Static field contents:")
    print("  Settings.theme →", sorted(result.static_field_points_to("Settings.theme")))
    print("  Page.render/style →", sorted(result.points_to("Page.render/style")))

    print("\nException flow:")
    for method in ("Page.render", "App.main"):
        print(f"  escaping {method}: {sorted(result.thrown_exceptions(method))}")
    print("  caught by `oops`:", sorted(result.points_to("App.main/oops")))

    print("\nCompactness through the global (1-call+H):")
    cs = analyze(PROGRAM, config_by_name("1-call+H", "context-string"))
    ts = analyze(PROGRAM, config_by_name("1-call+H", "transformer-string"))
    cs_style = [a for (y, h, a) in cs.pts if y == "Page.render/style"]
    ts_style = [a for (y, h, a) in ts.pts if y == "Page.render/style"]
    print(f"  context strings keep {len(cs_style)} fact(s) for `style`: {cs_style}")
    print(f"  transformer strings keep {len(ts_style)} fact(s): {ts_style}")
    assert cs.pts_ci() == ts.pts_ci()
    print("  ... with identical context-insensitive results.")


if __name__ == "__main__":
    main()
