#!/usr/bin/env python3
"""Client checkers on the event-bus case study.

The event bus of ``case_study_eventbus.py``, extended with the two
ingredients that make client analyses interesting:

* an untyped **registry** holding both a handler and an event — a cheap
  (context-insensitive) analysis conflates the two slots and reports
  the dispatch on the retrieved object as an unprovable downcast
  (CK101); object sensitivity separates the registries and the finding
  disappears — client-visible precision, the paper's argument in one
  diff;
* a **worker thread** (``Worker.run``, started from ``main`` — the
  conventional model of ``Thread.start``) publishing to the same bus as
  the main thread, so the bus's ``last`` field is written from two
  thread roots: a may-alias race (CK301) that is real at *every*
  precision, plus a static-field leak (CK401) and a dead method
  (CK501).

The report at the insensitive baseline and at 2-object+H shows which
findings precision removes; the precision audit sweeps the whole
configuration matrix; and the provenance drill-down explains the cast
finding from the points-to derivation that produced it.

Run:  python examples/client_checkers.py
"""

from dataclasses import replace

from repro import analyze, config_by_name
from repro.checkers import CheckConfig, run_checks
from repro.frontend.factgen import facts_from_source

PROGRAM = """
class Event { Object payload; }
class ClickEvent extends Event { }

class Config { static Object theme; }

class Handler {
    Object handle(Event e) { return e; }
}
class Logger extends Handler {
    Object handle(Event e) {
        Object seen = e;
        return seen;
    }
}

class Bus {
    Handler handler;
    Event last;
    void subscribe(Handler h) { handler = h; }
    Object publish(Event e) {
        last = e;
        Handler h = handler;
        Object r = h.handle(e); // cDispatch
        return r;
    }
    Event latest() { Event e = last; return e; }
}

class Registry {
    Object slot;
    void put(Object o) { slot = o; }
    Object get() { Object r = slot; return r; }
}

class Worker {
    Bus bus;
    void run() {
        Bus b = bus;
        Event tick = new Event(); // hTick
        Object ignored = b.publish(tick); // cWorkerPublish
    }
}

class Debug {
    Object dump(Object o) { return o; }
}

class App {
    public static void main(String[] args) {
        Object style = new Config(); // hTheme
        Config.theme = style;

        Bus uiBus = new Bus(); // hUiBus
        Logger logger = new Logger(); // hLogger
        uiBus.subscribe(logger); // c1

        Registry handlers = new Registry(); // hHandlerReg
        Registry events = new Registry(); // hEventReg
        Logger spare = new Logger(); // hSpareLogger
        ClickEvent click = new ClickEvent(); // hClick
        handlers.put(spare); // c2
        events.put(click); // c3

        Object cached = handlers.get(); // c4
        Event pending = new Event(); // hPending
        Object replay = cached.handle(pending); // cReplay

        Worker worker = new Worker(); // hWorker
        worker.bus = uiBus;
        worker.run(); // cSpawn (models Thread.start)

        Object first = uiBus.publish(pending); // c5
        Event seen = uiBus.latest(); // c6
    }
}
"""


def report_for(name: str):
    facts = facts_from_source(PROGRAM)
    result = analyze(facts, config_by_name(name))
    return run_checks(result, facts, config=CheckConfig()), facts, result


def main() -> None:
    print("Client checkers on the event bus: what does precision buy"
          " the *user* of the analysis?\n")

    insensitive, facts, _ = report_for("insensitive")
    print("— insensitive (m=0, h=0) —")
    print(insensitive.render())

    precise, _, _ = report_for("2-object+H")
    print("\n— 2-object+H —")
    print(precise.render())

    removed = sorted(
        {f.identity for f in insensitive.findings}
        - {f.identity for f in precise.findings}
    )
    kept = sorted({f.identity for f in precise.findings})
    print("\nfindings precision removed:",
          ", ".join(f"{code}@{subject}" for code, subject in removed)
          or "none")
    print("findings that survive (real at every precision):",
          ", ".join(f"{code}@{subject}" for code, subject in kept)
          or "none")
    # The registry conflation (CK101 at cReplay) is imprecision and must
    # vanish; the cross-thread race on Bus.last is real and must stay.
    assert any(code == "CK101" for code, _ in removed), removed
    assert any(code == "CK301" for code, _ in kept), kept

    from repro.bench.checkbench import format_audit, run_precision_audit

    print()
    audit = run_precision_audit(facts)
    print(format_audit(audit, title="Precision audit (event bus)"))
    assert all(audit["monotone"].values())
    assert audit["abstractions_agree"]

    print("\nWhy is the cReplay dispatch unsafe at m = 0?  (provenance"
          " for the cast finding's witness: the two registries' slots"
          " merge)\n")
    tracked_config = replace(
        config_by_name("insensitive"), track_provenance=True
    )
    tracked = analyze(facts, tracked_config)
    traced = run_checks(tracked, facts, checks=["downcast"])
    for finding in traced.findings:
        print(finding.explain(tracked, max_depth=5))


if __name__ == "__main__":
    main()
