#!/usr/bin/env python3
"""Demand-driven points-to queries (the CFL-reachability view).

The paper's insight comes from the CFL-reachability formulation, whose
signature strength is *local* reasoning: a single points-to query can be
answered by traversing backward from the queried variable instead of
computing the whole relation.  This example builds the Pointer
Assignment Graph of paper Figure 2 for a program with two independent
"islands" of data flow and shows that:

* the demand-driven query answers match the exhaustive solver, and
* a query only explores its own island (the coverage statistic).

Run:  python examples/demand_queries.py
"""

from repro.cfl.demand import DemandPointsTo
from repro.cfl.pag import build_pag
from repro.cfl.solver import FlowsToSolver
from repro.frontend.factgen import facts_from_source

PROGRAM = """
class Doc { Object title; }
class Index {
    Doc current;
    void add(Doc d) { current = d; }
    Doc lookup() { Doc d = current; return d; }
}
class Render {
    static Object style(Object s) { return s; }
}
class App {
    public static void main(String[] args) {
        Index idx = new Index(); // hidx
        Doc d = new Doc(); // hdoc
        idx.add(d); // c1
        Doc found = idx.lookup(); // c2

        Object theme = new App(); // htheme
        Object styled = Render.style(theme); // c3
    }
}
"""


def main() -> None:
    facts = facts_from_source(PROGRAM)
    pag = build_pag(facts)
    print(
        f"PAG: {len(pag.nodes())} nodes, {pag.edge_count()} edges,"
        f" fields {sorted(pag.fields())}"
    )

    exhaustive = FlowsToSolver(pag).solve()

    demand = DemandPointsTo(pag)
    for var in ("App.main/styled", "App.main/found"):
        answer = demand.query(var)
        assert answer == exhaustive.points_to(var)
        demanded, total = demand.coverage()
        print(
            f"query {var}: → {{{', '.join(sorted(answer))}}}"
            f"   (explored {demanded}/{total} variables so far)"
        )

    print(
        "\nThe style() island was answered without touching the Index"
        " island; querying `found` then pulled in the heap round trip."
    )
    print(
        "Exhaustive flows-to relation:",
        sorted(exhaustive.flows_to_pairs()),
    )


if __name__ == "__main__":
    main()
