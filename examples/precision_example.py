#!/usr/bin/env python3
"""Reproduce paper Figure 5: context strings vs transformer strings.

Runs the Figure 5 program under a 1-call-site analysis with one level of
heap context and prints the two derivation columns side by side: the
context-string instantiation enumerates twelve ``pts`` facts (including
the spurious cross products for ``r``), while the transformer-string
instantiation represents the same information in five.

Run:  python examples/precision_example.py
"""

from repro import analyze, config_by_name
from repro.frontend.paper_programs import FIGURE_5


def fact_lines(result, render):
    lines = []
    for (var, heap, trans) in sorted(result.pts, key=str):
        lines.append(f"pts({var.split('/')[-1]}, {heap}, {render(trans)})")
    for (inv, method, trans) in sorted(result.call, key=str):
        lines.append(f"call({inv}, {method}, {render(trans)})")
    for (method, context) in sorted(result.reach, key=str):
        lines.append(f"reach({method}, {'·'.join(context)})")
    return lines


def render_pair(pair):
    heap_ctx, method_ctx = pair
    return f"({'·'.join(heap_ctx) or 'ε'}, {'·'.join(method_ctx) or 'ε'})"


def main() -> None:
    print(__doc__)
    cs = analyze(FIGURE_5, config_by_name("1-call+H", "context-string"))
    ts = analyze(FIGURE_5, config_by_name("1-call+H", "transformer-string"))

    left = fact_lines(cs, render_pair)
    right = fact_lines(ts, repr)
    width = max(len(line) for line in left) + 4
    print(f"{'Context string':{width}s}Transformer string")
    print("-" * (width + 24))
    for index in range(max(len(left), len(right))):
        l = left[index] if index < len(left) else ""
        r = right[index] if index < len(right) else ""
        print(f"{l:{width}s}{r}")

    print()
    print(
        f"pts facts: {len(cs.pts)} vs {len(ts.pts)}"
        f" ({(1 - len(ts.pts) / len(cs.pts)) * 100:.0f}% fewer);"
        f" call facts: {len(cs.call)} vs {len(ts.call)}"
    )
    assert cs.pts_ci() == ts.pts_ci(), "abstractions must agree on CI results"
    print("Context-insensitive projections identical:", sorted(
        f"{y.split('/')[-1]}→{h}" for (y, h) in ts.pts_ci()
    ))

    # Theorem 6.2's strictness: route the cross products through the
    # heap and the representations diverge observably.
    from repro.frontend.paper_programs import STRICT_PRECISION_WITNESS

    print("\nAdd one heap round trip (x.g = v; w = y.g) and the spurious")
    print("cross products become a spurious CI conclusion:")
    cs2 = analyze(
        STRICT_PRECISION_WITNESS, config_by_name("1-call+H", "context-string")
    )
    ts2 = analyze(
        STRICT_PRECISION_WITNESS,
        config_by_name("1-call+H", "transformer-string"),
    )
    print(f"  context strings:     w → {sorted(cs2.points_to('T.main/w')) or '∅'}")
    print(f"  transformer strings: w → {sorted(ts2.points_to('T.main/w')) or '∅'}"
          "   (m̂1 ; m̌2 = ⊥)")


if __name__ == "__main__":
    main()
