#!/usr/bin/env python3
"""Quickstart: context-sensitive pointer analysis on the paper's Figure 1.

Runs the example program of *Context Transformations for Pointer
Analysis* (Thiessen & Lhoták, PLDI 2017) under several flavours of
context sensitivity and shows how each one resolves — or fails to
resolve — the points-to sets the paper discusses in Section 2:

* 1-call-site separates ``id``'s three call sites (x1/y1 precise) but
  merges ``id2``'s internal call site (x2/y2 imprecise);
* 1-object merges everything called on receiver ``h3`` (x1/y1
  imprecise) but keeps the ``h4``/``h5`` receivers apart (x2/y2
  precise);
* one level of heap context separates the two objects returned by ``m``
  so that ``a.f`` and ``b.f`` no longer alias and ``z`` points nowhere.

Run:  python examples/quickstart.py
"""

from repro import AnalysisConfig, Flavour, analyze, config_by_name
from repro.frontend.paper_programs import FIGURE_1

INTERESTING = ("x1", "y1", "x2", "y2", "z")


def show(label: str, config: AnalysisConfig) -> None:
    result = analyze(FIGURE_1, config)
    sets = "  ".join(
        f"{name}→{{{', '.join(sorted(result.points_to(f'T.main/{name}'))) or '∅'}}}"
        for name in INTERESTING
    )
    sizes = result.relation_sizes()
    print(f"{label:14s} {sets}")
    print(
        f"{'':14s} |pts|={sizes['pts']}, |hpts|={sizes['hpts']},"
        f" |call|={sizes['call']}, analyzed in {result.seconds * 1000:.1f} ms"
    )


def main() -> None:
    print("Figure 1 under different context-sensitivity configurations\n")
    show("insensitive", config_by_name("insensitive"))
    show("1-call", config_by_name("1-call"))
    show("2-call", config_by_name("2-call"))
    show("1-object", config_by_name("1-object"))
    show("1-call+H", config_by_name("1-call+H"))
    show("2-object+H", config_by_name("2-object+H"))

    print("\nBoth abstractions, same precision (Theorem 6.2 in practice):")
    for abstraction in ("context-string", "transformer-string"):
        config = AnalysisConfig(
            abstraction=abstraction, flavour=Flavour.OBJECT, m=2, h=1
        )
        result = analyze(FIGURE_1, config)
        print(
            f"  {abstraction:19s} total context-sensitive facts:"
            f" {result.total_facts():3d}, CI pts facts: {len(result.pts_ci())}"
        )

    result = analyze(FIGURE_1, config_by_name("2-object+H"))
    print("\nCall graph edges:", sorted(result.call_graph()))
    print("Reachable methods:", sorted(result.reachable_methods()))


if __name__ == "__main__":
    main()
