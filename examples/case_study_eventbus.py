#!/usr/bin/env python3
"""Case study: analyzing an event-bus application.

A small but realistic program in the analyzed Java subset — an event
bus with handler registration, event factories, virtual dispatch over a
handler hierarchy, a static configuration registry, and error events
thrown and caught — analyzed across the paper's configuration matrix.

The report shows, per configuration:

* whether the analysis can tell the two buses' event streams apart
  (the precision question a client like a race detector would ask);
* the context-sensitive fact counts under both abstractions (the
  Figure 6 quantities, on real-looking code);

and finishes with a provenance drill-down on the one imprecision the
cheap configurations share.

Run:  python examples/case_study_eventbus.py
"""

from repro import AnalysisConfig, Flavour, analyze, config_by_name

PROGRAM = """
class Event { Object payload; }
class ClickEvent extends Event { }
class KeyEvent extends Event { }

class Config { static Object theme; }

class Handler {
    Object handle(Event e) { return e; }
}
class Logger extends Handler {
    Object handle(Event e) {
        Object seen = e;
        return seen;
    }
}
class Validator extends Handler {
    Object handle(Event e) {
        if (...) {
            Event bad = new Event(); // hBadEvent
            throw bad;
        }
        return e;
    }
}

class Bus {
    Handler handler;
    Event last;
    void subscribe(Handler h) { handler = h; }
    Object publish(Event e) {
        last = e;
        Handler h = handler;
        Object r = h.handle(e); // cDispatch
        return r;
    }
    Event latest() { Event e = last; return e; }
}

class EventFactory {
    Event makeClick() {
        ClickEvent e = new ClickEvent(); // hClick
        return e;
    }
    Event makeKey() {
        KeyEvent e = new KeyEvent(); // hKey
        return e;
    }
}

class App {
    public static void main(String[] args) {
        Object style = new Config(); // hTheme
        Config.theme = style;

        EventFactory factory = new EventFactory(); // hFactory
        Bus uiBus = new Bus(); // hUiBus
        Bus inputBus = new Bus(); // hInputBus

        Logger logger = new Logger(); // hLogger
        Validator validator = new Validator(); // hValidator
        uiBus.subscribe(logger); // c1
        inputBus.subscribe(validator); // c2

        Event click = factory.makeClick(); // c3
        Event key = factory.makeKey(); // c4

        try {
            Object uiResult = uiBus.publish(click); // c5
            Object inputResult = inputBus.publish(key); // c6
        } catch (Event oops) {
            Object report = oops;
        }

        Event uiLatest = uiBus.latest(); // c7
        Event inputLatest = inputBus.latest(); // c8
    }
}
"""

CONFIGURATIONS = (
    "insensitive", "1-call", "1-call+H", "1-object", "2-object+H",
    "2-hybrid+H", "2-type+H",
)


def main() -> None:
    print("Event-bus case study: can the analysis keep the two buses'"
          " event streams apart?\n")
    header = (
        f"{'configuration':14s} {'uiLatest':22s} {'inputLatest':22s}"
        f" {'separated?':10s} {'facts cs':>9s} {'facts ts':>9s}"
    )
    print(header)
    print("-" * len(header))
    for name in CONFIGURATIONS:
        ts = analyze(PROGRAM, config_by_name(name, "transformer-string"))
        cs = analyze(PROGRAM, config_by_name(name, "context-string"))
        ui = sorted(ts.points_to("App.main/uiLatest"))
        inp = sorted(ts.points_to("App.main/inputLatest"))
        separated = "yes" if (ui, inp) == (["hClick"], ["hKey"]) else "no"
        print(
            f"{name:14s} {','.join(ui):22s} {','.join(inp):22s}"
            f" {separated:10s} {cs.total_facts():9d} {ts.total_facts():9d}"
        )
        assert cs.pts_ci() >= ts.pts_ci() or cs.pts_ci() == ts.pts_ci()

    best = analyze(PROGRAM, config_by_name("2-object+H"))
    print("\nUnder 2-object+H:")
    print("  dispatch targets of cDispatch:",
          sorted(p for (i, p) in best.call_graph() if i == "cDispatch"))
    print("  validator may throw:",
          sorted(best.thrown_exceptions("Validator.handle")))
    print("  caught by `oops`:", sorted(best.points_to("App.main/oops")))
    print("  Config.theme holds:",
          sorted(best.static_field_points_to("Config.theme")))

    print("\nWhy does the insensitive analysis conflate the buses?"
          "  (provenance for inputLatest → hClick at m = 0: the shared"
          " `subscribe`/`publish` bodies merge both buses' flows)\n")
    tracked = analyze(
        PROGRAM,
        AnalysisConfig(
            flavour=Flavour.CALL_SITE, m=0, h=0, track_provenance=True
        ),
    )
    print(tracked.explain_points_to("App.main/inputLatest", "hClick",
                                    max_depth=6))


if __name__ == "__main__":
    main()
