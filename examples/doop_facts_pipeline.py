#!/usr/bin/env python3
"""The Doop-style pipeline: source → facts directory → analysis.

The paper's toolchain generates input relations from Java bytecode with
Soot and feeds them to a Datalog engine.  This example mirrors that
pipeline with the library's frontend:

1. parse a Java-subset program and generate the input relations;
2. serialize them to a Doop-style directory of tab-separated ``.facts``
   files (``AssignHeapAllocation.facts``, ``VirtualMethodInvocation.facts``, …);
3. read the directory back — as one would with externally produced
   facts — and run the 2-object+H analysis on it.

Run:  python examples/doop_facts_pipeline.py [facts-dir]
"""

import os
import sys
import tempfile

from repro import analyze, config_by_name, parse_program, generate_facts
from repro.frontend.doopfacts import read_facts, write_facts

PROGRAM = """
class Event { Object payload; }
class Queue {
    Event slot;
    void put(Event e) { slot = e; }
    Event take() { Event e = slot; return e; }
}
class Producer {
    Event produce() {
        Event e = new Event(); // ev
        return e;
    }
}
class App {
    public static void main(String[] args) {
        Producer p = new Producer(); // prod
        Queue q = new Queue(); // queue
        Event e1 = p.produce(); // c1
        q.put(e1); // c2
        Event e2 = q.take(); // c3
    }
}
"""


def main() -> None:
    if len(sys.argv) > 1:
        directory = sys.argv[1]
    else:
        directory = os.path.join(tempfile.mkdtemp(prefix="repro-"), "facts")

    # 1. frontend: source → input relations.
    program = parse_program(PROGRAM)
    facts = generate_facts(program)
    print(f"generated {sum(facts.counts().values())} input facts:")
    for name, count in sorted(facts.counts().items()):
        if count:
            print(f"  {name:16s} {count}")

    # 2. serialize in Doop's on-disk convention.
    write_facts(facts, directory)
    print(f"\nwrote facts directory: {directory}")
    for filename in sorted(os.listdir(directory)):
        path = os.path.join(directory, filename)
        with open(path) as handle:
            rows = sum(1 for _ in handle)
        print(f"  {filename:34s} {rows:3d} rows")

    # 3. read back and analyze, as with externally produced facts.
    loaded = read_facts(directory)
    result = analyze(loaded, config_by_name("2-object+H"))
    print("\n2-object+H analysis of the loaded facts:")
    print("  e2 points to:", sorted(result.points_to("App.main/e2")))
    print("  call graph:", sorted(result.call_graph()))
    print(
        f"  {result.total_facts()} context-sensitive facts in"
        f" {result.seconds * 1000:.1f} ms"
    )


if __name__ == "__main__":
    main()
