"""The serving fleet: an async gateway over warm analysis services.

:mod:`repro.service` owns a *single* program forever — one
:class:`~repro.service.AnalysisService`, one thread-safe lock, one
JSON-lines connection at a time doing useful work.  This package is
the layer above it, built for many programs and many clients at once:

* :mod:`repro.serve.protocol` — the ``repro-serve/2`` wire protocol:
  pipelined JSON-lines with request ids, tenant routing and
  admission-control error codes layered over the ``repro-serve/1``
  operation set;
* :mod:`repro.serve.registry` — a multi-tenant
  :class:`~repro.serve.registry.SnapshotRegistry` keyed by program
  digest, restoring warm services from ``repro-snapshot/2`` documents
  instead of re-solving, under an LRU byte budget;
* :mod:`repro.serve.gateway` — the asyncio
  :class:`~repro.serve.gateway.AsyncGateway`: micro-batched execution
  of compatible operations per tenant, bounded queues with explicit
  overload responses, per-op latency percentiles and graceful drain.

``repro serve --async`` is the CLI entry;
:mod:`repro.bench.loadbench` prices the gateway against the threaded
``repro-serve/1`` server under open-loop load.
"""

from repro.serve.gateway import (
    AsyncGateway,
    GatewayConfig,
    GatewayStats,
    run_gateway_in_thread,
)
from repro.serve.protocol import (
    ADMISSION_ERROR_CODES,
    BARRIER_OPS,
    BATCHABLE_OPS,
    GATEWAY_OPS,
    PROTOCOL_V2,
    classify,
)
from repro.serve.registry import RegistryStats, SnapshotRegistry

__all__ = [
    "ADMISSION_ERROR_CODES",
    "AsyncGateway",
    "BARRIER_OPS",
    "BATCHABLE_OPS",
    "GATEWAY_OPS",
    "GatewayConfig",
    "GatewayStats",
    "PROTOCOL_V2",
    "RegistryStats",
    "SnapshotRegistry",
    "classify",
    "run_gateway_in_thread",
]
