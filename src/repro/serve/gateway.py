"""The asyncio serving gateway (``repro serve --async``).

The threaded ``repro-serve/1`` server spends one OS thread per
connection and one lock round-trip per request; under many concurrent
clients most of its time goes to GIL hand-offs, not analysis.  The
gateway inverts the design:

* **One event loop** owns every connection.  Reads, protocol
  validation, admission control and response writes are all
  non-blocking; clients may pipeline requests freely.
* **Micro-batching** — compatible (read-only) operations for one
  tenant are collected for up to ``max_delay_ms`` or ``max_batch``
  requests, then executed as *one* hop to a worker thread: one lock
  acquisition, one GIL transition, many answers.  Responses are
  JSON-encoded inside the worker, so the loop only writes bytes.
* **Barriers** — ``update`` flushes the pending batch, runs alone,
  and only then do later requests execute: per-tenant arrival order
  is execution order, which is what makes gateway results
  bit-identical to a sequential replay against the plain service.
* **Admission control** — at most ``queue_limit`` requests may be
  admitted (queued + executing) at once; the next one is answered
  ``code: "overload"`` immediately.  A request that waits past
  ``op_timeout_s`` before its batch starts is answered
  ``code: "timeout"`` without executing.  Overload is a fast explicit
  *no*, never a hung connection.
* **Graceful drain** — SIGTERM (or ``{"op": "shutdown", "scope":
  "gateway"}``) stops accepting connections, answers everything
  already admitted, rejects new requests with ``code: "draining"``,
  and resolves :meth:`AsyncGateway.serve` once quiet.

Statistics (the no-tenant ``stats`` op) report per-op p50/p95/p99
latency, queue depth, batch-size distribution and the registry's
hit/restore/eviction counters.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.serve.protocol import PROTOCOL_V2, classify, validate
from repro.serve.registry import SnapshotRegistry, UnknownTenantError
from repro.service.server import (
    MAX_LINE_BYTES,
    error_response,
    handle_request,
)


@dataclass
class GatewayConfig:
    """The gateway's knobs (CLI flags map onto these one-to-one)."""

    max_batch: int = 16          # flush a tenant's batch at this size
    max_delay_ms: float = 2.0    # …or after this long, whichever first
    queue_limit: int = 256       # admitted requests (queued + running)
    op_timeout_s: float = 30.0   # max queue wait before "timeout"
    workers: int = 4             # executor threads running batches
    max_line_bytes: int = MAX_LINE_BYTES
    drain_grace_s: float = 5.0   # wait for in-flight work on drain


class _Reservoir:
    """Bounded latency sample (newest-wins ring) with percentiles."""

    __slots__ = ("samples", "count", "capacity", "_next")

    def __init__(self, capacity: int = 4096):
        self.samples: List[float] = []
        self.count = 0
        self.capacity = capacity
        self._next = 0

    def add(self, seconds: float) -> None:
        self.count += 1
        if len(self.samples) < self.capacity:
            self.samples.append(seconds)
        else:
            self.samples[self._next] = seconds
            self._next = (self._next + 1) % self.capacity

    def percentiles(self) -> Dict[str, Optional[int]]:
        if not self.samples:
            return {"count": 0, "p50_us": None, "p95_us": None,
                    "p99_us": None}
        ordered = sorted(self.samples)

        def at(fraction: float) -> int:
            index = min(
                len(ordered) - 1,
                max(0, int(round(fraction * (len(ordered) - 1)))),
            )
            return int(ordered[index] * 1e6)

        return {
            "count": self.count,
            "p50_us": at(0.50),
            "p95_us": at(0.95),
            "p99_us": at(0.99),
        }


@dataclass
class GatewayStats:
    """Everything the no-tenant ``stats`` op reports."""

    requests: int = 0
    answered: int = 0
    batches: int = 0
    batched_requests: int = 0
    max_queue_depth: int = 0
    errors: Dict[str, int] = field(default_factory=dict)
    latency: Dict[str, _Reservoir] = field(default_factory=dict)
    batch_sizes: _Reservoir = field(default_factory=lambda: _Reservoir())

    def record_latency(self, op: str, seconds: float) -> None:
        reservoir = self.latency.get(op)
        if reservoir is None:
            reservoir = self.latency[op] = _Reservoir()
        reservoir.add(seconds)

    def record_error(self, code: str) -> None:
        self.errors[code] = self.errors.get(code, 0) + 1

    def as_dict(self, queue_depth: int, draining: bool) -> Dict:
        sizes = self.batch_sizes.samples
        return {
            "protocol": PROTOCOL_V2,
            "requests": self.requests,
            "answered": self.answered,
            "draining": draining,
            "queue": {
                "depth": queue_depth,
                "max_depth": self.max_queue_depth,
            },
            "batches": {
                "count": self.batches,
                "batched_requests": self.batched_requests,
                "mean_size": (
                    sum(sizes) / len(sizes) if sizes else None
                ),
                "max_size": max(sizes) if sizes else None,
            },
            "errors": dict(sorted(self.errors.items())),
            "latency_us": {
                op: reservoir.percentiles()
                for op, reservoir in sorted(self.latency.items())
            },
        }


class _Item:
    """One admitted request riding through a tenant lane."""

    __slots__ = ("request", "op", "connection", "arrival")

    def __init__(self, request: Dict, op: str, connection: "_Connection",
                 arrival: float):
        self.request = request
        self.op = op
        self.connection = connection
        self.arrival = arrival


class _Connection:
    """Per-connection write side: one lock, ordered writes."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.lock = asyncio.Lock()
        self.closed = False

    async def send(self, encoded: str) -> None:
        if self.closed:
            return
        async with self.lock:
            if self.closed:
                return
            try:
                self.writer.write(encoded.encode("utf-8") + b"\n")
                await self.writer.drain()
            except (ConnectionError, RuntimeError):
                self.closed = True


class _TenantLane:
    """Serial execution lane for one tenant.

    Admitted work becomes units — a unit is either a batch of
    compatible requests or a lone barrier — processed strictly in
    order by this lane's worker task.  Batching happens at the mouth:
    requests append to ``pending`` until the batch fills, the delay
    timer fires, or a barrier arrives.
    """

    def __init__(self, gateway: "AsyncGateway", tenant: str):
        self.gateway = gateway
        self.tenant = tenant
        self.pending: List[_Item] = []
        self.units: "asyncio.Queue[List[_Item]]" = asyncio.Queue()
        self._timer: Optional[asyncio.TimerHandle] = None
        self.task = asyncio.get_running_loop().create_task(self._run())

    def submit(self, item: _Item, barrier: bool) -> None:
        if barrier:
            self._flush()
            self.units.put_nowait([item])
            return
        self.pending.append(item)
        if len(self.pending) >= self.gateway.config.max_batch:
            self._flush()
        elif self._timer is None:
            loop = asyncio.get_running_loop()
            self._timer = loop.call_later(
                self.gateway.config.max_delay_ms / 1000.0, self._flush
            )

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self.pending:
            self.units.put_nowait(self.pending)
            self.pending = []

    async def _run(self) -> None:
        while True:
            unit = await self.units.get()
            try:
                await self.gateway._execute_unit(self.tenant, unit)
            finally:
                self.units.task_done()


class AsyncGateway:
    """The ``repro-serve/2`` asyncio gateway over a snapshot registry."""

    def __init__(
        self,
        registry: SnapshotRegistry,
        config: Optional[GatewayConfig] = None,
    ):
        self.registry = registry
        self.config = config or GatewayConfig()
        self.stats = GatewayStats()
        self.draining = False
        self._inflight = 0
        self._lanes: Dict[str, _TenantLane] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._drained = asyncio.Event()
        self._connections: "set[_Connection]" = set()
        self._connection_tasks: "set[asyncio.Task]" = set()

    # -- lifecycle ------------------------------------------------------

    async def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        ready: Optional["asyncio.Future"] = None,
    ) -> None:
        """Listen until drained.  ``ready`` (if given) resolves to the
        bound ``(host, port)`` once accepting."""
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-gateway",
        )
        self._server = await asyncio.start_server(
            self._on_connection, host, port,
            limit=self.config.max_line_bytes + 2,
        )
        bound = self._server.sockets[0].getsockname()[:2]
        if ready is not None and not ready.done():
            ready.set_result(bound)
        try:
            await self._drained.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            for lane in self._lanes.values():
                lane.task.cancel()
            for connection in list(self._connections):
                connection.closed = True
                try:
                    connection.writer.close()
                except Exception:
                    pass
            if self._connection_tasks:
                # Closing the transports feeds each reader EOF; the
                # tasks finish on their own (cancelling them instead
                # makes asyncio's stream wrapper log the cancellation).
                await asyncio.wait(
                    list(self._connection_tasks), timeout=2.0
                )
            self._executor.shutdown(wait=False)

    def start_drain(self) -> None:
        """Stop accepting, answer what's admitted, then resolve
        :meth:`serve`.  Idempotent; safe to call from the loop only."""
        if self.draining:
            return
        self.draining = True
        if self._server is not None:
            self._server.close()
        asyncio.get_running_loop().create_task(self._finish_drain())

    async def _finish_drain(self) -> None:
        deadline = (
            asyncio.get_running_loop().time() + self.config.drain_grace_s
        )
        for lane in self._lanes.values():
            lane._flush()
        while self._inflight > 0:
            if asyncio.get_running_loop().time() >= deadline:
                break
            await asyncio.sleep(0.01)
        self._drained.set()

    # -- connection handling --------------------------------------------

    async def _on_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        connection = _Connection(writer)
        self._connections.add(connection)
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
            task.add_done_callback(self._connection_tasks.discard)
        try:
            while not connection.closed:
                try:
                    raw = await reader.readline()
                except (ConnectionError, OSError):
                    break
                except (ValueError, asyncio.LimitOverrunError):
                    # The line outgrew the stream limit; the read
                    # position is unrecoverable mid-line, so answer
                    # and close (the sync server can skip-and-continue
                    # because it controls its own buffering).
                    response = error_response(
                        None, "oversized",
                        f"request line exceeds the"
                        f" {self.config.max_line_bytes}-byte limit",
                    )
                    self.stats.record_error("oversized")
                    await connection.send(json.dumps(response))
                    break
                if not raw:
                    break
                line = raw.decode("utf-8", "replace").strip()
                if not line:
                    continue
                stop = await self._on_line(connection, line)
                if stop:
                    break
        finally:
            self._connections.discard(connection)
            connection.closed = True
            try:
                writer.close()
            except Exception:
                pass

    async def _on_line(self, connection: _Connection, line: str) -> bool:
        """Handle one request line; True means close the connection."""
        self.stats.requests += 1
        if len(line) > self.config.max_line_bytes:
            await self._reject(
                connection, None, "oversized",
                f"request line of {len(line)} bytes exceeds the"
                f" {self.config.max_line_bytes}-byte limit",
            )
            return False
        try:
            request = json.loads(line)
        except json.JSONDecodeError as error:
            await self._reject(
                connection, None, "bad-json", f"bad JSON: {error}"
            )
            return False
        op, invalid = validate(request)
        if invalid is not None:
            self.stats.record_error(invalid["code"])
            await connection.send(json.dumps(invalid))
            return False
        kind = classify(request)
        request_id = request.get("id")
        if kind == "gateway":
            return await self._gateway_op(connection, request, op)
        # tenant-routed work from here on
        if self.draining:
            await self._reject(
                connection, request_id, "draining",
                "gateway is draining; no new work admitted",
            )
            return False
        if self._inflight >= self.config.queue_limit:
            await self._reject(
                connection, request_id, "overload",
                f"gateway queue is full ({self.config.queue_limit}"
                " admitted requests); retry with backoff",
            )
            return False
        tenant = request.get("tenant") or self.registry.default_tenant()
        if tenant is None:
            await self._reject(
                connection, request_id, "unknown-tenant",
                "no 'tenant' given and more than one program is"
                " registered",
            )
            return False
        try:
            digest = self.registry.resolve(tenant)
        except UnknownTenantError:
            await self._reject(
                connection, request_id, "unknown-tenant",
                f"unknown tenant {tenant!r}",
            )
            return False
        self._inflight += 1
        self.stats.max_queue_depth = max(
            self.stats.max_queue_depth, self._inflight
        )
        item = _Item(
            request, op, connection, asyncio.get_running_loop().time()
        )
        lane = self._lanes.get(digest)
        if lane is None:
            lane = self._lanes[digest] = _TenantLane(self, digest)
        lane.submit(item, barrier=(kind == "barrier"))
        return False

    async def _gateway_op(
        self, connection: _Connection, request: Dict, op: str
    ) -> bool:
        request_id = request.get("id")
        if op == "ping":
            response = {"id": request_id, "ok": True, "result": PROTOCOL_V2}
        elif op == "tenants":
            response = {
                "id": request_id, "ok": True,
                "result": self.registry.tenants(),
            }
        elif op == "shutdown":
            response = {"id": request_id, "ok": True, "result": "bye"}
            await connection.send(json.dumps(response))
            if request.get("scope") == "gateway":
                self.start_drain()
            self.stats.answered += 1
            return True
        else:  # "stats" without a tenant
            response = {
                "id": request_id, "ok": True,
                "result": {
                    **self.stats.as_dict(self._inflight, self.draining),
                    "registry": self.registry.describe(),
                },
            }
        await connection.send(json.dumps(response))
        self.stats.answered += 1
        return False

    async def _reject(
        self, connection: _Connection, request_id, code: str, message: str
    ) -> None:
        self.stats.record_error(code)
        self.stats.answered += 1
        await connection.send(
            json.dumps(error_response(request_id, code, message))
        )

    # -- execution ------------------------------------------------------

    async def _execute_unit(self, digest: str, unit: List[_Item]) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        live: List[_Item] = []
        for item in unit:
            if now - item.arrival > self.config.op_timeout_s:
                self._inflight -= 1
                await self._reject(
                    item.connection, item.request.get("id"), "timeout",
                    f"request waited {now - item.arrival:.2f}s in queue,"
                    f" past the {self.config.op_timeout_s}s deadline",
                )
            else:
                live.append(item)
        if not live:
            return
        self.stats.batches += 1
        self.stats.batched_requests += len(live)
        self.stats.batch_sizes.add(len(live))
        requests = [item.request for item in live]
        try:
            encoded = await loop.run_in_executor(
                self._executor, self._run_batch, digest, requests
            )
        except Exception as error:  # registry/executor failure
            encoded = [
                json.dumps(error_response(
                    request.get("id"), "op-failed", str(error)
                ))
                for request in requests
            ]
        done = loop.time()
        for item, line in zip(live, encoded):
            self._inflight -= 1
            self.stats.answered += 1
            self.stats.record_latency(item.op, done - item.arrival)
            await item.connection.send(line)

    def _run_batch(self, digest: str, requests: List[Dict]) -> List[str]:
        """Worker-thread body: acquire once, answer all, encode all."""
        service = self.registry.acquire(digest)
        out: List[str] = []
        for request in requests:
            request = (
                {key: value for key, value in request.items()
                 if key != "tenant"}
            )
            out.append(json.dumps(handle_request(service, request)))
        return out


def run_gateway_in_thread(
    registry: SnapshotRegistry,
    config: Optional[GatewayConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> Tuple["AsyncGateway", Tuple[str, int], "threading.Thread", "object"]:
    """Run a gateway on a background event loop (tests, benchmarks).

    Returns ``(gateway, (host, port), thread, stop)`` where ``stop()``
    initiates a drain and joins the thread.
    """
    gateway_box: List[AsyncGateway] = []
    bound_box: List[Tuple[str, int]] = []
    loop_box: List[asyncio.AbstractEventLoop] = []
    started = threading.Event()

    def _main() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop_box.append(loop)

        async def _serve() -> None:
            gateway = AsyncGateway(registry, config)
            gateway_box.append(gateway)
            ready = loop.create_future()

            async def _announce() -> None:
                bound_box.append(await ready)
                started.set()

            announce = loop.create_task(_announce())
            await gateway.serve(host, port, ready=ready)
            await announce

        try:
            loop.run_until_complete(_serve())
        finally:
            loop.close()

    thread = threading.Thread(target=_main, daemon=True)
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("gateway failed to start within 30s")
    gateway = gateway_box[0]
    loop = loop_box[0]

    def stop(timeout: float = 30.0) -> None:
        if thread.is_alive():
            loop.call_soon_threadsafe(gateway.start_drain)
            thread.join(timeout=timeout)

    return gateway, bound_box[0], thread, stop
