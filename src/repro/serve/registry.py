"""A multi-tenant registry of snapshot-backed analysis services.

The gateway serves many programs.  Solving each one on first contact
would make cold starts cost seconds; holding every solved service warm
forever would make memory cost unbounded.  The registry sits between:

* **Registration** loads a ``repro-snapshot/2`` document once (schema
  and digest verified), remembers it in parsed form, and keys the
  tenant by the document's content digest — two gateways pointed at
  the same snapshot agree on the tenant name for free.  Optional
  aliases (``--tenant name=path``) map friendly names to digests.
* **Acquisition** hands out the warm
  :class:`~repro.service.AnalysisService` for a tenant, restoring it
  from the in-memory document on a miss — a restore is a
  deserialization, never a solve.
* **Eviction** keeps the *warm* set under a byte budget, LRU by
  acquisition order.  A tenant's charge is its document's canonical
  serialized size (:func:`repro.service.snapshot.document_byte_size`),
  the same bytes its digest covers, so the accounting is deterministic
  and digest-stable.  Evicting drops the service object only; the
  document stays, and the next acquisition restores from it.

Services registered directly with :meth:`SnapshotRegistry.add_service`
(solved in-process, no snapshot document behind them) are *pinned*:
they have nothing to restore from, so the LRU never evicts them and
their size is not charged against the budget.

Thread-safe; the gateway acquires from executor threads.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.service.service import AnalysisService
from repro.service.snapshot import (
    document_byte_size,
    load_snapshot_document,
)


class UnknownTenantError(KeyError):
    """The tenant names no registered program."""


@dataclass
class RegistryStats:
    """Counters the gateway folds into its ``stats`` op."""

    hits: int = 0          # acquisitions answered by a warm service
    restores: int = 0      # acquisitions that deserialized the document
    evictions: int = 0     # warm services dropped by the byte budget
    restore_seconds: float = 0.0

    def as_dict(self) -> Dict:
        total = self.hits + self.restores
        return {
            "hits": self.hits,
            "restores": self.restores,
            "evictions": self.evictions,
            "hit_rate": (self.hits / total) if total else None,
            "restore_seconds": self.restore_seconds,
        }


@dataclass
class _Tenant:
    """One registered program."""

    digest: str
    path: Optional[str]              # None for add_service tenants
    document: Optional[Dict]         # parsed snapshot; None when pinned
    byte_size: int                   # canonical body bytes (0 if pinned)
    service: Optional[AnalysisService] = None
    aliases: List[str] = field(default_factory=list)

    @property
    def pinned(self) -> bool:
        return self.document is None

    @property
    def warm(self) -> bool:
        return self.service is not None


class SnapshotRegistry:
    """Digest-keyed tenants with LRU byte-budget eviction of warm ones.

    ``byte_budget=None`` means unbounded (every restored service stays
    warm).  The budget bounds the *sum of canonical document bytes* of
    snapshot-backed warm services; it is an eviction threshold, not an
    admission check — a single tenant larger than the budget still
    restores, and simply never shares warmth with anyone.
    """

    def __init__(self, byte_budget: Optional[int] = None):
        if byte_budget is not None and byte_budget < 0:
            raise ValueError("byte_budget must be >= 0 or None")
        self.byte_budget = byte_budget
        self.stats = RegistryStats()
        self._lock = threading.RLock()
        #: digest -> tenant, in LRU order (least recent first).
        self._tenants: "OrderedDict[str, _Tenant]" = OrderedDict()
        self._aliases: Dict[str, str] = {}

    # -- registration ---------------------------------------------------

    def register(self, path: str, alias: Optional[str] = None) -> str:
        """Load a snapshot file and register its program; returns the
        tenant digest.  Re-registering the same content is idempotent
        (the alias, if new, is added to the existing tenant)."""
        document = load_snapshot_document(path)
        digest = document["digest"]
        with self._lock:
            tenant = self._tenants.get(digest)
            if tenant is None:
                tenant = _Tenant(
                    digest=digest,
                    path=path,
                    document=document,
                    byte_size=document_byte_size(document),
                )
                self._tenants[digest] = tenant
            if alias:
                self._bind_alias(alias, tenant)
        return digest

    def add_service(
        self, service: AnalysisService, alias: Optional[str] = None
    ) -> str:
        """Register an already-solved service as a pinned tenant.

        Keyed by the digest of the service's own snapshot document, so
        the name is the same one :meth:`register` would have assigned.
        """
        from repro.service.snapshot import (
            snapshot_from_relations,
            snapshot_to_document,
        )

        if service._backend is None:
            raise ValueError(
                "add_service requires a solved service (demand-only"
                " services have no digestable result)"
            )
        snapshot = snapshot_from_relations(
            service.config,
            service.facts,
            service._relations_of(service._backend),
            generation=service.generation,
        )
        digest = snapshot_to_document(snapshot)["digest"]
        with self._lock:
            tenant = self._tenants.get(digest)
            if tenant is None:
                tenant = _Tenant(
                    digest=digest, path=None, document=None, byte_size=0,
                    service=service,
                )
                self._tenants[digest] = tenant
            elif tenant.service is None:
                tenant.service = service
            if alias:
                self._bind_alias(alias, tenant)
        return digest

    def _bind_alias(self, alias: str, tenant: _Tenant) -> None:
        bound = self._aliases.get(alias)
        if bound is not None and bound != tenant.digest:
            raise ValueError(
                f"alias {alias!r} already bound to tenant {bound[:12]}…"
            )
        self._aliases[alias] = tenant.digest
        if alias not in tenant.aliases:
            tenant.aliases.append(alias)

    # -- acquisition ----------------------------------------------------

    def resolve(self, tenant: str) -> str:
        """Alias or digest (or unique digest prefix) → digest."""
        with self._lock:
            if tenant in self._aliases:
                return self._aliases[tenant]
            if tenant in self._tenants:
                return tenant
            prefixed = [
                digest for digest in self._tenants
                if digest.startswith(tenant)
            ]
            if len(prefixed) == 1:
                return prefixed[0]
            raise UnknownTenantError(tenant)

    def acquire(self, tenant: str) -> AnalysisService:
        """The warm service for ``tenant``, restoring it if evicted.

        Raises :class:`UnknownTenantError` for unregistered tenants.
        The restore (on a miss) runs under the registry lock — two
        concurrent acquisitions of one cold tenant deserialize once.
        """
        with self._lock:
            digest = self.resolve(tenant)
            entry = self._tenants[digest]
            self._tenants.move_to_end(digest)
            if entry.service is not None:
                self.stats.hits += 1
                return entry.service
            start = time.perf_counter()
            entry.service = AnalysisService.from_snapshot_document(
                entry.document, path=entry.path or "<registry>"
            )
            self.stats.restores += 1
            self.stats.restore_seconds += time.perf_counter() - start
            self._evict_over_budget(keep=digest)
            return entry.service

    def default_tenant(self) -> Optional[str]:
        """The digest of the only tenant, if exactly one is registered."""
        with self._lock:
            if len(self._tenants) == 1:
                return next(iter(self._tenants))
            return None

    def _evict_over_budget(self, keep: str) -> None:
        if self.byte_budget is None:
            return
        while self.warm_bytes() > self.byte_budget:
            victim = next(
                (
                    tenant for tenant in self._tenants.values()
                    if tenant.warm and not tenant.pinned
                    and tenant.digest != keep
                ),
                None,
            )
            if victim is None:
                return  # only the just-restored (or pinned) remain
            victim.service = None
            self.stats.evictions += 1

    # -- introspection --------------------------------------------------

    def warm_bytes(self) -> int:
        with self._lock:
            return sum(
                tenant.byte_size for tenant in self._tenants.values()
                if tenant.warm and not tenant.pinned
            )

    def tenants(self) -> List[Dict]:
        """One row per tenant for the gateway's ``tenants`` op."""
        with self._lock:
            return [
                {
                    "digest": tenant.digest,
                    "aliases": list(tenant.aliases),
                    "path": tenant.path,
                    "bytes": tenant.byte_size,
                    "warm": tenant.warm,
                    "pinned": tenant.pinned,
                    "generation": (
                        tenant.service.generation if tenant.warm else None
                    ),
                }
                for tenant in self._tenants.values()
            ]

    def describe(self) -> Dict:
        with self._lock:
            return {
                "tenants": len(self._tenants),
                "warm": sum(
                    1 for tenant in self._tenants.values() if tenant.warm
                ),
                "warm_bytes": self.warm_bytes(),
                "byte_budget": self.byte_budget,
                **self.stats.as_dict(),
            }
