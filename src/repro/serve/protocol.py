"""The ``repro-serve/2`` wire protocol.

Version 2 keeps the JSON-lines framing and the operation set of
``repro-serve/1`` (:mod:`repro.service.server`) and adds what a
multi-tenant gateway needs:

* **Tenant routing** — every service operation may carry a ``tenant``
  field naming a registered program (a snapshot digest or an alias).
  With exactly one tenant registered the field is optional; with more,
  omitting it is an ``unknown-tenant`` error.
* **Pipelining** — clients may write many requests before reading any
  response.  Responses echo the request ``id``; *same-tenant* requests
  from one connection are answered in arrival order, cross-tenant
  requests may interleave (hence the ids).
* **Admission control** — the gateway bounds its queue and its
  patience, and says so: an over-budget request is answered
  immediately with ``code: "overload"``, one that waited past the
  per-op deadline with ``code: "timeout"``, and one arriving during
  shutdown with ``code: "draining"`` — never a silently dropped
  connection.

Requests and responses are exactly the ``repro-serve/1`` shapes (see
:mod:`repro.service.server`), with ``ping`` answering
``"repro-serve/2"`` and two gateway-level operations added:

* ``{"op": "stats"}`` *without* a tenant returns the gateway's own
  statistics (per-op latency percentiles, queue depth, batch sizes,
  registry hit rate); with a tenant it returns that service's
  :meth:`~repro.service.AnalysisService.stats` as in version 1.
* ``{"op": "tenants"}`` lists the registered tenants.
* ``{"op": "shutdown"}`` closes the connection; with
  ``"scope": "gateway"`` it initiates a graceful drain of the whole
  gateway.

This module is the pure-data part: constants, operation
classification, and request validation shared by the gateway and the
load generator.  No sockets, no asyncio.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.service.server import (
    ERROR_CODES,
    _REQUIRED_FIELDS,
    error_response,
)

PROTOCOL_V2 = "repro-serve/2"

#: Admission-control codes the gateway adds on top of the
#: ``repro-serve/1`` :data:`~repro.service.server.ERROR_CODES`.
ADMISSION_ERROR_CODES = (
    "overload",        # queue_limit reached: rejected at the door
    "timeout",         # waited past the per-op deadline in the queue
    "draining",        # the gateway is shutting down
    "unknown-tenant",  # "tenant" names no registered program
)

#: Every code a ``repro-serve/2`` response may carry.
ALL_ERROR_CODES = ERROR_CODES + ADMISSION_ERROR_CODES

#: Read-only service operations the gateway may execute together in
#: one micro-batch (they share the service's read path and commute).
BATCHABLE_OPS = frozenset(
    {"points_to", "alias", "callees", "fields_of", "check", "stats"}
)

#: Operations that mutate the tenant's service.  A barrier: pending
#: batches flush first, the barrier runs alone, later work queues
#: behind it — per-tenant arrival order is always execution order.
BARRIER_OPS = frozenset({"update"})

#: Operations the gateway answers itself, on the event loop, without
#: touching any tenant service.
GATEWAY_OPS = frozenset({"ping", "tenants", "shutdown"})


def classify(request: Dict) -> str:
    """``"gateway"``, ``"barrier"``, ``"batch"`` or ``"invalid"``.

    ``stats`` is the one op living on both sides of the tenant line:
    without a ``tenant`` field it is a gateway op, with one it is a
    batchable service op.
    """
    op = request.get("op") if isinstance(request, dict) else None
    if op == "stats":
        return "batch" if "tenant" in request else "gateway"
    if op in GATEWAY_OPS:
        return "gateway"
    if op in BARRIER_OPS:
        return "barrier"
    if op in BATCHABLE_OPS:
        return "batch"
    return "invalid"


def validate(request) -> Tuple[Optional[str], Optional[Dict]]:
    """``(op, None)`` for a well-formed request, ``(None, error)`` not.

    Mirrors the checks :func:`repro.service.server.handle_request`
    performs, so the gateway can reject malformed requests on the
    event loop without spending an executor slot on them.
    """
    if not isinstance(request, dict) or "op" not in request:
        request_id = request.get("id") if isinstance(request, dict) else None
        return None, error_response(
            request_id, "bad-request",
            "request must be an object with an 'op' field",
        )
    request_id = request.get("id")
    op = request["op"]
    if op == "tenants":  # gateway-only op, unknown to repro-serve/1
        return op, None
    required = _REQUIRED_FIELDS.get(op)
    if required is None:
        return None, error_response(
            request_id, "unknown-op",
            f"unknown op {op!r}; expected one of"
            f" {sorted(set(_REQUIRED_FIELDS) | {'tenants'})}",
        )
    missing = [field for field in required if field not in request]
    if missing:
        return None, error_response(
            request_id, "missing-field",
            f"op {op!r} requires field(s) {missing}",
        )
    return op, None
