"""Client checkers: points-to-powered static analyses.

The public surface:

* :func:`run_checks` — run (a subset of) the registered checkers over
  one :class:`~repro.core.results.AnalysisResult`;
* :class:`Checker` / :class:`Finding` / :class:`CheckReport` — the
  framework types (``repro-check/1`` reports with a content digest);
* :class:`CheckConfig` — thread roots and taint sources;
* :func:`all_checkers` / :func:`get_checkers` — the registry.

See ``docs/api.md`` ("Client checkers") for the code table and the
report schema.
"""

from repro.checkers.framework import (
    REPORT_SCHEMA,
    CheckConfig,
    CheckError,
    CheckReport,
    Checker,
    Finding,
    Severity,
    all_checkers,
    checker_names,
    describe_report,
    get_checkers,
    register,
    run_checks,
)
from repro.checkers import checks  # noqa: F401  (registers the builtins)

__all__ = [
    "REPORT_SCHEMA",
    "CheckConfig",
    "CheckError",
    "CheckReport",
    "Checker",
    "Finding",
    "Severity",
    "all_checkers",
    "checker_names",
    "describe_report",
    "get_checkers",
    "register",
    "run_checks",
]
