"""The builtin client checkers (code families CK1xx–CK5xx).

Each checker reads only *context-insensitive projections* of the
derived relations (plus input facts), so reports are identical across
the two abstractions wherever their CI projections agree, and each is
*anti-monotone in precision*: a more precise configuration can only
shrink the relations a finding rests on, so its findings on a program
are a subset of the context-insensitive run's findings.

Code table (also rendered in ``docs/api.md``):

========  ========  ========================================================
code      severity  meaning
========  ========  ========================================================
CK101     warning   dispatch receiver may hold an object with no
                    implementation of the invoked signature (the implicit
                    downcast at the call is not provably safe)
CK102     error     *every* object the receiver may hold lacks the invoked
                    signature — the dispatch fails whenever reached
CK201     info      virtual call site left polymorphic (≥ 2 targets); the
                    metrics count the sites proved monomorphic
CK301     warning   may-alias race: two field accesses (≥ 1 write) on
                    aliasing receivers, reachable from different thread
                    roots
CK401     warning   static-field leak: a static field may retain an object
                    allocated at a configured taint-source site
CK501     info      dead code: a declared method unreachable from the entry
                    point
========  ========  ========================================================
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.checkers.framework import (
    CheckConfig, Checker, Finding, Severity, register,
)
from repro.core.results import AnalysisResult
from repro.frontend.factgen import FactSet


# ----------------------------------------------------------------------
# Shared projections over one (result, facts) pair.
# ----------------------------------------------------------------------


class CheckContext:
    """Lazily-computed shared views the checkers read."""

    def __init__(self, result: AnalysisResult, facts: FactSet):
        self.result = result
        self.facts = facts
        self._memo: Dict[str, object] = {}

    def _cached(self, key, compute):
        if key not in self._memo:
            self._memo[key] = compute()
        return self._memo[key]

    @property
    def pts_by_var(self) -> Dict[str, Set[str]]:
        def compute():
            out: Dict[str, Set[str]] = defaultdict(set)
            for (var, heap) in self.result.pts_ci():
                out[var].add(heap)
            return out
        return self._cached("pts_by_var", compute)

    @property
    def heap_type(self) -> Dict[str, str]:
        return self._cached(
            "heap_type", lambda: dict(self.facts.heap_type)
        )

    @property
    def implementors(self) -> Dict[str, Set[str]]:
        """signature → the types that implement it."""
        def compute():
            out: Dict[str, Set[str]] = defaultdict(set)
            for (_method, type_name, signature) in self.facts.implements:
                out[signature].add(type_name)
            return out
        return self._cached("implementors", compute)

    @property
    def callees_by_site(self) -> Dict[str, Set[str]]:
        def compute():
            out: Dict[str, Set[str]] = defaultdict(set)
            for (site, method) in self.result.call_graph():
                out[site].add(method)
            return out
        return self._cached("callees_by_site", compute)

    @property
    def reachable(self) -> FrozenSet[str]:
        return self._cached(
            "reachable", self.result.reachable_methods
        )

    @property
    def sites_by_method(self) -> Dict[str, List[str]]:
        def compute():
            out: Dict[str, List[str]] = defaultdict(list)
            for site, method in sorted(
                self.facts.invocation_parent.items()
            ):
                out[method].append(site)
            return out
        return self._cached("sites_by_method", compute)

    @property
    def heap_method(self) -> Dict[str, str]:
        """Allocation site → the method containing the allocation."""
        return self._cached(
            "heap_method",
            lambda: {h: p for (h, _y, p) in self.facts.assign_new},
        )

    @property
    def declared_methods(self) -> FrozenSet[str]:
        """Every method the input relations declare or mention."""
        def compute():
            facts = self.facts
            out: Set[str] = set()
            out.update(p for (_y, p, _o) in facts.formal)
            out.update(q for (_y, q) in facts.this_var)
            out.update(p for (_h, _y, p) in facts.assign_new)
            out.update(p for (_f, _y, p) in facts.static_load)
            out.update(p for (_z, p) in facts.return_var)
            out.update(p for (_x, p) in facts.throw_var)
            out.update(p for (_y, p) in facts.catch_var)
            out.update(q for (_i, q, _p) in facts.static_invoke)
            out.update(p for (_i, _q, p) in facts.static_invoke)
            out.update(q for (q, _t, _s) in facts.implements)
            out.update(facts.invocation_parent.values())
            if facts.main_method:
                out.add(facts.main_method)
            return frozenset(out)
        return self._cached("declared_methods", compute)

    @property
    def method_of_var(self) -> Dict[str, str]:
        """Variable → enclosing method, from the relations that place a
        variable in a method (with the ``Cls.m/v`` naming convention as
        a fallback for variables only mentioned positionally)."""
        def compute():
            facts = self.facts
            out: Dict[str, str] = {}
            for (y, p, _o) in facts.formal:
                out[y] = p
            for (y, q) in facts.this_var:
                out[y] = q
            for (_h, y, p) in facts.assign_new:
                out[y] = p
            for (_f, y, p) in facts.static_load:
                out[y] = p
            for (z, p) in facts.return_var:
                out[z] = p
            for (x, p) in facts.throw_var:
                out[x] = p
            for (y, p) in facts.catch_var:
                out[y] = p
            return out
        return self._cached("method_of_var", compute)

    def enclosing_method(self, var: str) -> str:
        method = self.method_of_var.get(var)
        if method is not None:
            return method
        # Variables are qualified "Cls.method/name".
        return var.rsplit("/", 1)[0]

    def thread_roots(self, config: CheckConfig) -> Tuple[str, ...]:
        """Race-checker entry points: ``main``, every ``*.run`` method,
        plus the configured extras (sorted, deduplicated)."""
        roots: Set[str] = set(config.thread_roots)
        if self.facts.main_method:
            roots.add(self.facts.main_method)
        for method in self.declared_methods:
            if method.split(".")[-1] == "run":
                roots.add(method)
        return tuple(sorted(roots))

    def reachable_from(self, root: str) -> FrozenSet[str]:
        """Methods reachable from ``root`` over the analysis call graph
        (which only has edges for analysis-reachable code, so this is
        always a subset of :attr:`reachable` ∪ {root})."""
        def compute():
            seen = {root}
            frontier = [root]
            while frontier:
                method = frontier.pop()
                for site in self.sites_by_method.get(method, ()):
                    for callee in self.callees_by_site.get(site, ()):
                        if callee not in seen:
                            seen.add(callee)
                            frontier.append(callee)
            return frozenset(seen)
        return self._cached(("reachable_from", root), compute)


def _fmt_set(items, limit: int = 4) -> str:
    ordered = sorted(items)
    if len(ordered) > limit:
        return ", ".join(ordered[:limit]) + f", … ({len(ordered)} total)"
    return ", ".join(ordered)


# ----------------------------------------------------------------------
# CK1xx — downcast safety.
# ----------------------------------------------------------------------


@register
class DowncastChecker(Checker):
    """Virtual dispatches the points-to sets cannot prove well-typed.

    Every virtual call ``z.s(…)`` carries an implicit downcast of the
    receiver to "some type implementing ``s``"; the checker flags the
    sites where ``pts(z)`` contains an object whose type has no
    implementation of the invoked signature.  Imprecise analyses
    conflate unrelated objects into ``pts(z)`` and fire these findings;
    context sensitivity makes them disappear — the paper's client-level
    precision story in one checker.
    """

    name = "downcast"
    prefix = "CK1"
    codes = {
        "CK101": "receiver may hold an object with no implementation of"
                 " the invoked signature",
        "CK102": "every object the receiver may hold lacks the invoked"
                 " signature (dispatch fails whenever reached)",
    }
    inputs = ("pts", "virtual_invoke", "heap_type", "implements")

    def run(self, result, facts, config):
        ctx = CheckContext(result, facts)
        findings: List[Finding] = []
        sites = checked = 0
        for (site, receiver, signature) in sorted(facts.virtual_invoke):
            sites += 1
            pointees = ctx.pts_by_var.get(receiver, ())
            if not pointees:
                continue  # dead site: no receiver objects at all
            checked += 1
            implementors = ctx.implementors.get(signature, set())
            bad = sorted(
                h for h in pointees
                if ctx.heap_type.get(h) not in implementors
            )
            if not bad:
                continue
            definite = len(bad) == len(pointees)
            code = "CK102" if definite else "CK101"
            severity = Severity.ERROR if definite else Severity.WARNING
            described = _fmt_set(
                f"{h} ({ctx.heap_type.get(h, '?')})" for h in bad
            )
            qualifier = "only" if definite else "may"
            findings.append(Finding(
                code=code,
                checker=self.name,
                severity=severity,
                subject=site,
                message=(
                    f"receiver {receiver} of {signature} at {site}"
                    f" {qualifier} point{'s' if definite else ''} to"
                    f" objects without {signature}: {described}"
                ),
                witness=tuple(
                    ("pts", receiver, h) for h in bad
                ),
            ))
        return findings, {
            "virtual_sites": sites,
            "checked_sites": checked,
            "unsafe_sites": len(findings),
        }


# ----------------------------------------------------------------------
# CK2xx — devirtualization.
# ----------------------------------------------------------------------


@register
class DevirtualizationChecker(Checker):
    """Virtual call sites the call graph leaves polymorphic.

    A site with exactly one analysis target can be devirtualized
    (inlined / statically bound); sites with ≥ 2 targets are reported
    as CK201.  Only the *polymorphic* sites become findings — the
    proved-monomorphic count grows with precision and lives in the
    metrics, keeping findings anti-monotone.
    """

    name = "devirt"
    prefix = "CK2"
    codes = {
        "CK201": "virtual call site left polymorphic (≥ 2 targets)",
    }
    inputs = ("call", "virtual_invoke")

    def run(self, result, facts, config):
        ctx = CheckContext(result, facts)
        findings: List[Finding] = []
        monomorphic = unresolved = 0
        for (site, _receiver, signature) in sorted(facts.virtual_invoke):
            targets = sorted(ctx.callees_by_site.get(site, ()))
            if not targets:
                unresolved += 1
            elif len(targets) == 1:
                monomorphic += 1
            else:
                findings.append(Finding(
                    code="CK201",
                    checker=self.name,
                    severity=Severity.INFO,
                    subject=site,
                    message=(
                        f"call to {signature} at {site} dispatches to"
                        f" {len(targets)} targets: {_fmt_set(targets)}"
                    ),
                    witness=tuple(
                        ("call", site, target) for target in targets
                    ),
                ))
        return findings, {
            "virtual_sites": len(facts.virtual_invoke),
            "monomorphic": monomorphic,
            "polymorphic": len(findings),
            "unresolved": unresolved,
        }


# ----------------------------------------------------------------------
# CK3xx — may-alias races.
# ----------------------------------------------------------------------


@register
class RaceChecker(Checker):
    """Field-access pairs that may race across thread roots.

    An *access* is a field load or store; two accesses race when they
    name the same field, at least one writes, their base variables may
    alias (common points-to site), and their enclosing methods are
    reachable from *different* thread roots (see
    :meth:`CheckContext.thread_roots`; a direct call ``main → X.run``
    models ``Thread.start``).  One finding per unordered access pair,
    keyed by a canonical subject string.
    """

    name = "races"
    prefix = "CK3"
    codes = {
        "CK301": "conflicting field accesses on aliasing receivers"
                 " reachable from different thread roots",
    }
    inputs = (
        "pts", "call", "reach", "load", "store",
        "virtual_invoke", "static_invoke", "invocation_parent",
    )

    def run(self, result, facts, config):
        ctx = CheckContext(result, facts)
        roots = ctx.thread_roots(config)
        root_cover = {root: ctx.reachable_from(root) for root in roots}
        reachable = ctx.reachable

        # (kind, base, field, method) per access; loads are (Y, F, Z),
        # stores are (X, F, Z) with Z the base.
        accesses = []
        for (base, fieldname, _dst) in sorted(facts.load):
            accesses.append(("read", base, fieldname))
        for (_src, fieldname, base) in sorted(facts.store):
            accesses.append(("write", base, fieldname))

        def roots_of(method: str) -> Tuple[str, ...]:
            return tuple(
                root for root in roots if method in root_cover[root]
            )

        findings: List[Finding] = []
        seen_subjects = set()
        pairs = 0
        for index, (kind_a, base_a, field_a) in enumerate(accesses):
            method_a = ctx.enclosing_method(base_a)
            if method_a not in reachable:
                continue
            pts_a = ctx.pts_by_var.get(base_a, set())
            if not pts_a:
                continue
            roots_a = roots_of(method_a)
            if not roots_a:
                continue
            for (kind_b, base_b, field_b) in accesses[index:]:
                if field_a != field_b:
                    continue
                if kind_a != "write" and kind_b != "write":
                    continue
                method_b = ctx.enclosing_method(base_b)
                if method_b not in reachable:
                    continue
                roots_b = roots_of(method_b)
                # Need two *distinct* roots able to reach the accesses.
                if not any(
                    ra != rb for ra in roots_a for rb in roots_b
                ):
                    continue
                shared = pts_a & ctx.pts_by_var.get(base_b, set())
                if not shared:
                    continue
                pairs += 1
                endpoints = sorted([
                    f"{method_a}:{base_a}[{kind_a}]",
                    f"{method_b}:{base_b}[{kind_b}]",
                ])
                subject = f"{field_a}|{endpoints[0]}|{endpoints[1]}"
                if subject in seen_subjects:
                    continue
                seen_subjects.add(subject)
                findings.append(Finding(
                    code="CK301",
                    checker=self.name,
                    severity=Severity.WARNING,
                    subject=subject,
                    message=(
                        f"field {field_a} of {_fmt_set(shared)} is"
                        f" {kind_a} via {base_a} in {method_a} and"
                        f" {kind_b} via {base_b} in {method_b},"
                        f" reachable from distinct roots"
                        f" ({_fmt_set(set(roots_a) | set(roots_b))})"
                    ),
                    witness=tuple(
                        ("pts", base, heap)
                        for base in sorted({base_a, base_b})
                        for heap in sorted(shared)
                    ),
                ))
        return findings, {
            "thread_roots": len(roots),
            "accesses": len(accesses),
            "racy_pairs": pairs,
            "races": len(findings),
        }


# ----------------------------------------------------------------------
# CK4xx — static-field leaks.
# ----------------------------------------------------------------------


@register
class LeakChecker(Checker):
    """Objects from taint-source sites retained by static fields.

    Static fields live for the whole program; the checker flags every
    ``spts(F, H)`` row whose allocation site ``H`` matches a configured
    taint source (by heap label or heap type name; no configured
    sources means every site counts).
    """

    name = "leaks"
    prefix = "CK4"
    codes = {
        "CK401": "static field may retain an object from a taint-source"
                 " allocation site",
    }
    inputs = ("spts", "static_store", "heap_type", "assign_new")

    def run(self, facts_result, facts, config):
        ctx = CheckContext(facts_result, facts)
        sources = set(config.taint_sources)

        def is_source(heap: str) -> bool:
            if not sources:
                return True
            return heap in sources or ctx.heap_type.get(heap) in sources

        spts_ci: Dict[str, Set[str]] = defaultdict(set)
        for (fieldname, heap, _a) in facts_result.spts:
            spts_ci[fieldname].add(heap)

        findings: List[Finding] = []
        retained = 0
        for fieldname in sorted(spts_ci):
            heaps = sorted(h for h in spts_ci[fieldname] if is_source(h))
            retained += len(heaps)
            for heap in heaps:
                where = ctx.heap_method.get(heap, "?")
                findings.append(Finding(
                    code="CK401",
                    checker=self.name,
                    severity=Severity.WARNING,
                    subject=f"{fieldname}<-{heap}",
                    message=(
                        f"static field {fieldname} may retain {heap}"
                        f" ({ctx.heap_type.get(heap, '?')}) allocated"
                        f" in {where}"
                    ),
                    witness=(("spts", fieldname, heap),),
                ))
        return findings, {
            "static_fields": len(spts_ci),
            "retained_sites": retained,
            "leaks": len(findings),
        }


# ----------------------------------------------------------------------
# CK5xx — dead code.
# ----------------------------------------------------------------------


@register
class DeadCodeChecker(Checker):
    """Declared methods the analysis proves unreachable."""

    name = "deadcode"
    prefix = "CK5"
    codes = {
        "CK501": "declared method unreachable from the entry point",
    }
    inputs = (
        "reach", "formal", "this_var", "assign_new", "return_var",
        "static_invoke", "implements", "throw_var", "catch_var",
        "static_load", "invocation_parent",
    )

    def run(self, result, facts, config):
        ctx = CheckContext(result, facts)
        reachable = ctx.reachable
        declared = ctx.declared_methods
        dead = sorted(declared - reachable)
        entry = facts.main_method or "the entry point"
        findings = [
            Finding(
                code="CK501",
                checker=self.name,
                severity=Severity.INFO,
                subject=method,
                message=f"method {method} is never reached from {entry}",
            )
            for method in dead
        ]
        return findings, {
            "declared": len(declared),
            "reachable": len(declared & reachable),
            "dead": len(dead),
        }
