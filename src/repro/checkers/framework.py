"""The client-checker framework: checkers, findings, reports.

The paper's evaluation (like Doop's) ultimately judges a pointer
analysis by *client queries* — failable casts, polymorphic call sites,
may-alias pairs.  This package is that client layer: a small registry of
:class:`Checker` subclasses, each consuming one
:class:`~repro.core.results.AnalysisResult` plus the input
:class:`~repro.frontend.factgen.FactSet` and emitting typed
:class:`Finding` objects with stable codes (``CK101`` …).

Design invariants the acceptance tests rely on:

* **Findings are context-insensitive.**  Witness facts are CI
  projections (``("pts", var, heap)``, ``("call", site, method)`` …),
  never transformer/context objects — so the two abstractions produce
  bit-identical reports at equal ``(m, h)`` wherever their CI
  projections agree (Theorem 6.2).
* **Finding identity is ``(code, subject)``** and precision
  monotonicity is judged per checker on subjects: a more precise
  configuration may only *remove* findings, never add them.
* **Reports are deterministic.**  Findings sort by ``(code, subject)``;
  the ``repro-check/1`` JSON digest covers the *body* only (config,
  checks, findings, metrics) — not the generation or timing — so a live
  solve, a loaded snapshot and a delta-patched service all emit
  byte-identical bodies.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import (
    Dict, Iterable, List, Mapping, Optional, Sequence, Tuple,
)

from repro.core.results import AnalysisResult
from repro.frontend.factgen import FactSet

#: JSON report schema identifier; bump the suffix on breaking changes.
REPORT_SCHEMA = "repro-check/1"


class CheckError(ValueError):
    """A malformed or corrupted ``repro-check/1`` document."""


class Severity(enum.IntEnum):
    """Finding severity, ordered so gating can compare (info < error)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise CheckError(
                f"unknown severity {text!r}; expected one of"
                f" {[s.label for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One checker result.

    ``subject`` is the stable identity attribute (a call site, a field
    access pair, a method …); ``witness`` holds the context-insensitive
    derived facts the finding rests on, each a tuple whose head is the
    relation kind (``pts``, ``call``, ``spts``, ``texc``, ``reach``).
    """

    code: str
    checker: str
    severity: Severity
    subject: str
    message: str
    witness: Tuple[Tuple[str, ...], ...] = ()

    @property
    def identity(self) -> Tuple[str, str]:
        return (self.code, self.subject)

    def sort_key(self) -> Tuple[str, str]:
        return (self.code, self.subject)

    def to_json(self) -> Dict:
        return {
            "code": self.code,
            "checker": self.checker,
            "severity": self.severity.label,
            "subject": self.subject,
            "message": self.message,
            "witness": [list(fact) for fact in self.witness],
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "Finding":
        try:
            return cls(
                code=data["code"],
                checker=data["checker"],
                severity=Severity.parse(data["severity"]),
                subject=data["subject"],
                message=data["message"],
                witness=tuple(
                    tuple(fact) for fact in data.get("witness", ())
                ),
            )
        except (KeyError, TypeError) as error:
            raise CheckError(f"malformed finding object: {error}") from error

    # -- provenance ----------------------------------------------------

    def explain(self, result: AnalysisResult, max_depth: int = 8) -> str:
        """Render the finding plus a derivation tree per witness fact.

        Reuses :meth:`AnalysisResult.explain` (and therefore requires a
        result solved with ``track_provenance=True``); without
        provenance the witness facts are still listed, un-expanded.
        """
        lines = [f"{self.code} [{self.severity.label}] {self.subject}:"
                 f" {self.message}"]
        for fact in self.witness:
            lines.append(_explain_witness(result, fact, max_depth))
        return "\n".join(lines)


def _explain_witness(
    result: AnalysisResult, fact: Tuple[str, ...], max_depth: int
) -> str:
    """One witness fact's derivation, indented under the finding."""
    rendered = f"{fact[0]}({', '.join(fact[1:])})"
    if not result.config.track_provenance:
        return (f"  {rendered}"
                "   [solve with track_provenance=True for a derivation]")
    kind = fact[0]
    # Witness facts are CI; find the context-sensitive facts behind one.
    if kind == "pts":
        _, var, heap = fact
        tree = result.explain_points_to(var, heap, max_depth)
    else:
        relation = getattr(result, kind, None)
        keys = []
        if relation is not None:
            for row in relation:
                if tuple(str(r) for r in row[:len(fact) - 1]) == fact[1:]:
                    keys.append((kind,) + tuple(row))
        if not keys:
            return f"  {rendered}   [no derivation recorded]"
        tree = "\n".join(
            result.explain(key, max_depth) for key in sorted(keys, key=str)
        )
    return "\n".join("  " + line for line in tree.splitlines())


@dataclass(frozen=True)
class CheckConfig:
    """Tunable checker inputs (all optional; defaults are sensible).

    ``thread_roots`` adds entry-point methods for the race checker on
    top of the automatic roots (the program's ``main`` plus every
    method whose unqualified name is ``run`` — the conventional model
    of ``Thread.start``).  ``taint_sources`` restricts the leak
    checker's source allocation sites: each entry matches a heap label
    or a heap type name; empty means *every* site is a source.
    """

    thread_roots: Tuple[str, ...] = ()
    taint_sources: Tuple[str, ...] = ()

    def to_json(self) -> Dict:
        return {
            "thread_roots": sorted(self.thread_roots),
            "taint_sources": sorted(self.taint_sources),
        }


class Checker:
    """Base class: one client analysis over a solved result.

    Subclasses set ``name`` (registry key), ``prefix`` (the ``CKn``
    code family), ``codes`` (code → meaning, for docs and reports) and
    ``inputs`` — the derived/input relation names whose change
    invalidates this checker's findings.  ``inputs`` is the incremental
    re-check contract: :meth:`AnalysisService.check` re-runs a checker
    after a :class:`~repro.incremental.FactDelta` only when the delta
    touched one of these relations.
    """

    name: str = ""
    prefix: str = ""
    codes: Mapping[str, str] = {}
    inputs: Tuple[str, ...] = ()

    def run(
        self,
        result: AnalysisResult,
        facts: FactSet,
        config: CheckConfig,
    ) -> Tuple[List[Finding], Dict[str, int]]:
        """Return ``(findings, metrics)``; metrics are integer counts."""
        raise NotImplementedError

    def describe(self) -> Dict:
        return {
            "name": self.name,
            "prefix": self.prefix,
            "codes": dict(self.codes),
            "inputs": list(self.inputs),
        }


#: The checker registry, in registration (= report) order.
_REGISTRY: "Dict[str, Checker]" = {}


def register(checker_cls):
    """Class decorator: instantiate and register a checker."""
    instance = checker_cls()
    if not instance.name or not instance.prefix:
        raise ValueError("checkers must define 'name' and 'prefix'")
    _REGISTRY[instance.name] = instance
    return checker_cls


def all_checkers() -> Tuple[Checker, ...]:
    """Every registered checker, in registration order."""
    _ensure_builtin()
    return tuple(_REGISTRY.values())


def checker_names() -> Tuple[str, ...]:
    return tuple(checker.name for checker in all_checkers())


def get_checkers(names: Optional[Iterable[str]]) -> Tuple[Checker, ...]:
    """Resolve checker names or code prefixes (``races``, ``CK3``,
    ``CK301``, ``CK3xx``) to registry entries, in registry order."""
    checkers = all_checkers()
    if names is None:
        return checkers
    requested = [str(name).strip() for name in names if str(name).strip()]
    if not requested:
        return checkers
    matched = set()
    for name in requested:
        # A code or code prefix: "CK3", "CK3xx", "CK301" all select the
        # checker whose family prefix is "CK3".
        code = name.upper().rstrip("X")
        hits = {
            checker.name
            for checker in checkers
            if name.lower() == checker.name
            or (code.startswith("CK") and code.startswith(checker.prefix))
        }
        if not hits:
            raise CheckError(
                f"unknown checker {name!r}; expected names"
                f" {sorted(c.name for c in checkers)} or codes"
                f" {sorted(c.prefix for c in checkers)}"
            )
        matched |= hits
    return tuple(c for c in checkers if c.name in matched)


def _ensure_builtin() -> None:
    # Importing the module registers the builtin checkers exactly once.
    from repro.checkers import checks  # noqa: F401


# ----------------------------------------------------------------------
# Reports.
# ----------------------------------------------------------------------


@dataclass
class CheckReport:
    """One check run: the findings of the selected checkers.

    ``generation`` and ``seconds`` are header metadata — they describe
    *this* run and are excluded from the content digest, so equal
    analysis states yield equal digests regardless of how (or when) the
    state was produced.
    """

    config_description: str
    checks: Tuple[str, ...]
    findings: Tuple[Finding, ...]
    metrics: Dict[str, Dict[str, int]]
    check_config: CheckConfig = field(default_factory=CheckConfig)
    generation: int = 0
    seconds: float = 0.0

    def __post_init__(self) -> None:
        self.findings = tuple(
            sorted(self.findings, key=Finding.sort_key)
        )

    # -- queries -------------------------------------------------------

    def count(self, code_prefix: str = "") -> int:
        return sum(
            1 for f in self.findings if f.code.startswith(code_prefix)
        )

    def by_checker(self) -> Dict[str, Tuple[Finding, ...]]:
        out: Dict[str, List[Finding]] = {name: [] for name in self.checks}
        for finding in self.findings:
            out.setdefault(finding.checker, []).append(finding)
        return {name: tuple(fs) for name, fs in out.items()}

    def counts_by_severity(self) -> Dict[str, int]:
        out = {severity.label: 0 for severity in Severity}
        for finding in self.findings:
            out[finding.severity.label] += 1
        return out

    def max_severity(self) -> Optional[Severity]:
        return max(
            (f.severity for f in self.findings), default=None
        )

    def failed(self, fail_on: Optional[Severity]) -> bool:
        """True iff any finding reaches the gating severity."""
        if fail_on is None:
            return False
        worst = self.max_severity()
        return worst is not None and worst >= fail_on

    # -- serialization -------------------------------------------------

    def body(self) -> Dict:
        return {
            "config": self.config_description,
            "checks": list(self.checks),
            "check_config": self.check_config.to_json(),
            "findings": [f.to_json() for f in self.findings],
            "metrics": {
                name: dict(values)
                for name, values in sorted(self.metrics.items())
            },
            "counts": self.counts_by_severity(),
        }

    def digest(self) -> str:
        return _digest(self.body())

    def findings_digest(self) -> str:
        """Digest over findings + metrics only (no config description):
        the quantity the two abstractions must agree on bit-for-bit at
        equal ``(m, h)`` (Theorem 6.2 lifted to the client layer)."""
        return _digest({
            "findings": [f.to_json() for f in self.findings],
            "metrics": {
                name: dict(values)
                for name, values in sorted(self.metrics.items())
            },
        })

    def to_json(self) -> Dict:
        return {
            "schema": REPORT_SCHEMA,
            "digest": self.digest(),
            "generation": self.generation,
            "seconds": self.seconds,
            "body": self.body(),
        }

    @classmethod
    def from_json(cls, document: Mapping) -> "CheckReport":
        """Decode and *verify* a ``repro-check/1`` document."""
        if not isinstance(document, Mapping):
            raise CheckError("check report must be a JSON object")
        schema = document.get("schema")
        if schema != REPORT_SCHEMA:
            raise CheckError(
                f"unsupported check-report schema {schema!r};"
                f" expected {REPORT_SCHEMA!r}"
            )
        body = document.get("body")
        if not isinstance(body, Mapping):
            raise CheckError("check report is missing its 'body' object")
        recorded = document.get("digest")
        actual = _digest(body)
        if recorded != actual:
            raise CheckError(
                f"check-report digest mismatch: header says {recorded!r},"
                f" body hashes to {actual!r} (corrupted or hand-edited?)"
            )
        check_config = body.get("check_config", {})
        report = cls(
            config_description=body.get("config", ""),
            checks=tuple(body.get("checks", ())),
            findings=tuple(
                Finding.from_json(item)
                for item in body.get("findings", ())
            ),
            metrics={
                name: dict(values)
                for name, values in body.get("metrics", {}).items()
            },
            check_config=CheckConfig(
                thread_roots=tuple(check_config.get("thread_roots", ())),
                taint_sources=tuple(check_config.get("taint_sources", ())),
            ),
            generation=int(document.get("generation", 0)),
            seconds=float(document.get("seconds", 0.0)),
        )
        counts = body.get("counts")
        if counts is not None and dict(counts) != report.counts_by_severity():
            raise CheckError(
                "check-report severity counts disagree with its findings"
            )
        return report

    # -- rendering -----------------------------------------------------

    def summary(self) -> str:
        counts = self.counts_by_severity()
        total = len(self.findings)
        parts = ", ".join(
            f"{counts[s.label]} {s.label}"
            for s in sorted(Severity, reverse=True)
            if counts[s.label]
        ) or "no findings"
        return (
            f"{total} finding{'s' if total != 1 else ''} ({parts})"
            f" from {len(self.checks)} checker"
            f"{'s' if len(self.checks) != 1 else ''}"
            f" [{self.config_description}]"
        )

    def render(self) -> str:
        lines = [f"check report: {self.summary()}"]
        for finding in self.findings:
            lines.append(
                f"  {finding.code} {finding.severity.label:7s}"
                f" {finding.subject}: {finding.message}"
            )
        for name in self.checks:
            metrics = self.metrics.get(name, {})
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(metrics.items())
            )
            lines.append(f"  [{name}] {rendered}")
        return "\n".join(lines)


def _digest(body: Mapping) -> str:
    canonical = json.dumps(
        body, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def describe_report(path: str) -> Dict:
    """Load + verify a report file; a summary dict for ``repro lint``.

    Raises :class:`CheckError` on schema violations, digest mismatches
    or inconsistent severity counts.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as error:
            raise CheckError(f"not JSON: {error}") from error
    report = CheckReport.from_json(document)
    return {
        "schema": REPORT_SCHEMA,
        "config": report.config_description,
        "generation": report.generation,
        "checks": list(report.checks),
        "findings": len(report.findings),
        "counts": report.counts_by_severity(),
        "digest": report.digest(),
    }


def run_checks(
    result: AnalysisResult,
    facts: FactSet,
    checks: Optional[Sequence[str]] = None,
    config: CheckConfig = CheckConfig(),
    generation: int = 0,
) -> CheckReport:
    """Run the selected checkers over one solved result."""
    import time

    checkers = get_checkers(checks)
    findings: List[Finding] = []
    metrics: Dict[str, Dict[str, int]] = {}
    start = time.perf_counter()
    for checker in checkers:
        found, measured = checker.run(result, facts, config)
        findings.extend(found)
        metrics[checker.name] = measured
    return CheckReport(
        config_description=result.config.describe(),
        checks=tuple(checker.name for checker in checkers),
        findings=tuple(findings),
        metrics=metrics,
        check_config=config,
        generation=generation,
        seconds=time.perf_counter() - start,
    )
