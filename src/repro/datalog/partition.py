"""Partition/communication analysis over Datalog programs (DL4xx).

The paper's configuration specialization (Section 7) exists so that
every join of the emitted program is a fully-indexed equi-join over
flat attributes.  That is also exactly the shape that makes semi-naive
evaluation *partitionable*: hash every relation on one attribute (the
variable, heap or method column) and a rule whose body atoms are all
co-partitioned on the join anchor can run on each shard independently,
never probing another shard's data.

This module is the static analysis that proves it, rule by rule.  Given
a :class:`PartitionSpec` (predicate → partition column, or *replicated*
for relations kept whole on every shard), :func:`build_shard_plan`
classifies every rule of a program as

* **local** — every body atom is either replicated or partitioned on
  the rule's join anchor, and the head lands on the anchor's shard:
  provably zero cross-shard communication;
* **exchange** — the body evaluates locally but the head's partition
  attribute is bound to a different term, so derived rows must be
  repartitioned (shipped to their owner) at the end of each round;
* **broadcast** — some relation must be replicated for the rule to be
  evaluable at all: a body atom partitioned on a non-anchor attribute
  forces a *replica* copy (its deltas are broadcast every round), or
  the head derives into a replicated relation, or the rule has no
  partitioned body atom and is pinned to a single shard.

Every non-local classification carries a :class:`Witness` — the
offending join variable/atom pair, with the rule's source line/column
when the program was parsed from text — and is surfaced as a coded
diagnostic (see the DL4xx table in ``docs/api.md``):

* ``DL401`` (note) — head repartitioned (exchange edge);
* ``DL402`` (note) — co-partition violation: a relation is replicated
  (as a full *replica* next to its partitioned copy, or by the spec);
* ``DL403`` (warning) — the replicated relation is recursive with the
  rule's head: its deltas are broadcast **every fixpoint round**, so
  partitioning is defeated for this rule;
* ``DL404`` (note) — no partitioned body atom: the rule is pinned to a
  single shard;
* ``DL405`` (warning) — a negated literal probes a partitioned
  relation on a non-anchor attribute (negation needs the full view).

The resulting :class:`ShardPlan` — the stratum DAG annotated with
exchange edges — is load-bearing: :mod:`repro.datalog.parallel`
executes it, and its probe counters verify at run time what this
analysis proved statically.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import (
    Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple,
)

from repro.datalog.ast import Literal, Program, Rule, SourcePos, Term, Var
from repro.lint.diagnostics import Diagnostic, Severity


#: Default partition key for the pointer-analysis programs: hashing on
#: the heap attribute keeps the propagation core (``pts``/``hpts``/
#: ``hload`` copy rules) shard-local — roughly three quarters of the
#: emitted rules — where the variable and method keys leave most rules
#: non-local.
DEFAULT_KEY = "heap"


def stable_shard_of(value: object, shards: int) -> int:
    """Deterministic shard assignment, stable across processes and runs.

    Python's string hash is randomized per interpreter; partitioning
    must agree between the parent, every forked worker, and successive
    runs (the bench compares skew numbers), so integers map directly
    and everything else hashes its ``repr`` through CRC-32.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        return zlib.crc32(repr(value).encode("utf-8")) % shards
    return value % shards


# ---------------------------------------------------------------------------
# Partition specifications.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PartitionSpec:
    """Predicate → partition column, plus the replicated relations.

    ``columns`` maps a predicate to the 0-based attribute its rows are
    hashed on; predicates in ``replicated`` (or absent from both) are
    kept whole on every shard.  ``key`` names the partitioning entity
    (``variable``/``heap``/``method`` for the pointer-analysis
    programs) for reports.
    """

    key: str
    columns: Mapping[str, int]
    replicated: FrozenSet[str] = frozenset()

    def column_of(self, pred: str) -> Optional[int]:
        """The partition column of ``pred`` (None = replicated)."""
        if pred in self.replicated:
            return None
        return self.columns.get(pred)

    def is_partitioned(self, pred: str) -> bool:
        return self.column_of(pred) is not None

    def validate(self, program: Program) -> None:
        """Reject columns that fall outside a predicate's arity."""
        arities: Dict[str, int] = {}
        for rule in program.rules:
            for lit in (rule.head, *rule.body):
                arities.setdefault(lit.pred, lit.arity)
        for pred, rows in program.facts.items():
            for row in rows:
                arities.setdefault(pred, len(row))
                break
        for pred, column in self.columns.items():
            arity = arities.get(pred)
            if arity is not None and not 0 <= column < arity:
                raise ValueError(
                    f"partition column {column} out of range for"
                    f" {pred}/{arity}"
                )


#: Partition columns of the pointer-analysis relations, by key entity
#: and *base* relation name (configuration-specialized predicates like
#: ``pts__xwe`` and the length-specialized ``reach_2`` resolve to their
#: base).  A relation with no attribute of the key's entity kind is
#: replicated.
POINTER_KEYS: Dict[str, Dict[str, int]] = {
    "variable": {
        "pts": 0, "hload": 2,
        "assign": 0, "load": 0, "store": 0, "actual": 0,
        "return_var": 0, "throw_var": 0, "catch_var": 0,
        "static_store": 0, "this_var": 0, "formal": 0,
        "virtual_invoke": 1, "assign_return": 1, "assign_new": 1,
        "static_load": 1,
    },
    "heap": {
        "pts": 1, "hpts": 0, "hload": 0, "spts": 1, "texc": 1,
        "assign_new": 0, "heap_type": 0, "class_of": 0,
    },
    "method": {
        "call": 1, "reach": 0, "texc": 0,
        "formal": 1, "return_var": 1, "this_var": 1,
        "throw_var": 1, "catch_var": 1,
        "static_load": 2, "assign_new": 2, "implements": 0,
        "static_invoke": 2, "invocation_parent": 1,
    },
}


def base_predicate(pred: str) -> str:
    """The base relation of a specialized predicate name.

    ``pts__xwe`` → ``pts`` (configuration specialization),
    ``reach_2`` → ``reach`` (context-length specialization); anything
    else is its own base.
    """
    if "__" in pred:
        return pred.split("__", 1)[0]
    head, _, tail = pred.rpartition("_")
    if head and tail.isdigit():
        return head
    return pred


def pointer_partition_spec(program: Program, key: str = "variable") -> PartitionSpec:
    """Derive the :class:`PartitionSpec` for an emitted pointer program.

    ``key`` selects the partitioning entity: ``variable``, ``heap`` or
    ``method``.  Every predicate of the program is covered: those with
    an attribute of the chosen kind are hashed on it; the rest are
    replicated.
    """
    try:
        table = POINTER_KEYS[key]
    except KeyError:
        raise ValueError(
            f"unknown partition key {key!r}"
            f" (expected one of {sorted(POINTER_KEYS)})"
        ) from None
    preds: Dict[str, int] = {}
    for rule in program.rules:
        for lit in (rule.head, *rule.body):
            preds.setdefault(lit.pred, lit.arity)
    for pred, rows in program.facts.items():
        for row in rows:
            preds.setdefault(pred, len(row))
            break
    columns: Dict[str, int] = {}
    replicated: Set[str] = set()
    for pred, arity in preds.items():
        column = table.get(base_predicate(pred))
        if column is not None and 0 <= column < arity:
            columns[pred] = column
        else:
            replicated.add(pred)
    spec = PartitionSpec(
        key=key, columns=columns, replicated=frozenset(replicated)
    )
    spec.validate(program)
    return spec


# ---------------------------------------------------------------------------
# Classification.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Witness:
    """Why a rule is not shard-local: the offending atom/variable pair."""

    code: str
    rule_index: int
    message: str
    #: Repr of the offending literal (head for exchange witnesses).
    atom: str
    #: The offending partition attribute's term, as text.
    term: Optional[str] = None
    #: The join anchor it fails to match, as text.
    anchor: Optional[str] = None
    #: Repr of the anchoring literal, when one exists.
    anchor_atom: Optional[str] = None
    pos: Optional[SourcePos] = None

    def to_json(self) -> Dict:
        return {
            "code": self.code,
            "rule": self.rule_index,
            "message": self.message,
            "atom": self.atom,
            "term": self.term,
            "anchor": self.anchor,
            "anchor_atom": self.anchor_atom,
            "line": self.pos.line if self.pos else None,
            "column": self.pos.column if self.pos else None,
        }


@dataclass(frozen=True)
class RulePlan:
    """One rule's classification plus everything the executor needs."""

    rule_index: int
    rule: Rule
    kind: str  # "local" | "exchange" | "broadcast"
    stratum: int
    #: The join anchor term (None for unanchored/fact rules).
    anchor: Optional[Term]
    #: Body index of the literal that anchors the rule.
    anchor_index: Optional[int]
    #: Partition column of the head predicate (None = replicated head).
    head_column: Optional[int]
    #: Body indices that must probe the full *replica* copy.
    replica_atoms: FrozenSet[int] = frozenset()
    #: Relations whose replica this rule forces.
    replicates: Tuple[str, ...] = ()
    #: True when the rule has no partitioned body atom and is executed
    #: on a single shard (``rule_index % shards``).
    pinned: bool = False
    witnesses: Tuple[Witness, ...] = ()

    @property
    def is_fact(self) -> bool:
        return not self.rule.body

    def to_json(self) -> Dict:
        return {
            "rule": self.rule_index,
            "head": self.rule.head.pred,
            "kind": self.kind,
            "stratum": self.stratum,
            "anchor": None if self.anchor is None else repr(self.anchor),
            "head_column": self.head_column,
            "replicates": list(self.replicates),
            "pinned": self.pinned,
            "line": self.rule.pos.line if self.rule.pos else None,
            "column": self.rule.pos.column if self.rule.pos else None,
            "witnesses": [w.to_json() for w in self.witnesses],
        }


@dataclass
class ShardPlan:
    """The stratum DAG annotated with exchange/broadcast edges.

    ``replicated`` are relations kept whole on every shard (no
    partitioned copy at all); ``replicas`` are *partitioned* relations
    that additionally maintain a full replica because some rule probes
    them on a non-anchor attribute.  ``diagnostics`` carries the DL4xx
    findings (one per witness).
    """

    spec: PartitionSpec
    rules: List[RulePlan]
    strata: List[Set[str]]
    replicated: FrozenSet[str]
    replicas: FrozenSet[str]
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Optional rule-index → cost weight (from
    #: :meth:`repro.datalog.cost.CostPlan.rule_weights`); enables
    #: :meth:`predicted_skew`, reported next to the measured skew.
    weights: Optional[Dict[int, float]] = None

    SCHEMA = "repro-shard-plan/1"

    def counts(self) -> Dict[str, int]:
        out = {"local": 0, "exchange": 0, "broadcast": 0}
        for plan in self.rules:
            out[plan.kind] += 1
        return out

    def rules_of_stratum(self, index: int) -> List[RulePlan]:
        return [
            plan for plan in self.rules
            if plan.stratum == index and not plan.is_fact
        ]

    def exchange_edges(self) -> List[Dict]:
        """Communication edges of the plan: one per rule that ships
        rows (exchange → the head's owner shard, broadcast → all)."""
        edges = []
        for plan in self.rules:
            if plan.kind == "local" or plan.is_fact:
                continue
            edges.append({
                "rule": plan.rule_index,
                "to": plan.rule.head.pred,
                "kind": plan.kind,
                "anchor": None if plan.anchor is None else repr(plan.anchor),
            })
        return edges

    def witness_count(self) -> int:
        return sum(len(plan.witnesses) for plan in self.rules)

    def predicted_skew(self, shards: int) -> Optional[float]:
        """Static max/mean load prediction from the cost weights.

        Mirrors :meth:`repro.datalog.parallel.ParallelStats.skew` on
        the *predicted* side: local, exchange and (non-pinned)
        broadcast rules evaluate on every shard over partitioned data,
        so their weight spreads evenly; a pinned rule's whole weight
        lands on its one shard (``rule_index % shards`` — the parallel
        executor's assignment).  ``None`` without cost weights.
        """
        if self.weights is None or shards <= 0:
            return None
        loads = [0.0] * shards
        for plan in self.rules:
            if plan.is_fact:
                continue
            weight = self.weights.get(plan.rule_index, 0.0)
            if plan.pinned:
                loads[plan.rule_index % shards] += weight
            else:
                for shard in range(shards):
                    loads[shard] += weight / shards
        total = sum(loads)
        if total == 0:
            return 1.0
        return max(loads) / (total / shards)

    def to_json(self) -> Dict:
        out = {
            "schema": self.SCHEMA,
            "key": self.spec.key,
            "rules": len(self.rules),
            "counts": self.counts(),
            "replicated": sorted(self.replicated),
            "replicas": sorted(self.replicas),
            "strata": [
                {
                    "predicates": sorted(stratum),
                    "rules": [
                        plan.to_json() for plan in self.rules_of_stratum(i)
                    ],
                }
                for i, stratum in enumerate(self.strata)
            ],
            "facts": [
                plan.to_json() for plan in self.rules if plan.is_fact
            ],
            "exchange_edges": self.exchange_edges(),
        }
        if self.weights is not None:
            # Additive: present only when a cost plan priced the rules.
            out["predicted"] = {
                "weights": {
                    str(index): round(weight, 4)
                    for index, weight in sorted(self.weights.items())
                },
                "skew_by_shards": {
                    str(shards): round(self.predicted_skew(shards), 4)
                    for shards in (2, 4, 8)
                },
            }
        return out

    def render(self) -> str:
        counts = self.counts()
        lines = [
            f"shard plan (key={self.spec.key}): {len(self.rules)} rules —"
            f" {counts['local']} local, {counts['exchange']} exchange,"
            f" {counts['broadcast']} broadcast"
        ]
        if self.replicated:
            lines.append(
                f"  replicated: {', '.join(sorted(self.replicated))}"
            )
        if self.replicas:
            lines.append(
                f"  replicas (partitioned + full copy):"
                f" {', '.join(sorted(self.replicas))}"
            )
        for i, stratum in enumerate(self.strata):
            plans = self.rules_of_stratum(i)
            if not plans:
                continue
            lines.append(
                f"  stratum {i} ({len(plans)} rules):"
                f" {', '.join(sorted(stratum))}"
            )
            for plan in plans:
                if plan.kind == "local":
                    continue
                reason = "; ".join(
                    f"{w.code}: {w.message}" for w in plan.witnesses
                )
                where = ""
                if plan.rule.pos is not None:
                    where = f" at {plan.rule.pos!r}"
                lines.append(
                    f"    #{plan.rule_index} {plan.kind}"
                    f" {plan.rule.head.pred}{where}: {reason}"
                )
        return "\n".join(lines)


def _term_text(term: Term) -> str:
    return term.name if isinstance(term, Var) else repr(term)


def _pos_text(pos: Optional[SourcePos]) -> str:
    return f" (at {pos!r})" if pos is not None else ""


def build_shard_plan(
    program: Program,
    spec: PartitionSpec,
    builtins: Optional[Iterable[str]] = None,
    weights: Optional[Dict[int, float]] = None,
) -> ShardPlan:
    """Classify every rule of ``program`` under ``spec``.

    ``builtins`` names builtin predicates (engine-style mappings are
    accepted); builtin literals are pure local computation and never
    constrain locality.  ``weights`` (rule index → cost, typically
    :meth:`repro.datalog.cost.CostPlan.rule_weights`) switches on the
    plan's static :meth:`ShardPlan.predicted_skew` prediction.
    """
    from repro.datalog.builtins import DEFAULT_BUILTINS
    from repro.datalog.stratify import dependency_graph, stratify

    import networkx as nx

    spec.validate(program)
    builtin_names = set(DEFAULT_BUILTINS)
    if builtins is not None:
        builtin_names |= set(builtins)

    strata = stratify(program, builtin_names)
    stratum_of: Dict[str, int] = {}
    for index, stratum in enumerate(strata):
        for pred in stratum:
            stratum_of[pred] = index

    # Predicate SCCs, for the recursive-broadcast (DL403) finding.
    graph = dependency_graph(program)
    scc_of: Dict[str, int] = {}
    for scc_id, component in enumerate(nx.strongly_connected_components(graph)):
        recursive = len(component) > 1 or any(
            graph.has_edge(p, p) for p in component
        )
        for pred in component:
            scc_of[pred] = scc_id if recursive else -1 - len(scc_of)

    plans: List[RulePlan] = []
    diagnostics: List[Diagnostic] = []
    replicas: Set[str] = set()

    def diag(witness: Witness, severity: Severity, head: str) -> None:
        diagnostics.append(Diagnostic(
            witness.code, severity, witness.message,
            rule_index=witness.rule_index, pos=witness.pos, where=head,
        ))

    for rule_index, rule in enumerate(program.rules):
        head = rule.head
        head_column = spec.column_of(head.pred)
        stratum = stratum_of.get(head.pred, 0)
        witnesses: List[Witness] = []
        replica_atoms: Set[int] = set()
        rule_replicas: List[str] = []

        def witness(code, message, literal, term=None, anchor_term=None,
                    anchor_literal=None):
            witnesses.append(Witness(
                code=code, rule_index=rule_index, message=message,
                atom=repr(literal),
                term=None if term is None else _term_text(term),
                anchor=(
                    None if anchor_term is None else _term_text(anchor_term)
                ),
                anchor_atom=(
                    None if anchor_literal is None else repr(anchor_literal)
                ),
                pos=(literal.pos if literal is not rule.head else None)
                or rule.pos,
            ))

        # -- facts: routed at load time, no fixpoint communication.
        if not rule.body:
            if head_column is None:
                witness(
                    "DL402",
                    f"fact row of replicated relation {head.pred!r} is"
                    " copied to every shard at load time",
                    head,
                )
                diag(witnesses[-1], Severity.NOTE, head.pred)
                kind = "broadcast"
            else:
                kind = "local"
            plans.append(RulePlan(
                rule_index=rule_index, rule=rule, kind=kind,
                stratum=stratum, anchor=None, anchor_index=None,
                head_column=head_column, witnesses=tuple(witnesses),
            ))
            continue

        # -- find the join anchor: the first partitioned positive atom.
        anchor: Optional[Term] = None
        anchor_index: Optional[int] = None
        anchor_literal: Optional[Literal] = None
        for body_index, lit in enumerate(rule.body):
            if lit.negated or lit.pred in builtin_names:
                continue
            column = spec.column_of(lit.pred)
            if column is None:
                continue
            anchor = lit.args[column]
            anchor_index = body_index
            anchor_literal = lit
            break

        # -- co-partitioning of every other partitioned atom.
        for body_index, lit in enumerate(rule.body):
            if lit.pred in builtin_names:
                continue
            column = spec.column_of(lit.pred)
            if column is None or body_index == anchor_index:
                continue
            term = lit.args[column]
            if anchor is not None and term == anchor:
                continue
            # Not co-partitioned: this atom must probe a full replica.
            replica_atoms.add(body_index)
            if lit.pred not in rule_replicas:
                rule_replicas.append(lit.pred)
            replicas.add(lit.pred)
            code = "DL405" if lit.negated else "DL402"
            anchor_text = (
                f"the join anchor {_term_text(anchor)}"
                if anchor is not None else "any join anchor"
            )
            what = "negated literal" if lit.negated else "atom"
            witness(
                code,
                f"{what} {lit!r} is partitioned on"
                f" {_term_text(term)} (column {column}), which is not"
                f" {anchor_text}: relation {lit.pred!r} is replicated"
                f"{_pos_text(lit.pos or rule.pos)}",
                lit, term=term, anchor_term=anchor,
                anchor_literal=anchor_literal,
            )
            diag(
                witnesses[-1],
                Severity.WARNING if lit.negated else Severity.NOTE,
                head.pred,
            )
            if scc_of.get(lit.pred) == scc_of.get(head.pred) \
                    and scc_of.get(lit.pred, -1) >= 0:
                witness(
                    "DL403",
                    f"replicated relation {lit.pred!r} is recursive with"
                    f" head {head.pred!r}: its frontier is broadcast"
                    " every round — partitioning is defeated for this"
                    " rule",
                    lit, term=term, anchor_term=anchor,
                    anchor_literal=anchor_literal,
                )
                diag(witnesses[-1], Severity.WARNING, head.pred)

        # -- head routing.
        head_term = (
            head.args[head_column] if head_column is not None else None
        )
        head_local = (
            head_column is not None
            and anchor is not None
            and head_term == anchor
        )
        if head_column is None:
            witness(
                "DL402",
                f"head relation {head.pred!r} is replicated: every"
                " derived row is broadcast to all shards",
                head,
            )
            diag(witnesses[-1], Severity.NOTE, head.pred)
            if scc_of.get(head.pred, -1) >= 0:
                witness(
                    "DL403",
                    f"replicated head relation {head.pred!r} is"
                    " recursive: its frontier is broadcast every round —"
                    " partitioning is defeated for this rule",
                    head,
                )
                diag(witnesses[-1], Severity.WARNING, head.pred)

        pinned = anchor is None
        if pinned:
            witness(
                "DL404",
                "no partitioned positive body atom: the rule is pinned"
                " to a single shard",
                rule.body[0],
            )
            diag(witnesses[-1], Severity.NOTE, head.pred)

        if replica_atoms or head_column is None or pinned:
            kind = "broadcast"
        elif not head_local:
            witness(
                "DL401",
                f"head {head!r} is partitioned on"
                f" {_term_text(head_term)} (column {head_column}), not"
                f" the join anchor {_term_text(anchor)}: derived rows"
                " are exchanged to their owner shard",
                head, term=head_term, anchor_term=anchor,
                anchor_literal=anchor_literal,
            )
            diag(witnesses[-1], Severity.NOTE, head.pred)
            kind = "exchange"
        else:
            kind = "local"

        plans.append(RulePlan(
            rule_index=rule_index, rule=rule, kind=kind, stratum=stratum,
            anchor=anchor, anchor_index=anchor_index,
            head_column=head_column,
            replica_atoms=frozenset(replica_atoms),
            replicates=tuple(rule_replicas),
            pinned=pinned,
            witnesses=tuple(witnesses),
        ))

    return ShardPlan(
        spec=spec,
        rules=plans,
        strata=strata,
        replicated=frozenset(
            pred for pred in _all_predicates(program)
            if not spec.is_partitioned(pred)
        ),
        replicas=frozenset(replicas),
        diagnostics=diagnostics,
        weights=None if weights is None else dict(weights),
    )


def _all_predicates(program: Program) -> Set[str]:
    preds: Set[str] = set(program.facts)
    for rule in program.rules:
        preds.add(rule.head.pred)
        for lit in rule.body:
            preds.add(lit.pred)
    return preds
