"""Stratification of Datalog programs with negation.

Builds the predicate dependency graph (an edge ``q → p`` whenever ``q``
appears in the body of a rule with head ``p``, marked *negative* when
the occurrence is negated), condenses it into strongly connected
components, and orders the components topologically.  A program is
stratifiable iff no negative edge lies inside a component; evaluation
then proceeds stratum by stratum.

The pointer-analysis programs emitted by :mod:`repro.compile` are
negation-free (a single stratum), but the engine is a general substrate
and the magic-sets transformation benefits from negation support.
"""

from __future__ import annotations

from typing import List, Set

import networkx as nx

from repro.datalog.ast import Program


class StratificationError(ValueError):
    """Raised when negation occurs through recursion."""


def dependency_graph(program: Program) -> nx.DiGraph:
    """The predicate dependency graph with ``negative`` edge attributes."""
    graph = nx.DiGraph()
    for rule in program.rules:
        graph.add_node(rule.head.pred)
        for lit in rule.body:
            graph.add_node(lit.pred)
            if graph.has_edge(lit.pred, rule.head.pred):
                if lit.negated:
                    graph[lit.pred][rule.head.pred]["negative"] = True
            else:
                graph.add_edge(lit.pred, rule.head.pred, negative=lit.negated)
    return graph


def stratify(program: Program, builtin_preds: Set[str] = frozenset()) -> List[Set[str]]:
    """Partition the IDB predicates into evaluation strata.

    Returns a list of predicate sets; stratum ``i`` may only depend
    negatively on strata ``< i``.  EDB and builtin predicates belong to
    no stratum (they are always available).
    """
    graph = dependency_graph(program)
    idb = program.idb_predicates()

    condensation = nx.condensation(graph)
    # Reject negation inside a component.
    for component in nx.strongly_connected_components(graph):
        for source in component:
            for target in graph.successors(source):
                if target in component and graph[source][target].get("negative"):
                    raise StratificationError(
                        f"negation through recursion between {source!r}"
                        f" and {target!r}"
                    )

    strata: List[Set[str]] = []
    for node in nx.topological_sort(condensation):
        members = set(condensation.nodes[node]["members"]) & idb
        members -= builtin_preds
        if members:
            strata.append(members)
    return _merge_independent(strata, graph)


def _merge_independent(strata: List[Set[str]], graph: nx.DiGraph) -> List[Set[str]]:
    """Greedily merge consecutive strata with no negative edge between
    them, so mutually independent predicates are solved together (fewer
    fixpoint rounds, same results)."""
    merged: List[Set[str]] = []
    for stratum in strata:
        if merged and not _has_negative_edge(graph, merged[-1], stratum):
            merged[-1] |= stratum
        else:
            merged.append(set(stratum))
    return merged


def _has_negative_edge(graph: nx.DiGraph, earlier: Set[str], later: Set[str]) -> bool:
    for source in earlier:
        for target in graph.successors(source):
            if target in later and graph[source][target].get("negative"):
                return True
    return False
