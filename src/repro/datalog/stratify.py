"""Stratification of Datalog programs with negation.

Builds the predicate dependency graph (an edge ``q → p`` whenever ``q``
appears in the body of a rule with head ``p``, marked *negative* when
the occurrence is negated), condenses it into strongly connected
components, and orders the components topologically.  A program is
stratifiable iff no negative edge lies inside a component; evaluation
then proceeds stratum by stratum.

When stratification fails, :class:`StratificationError` carries *every*
offending negative edge as a structured :class:`NegativeCycleEdge` —
including the rule that introduces the negation, its source position
when the program was parsed from text, and a witness cycle through the
edge — so callers (and :mod:`repro.datalog.lint`) can explain the
failure rather than merely report it.

The pointer-analysis programs emitted by :mod:`repro.compile` are
negation-free (a single stratum), but the engine is a general substrate
and the magic-sets transformation benefits from negation support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

import networkx as nx

from repro.datalog.ast import Literal, Program, Rule


@dataclass(frozen=True)
class NegativeCycleEdge:
    """One negative dependency edge inside a recursive component.

    ``rule`` is the rule whose body negates ``source`` to derive
    ``target``; ``cycle`` is a witness predicate cycle
    ``target → … → source`` that, closed by this edge, shows the
    negation is recursive.
    """

    source: str
    target: str
    rule: Rule
    literal: Literal
    cycle: Tuple[str, ...]

    def describe(self) -> str:
        path = " -> ".join(self.cycle + (self.target,))
        where = ""
        pos = self.literal.pos or self.rule.pos
        if pos is not None:
            where = f" (at {pos!r})"
        return (
            f"!{self.source} in rule {self.rule!r}{where}"
            f" closes the recursive cycle {path}"
        )


class StratificationError(ValueError):
    """Raised when negation occurs through recursion.

    ``violations`` lists every offending negative intra-component edge.
    """

    def __init__(self, violations: Tuple[NegativeCycleEdge, ...] = (),
                 message: Optional[str] = None):
        self.violations = tuple(violations)
        if message is None:
            if self.violations:
                lines = "\n  ".join(v.describe() for v in self.violations)
                message = (
                    f"negation through recursion"
                    f" ({len(self.violations)} offending"
                    f" edge{'s' if len(self.violations) != 1 else ''}):"
                    f"\n  {lines}"
                )
            else:
                message = "negation through recursion"
        super().__init__(message)


def dependency_graph(program: Program) -> nx.DiGraph:
    """The predicate dependency graph with ``negative`` edge attributes.

    Each negative edge also records the ``(rule, literal)`` occurrences
    that created it, under the ``negated_at`` attribute.
    """
    graph = nx.DiGraph()
    for rule in program.rules:
        graph.add_node(rule.head.pred)
        for lit in rule.body:
            graph.add_node(lit.pred)
            if not graph.has_edge(lit.pred, rule.head.pred):
                graph.add_edge(
                    lit.pred, rule.head.pred, negative=False, negated_at=[]
                )
            edge = graph[lit.pred][rule.head.pred]
            if lit.negated:
                edge["negative"] = True
                edge["negated_at"].append((rule, lit))
    return graph


def negative_cycle_edges(program: Program) -> List[NegativeCycleEdge]:
    """Every negative dependency edge lying inside a recursive component.

    Empty iff the program is stratifiable.  Each offending edge is
    reported once per rule occurrence, with a witness cycle computed as
    the shortest predicate path closing the edge.
    """
    graph = dependency_graph(program)
    violations: List[NegativeCycleEdge] = []
    for component in nx.strongly_connected_components(graph):
        if len(component) == 1:
            # A singleton is cyclic only via a self-loop.
            (only,) = component
            if not graph.has_edge(only, only):
                continue
        subgraph = graph.subgraph(component)
        for source in sorted(component):
            for target in sorted(graph.successors(source)):
                if target not in component:
                    continue
                if not graph[source][target].get("negative"):
                    continue
                cycle = tuple(nx.shortest_path(subgraph, target, source))
                for rule, literal in graph[source][target]["negated_at"]:
                    violations.append(
                        NegativeCycleEdge(source, target, rule, literal, cycle)
                    )
    return violations


def stratify(program: Program, builtin_preds: Set[str] = frozenset()) -> List[Set[str]]:
    """Partition the IDB predicates into evaluation strata.

    Returns a list of predicate sets; stratum ``i`` may only depend
    negatively on strata ``< i``.  EDB and builtin predicates belong to
    no stratum (they are always available).  Raises
    :class:`StratificationError` — listing all offending negative
    edges — when negation occurs through recursion.
    """
    violations = negative_cycle_edges(program)
    if violations:
        raise StratificationError(tuple(violations))

    graph = dependency_graph(program)
    idb = program.idb_predicates()
    condensation = nx.condensation(graph)
    strata: List[Set[str]] = []
    for node in nx.topological_sort(condensation):
        members = set(condensation.nodes[node]["members"]) & idb
        members -= builtin_preds
        if members:
            strata.append(members)
    return _merge_independent(strata, graph)


def _merge_independent(strata: List[Set[str]], graph: nx.DiGraph) -> List[Set[str]]:
    """Greedily merge consecutive strata with no negative edge between
    them, so mutually independent predicates are solved together (fewer
    fixpoint rounds, same results)."""
    merged: List[Set[str]] = []
    for stratum in strata:
        if merged and not _has_negative_edge(graph, merged[-1], stratum):
            merged[-1] |= stratum
        else:
            merged.append(set(stratum))
    return merged


def _has_negative_edge(graph: nx.DiGraph, earlier: Set[str], later: Set[str]) -> bool:
    for source in earlier:
        for target in graph.successors(source):
            if target in later and graph[source][target].get("negative"):
                return True
    return False
