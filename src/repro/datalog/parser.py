"""Text syntax for Datalog programs.

Accepts the conventional notation::

    % transitive closure
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- edge(X, Y), path(Y, Z).
    edge("a", "b").
    source(X) :- node(X), !incoming(X).

Conventions:

* identifiers starting with an uppercase letter or ``_`` are variables
  (a bare ``_`` is an anonymous variable, fresh at each occurrence);
* double-quoted strings and integers are constants, as are identifiers
  starting with a lowercase letter;
* ``!`` prefixes a negated literal;
* ``%`` and ``//`` start line comments.

Parsed rules and literals carry :class:`repro.datalog.ast.SourcePos`
locations, so downstream diagnostics (:mod:`repro.datalog.lint`,
:class:`repro.datalog.stratify.StratificationError`) can point at the
offending source line.

The emitted Datalog of :mod:`repro.compile` round-trips through this
parser (tested), mirroring the paper's front-end whose "output … is a
plain Datalog program".
"""

from __future__ import annotations

import itertools
import re
from typing import Iterator, List, NamedTuple, Optional

from repro.datalog.ast import Const, Literal, Program, Rule, SourcePos, Term, Var

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>%[^\n]*|//[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<implies>:-)
  | (?P<punct>[(),.!])
    """,
    re.VERBOSE,
)


class DatalogSyntaxError(SyntaxError):
    """Raised on malformed Datalog text."""


class Token(NamedTuple):
    kind: str
    text: str
    pos: Optional[SourcePos] = None


def _tokens(text: str) -> Iterator[Token]:
    position = 0
    line = 1
    line_start = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise DatalogSyntaxError(
                f"unexpected character {text[position]!r} at line {line}"
            )
        token_pos = SourcePos(line, position - line_start + 1)
        newlines = text.count("\n", position, match.end())
        if newlines:
            line += newlines
            line_start = text.rindex("\n", position, match.end()) + 1
        position = match.end()
        kind = match.lastgroup
        if kind in ("ws", "comment"):
            continue
        yield Token(kind, match.group(), token_pos)
    yield Token("eof", "", SourcePos(line, position - line_start + 1))


class _Parser:
    def __init__(self, text: str, validate: bool = True):
        self.tokens: List[Token] = list(_tokens(text))
        self.position = 0
        self.validate = validate
        self._anon = itertools.count()

    def peek(self) -> Token:
        return self.tokens[self.position]

    def next(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def expect(self, kind: str, text: str = None) -> Token:
        token = self.next()
        if token.kind != kind or (text is not None and token.text != text):
            raise DatalogSyntaxError(
                f"expected {text or kind}, got {token.text!r}"
                f" at {token.pos!r}"
            )
        return token

    def parse(self) -> Program:
        program = Program()
        while self.peek().kind != "eof":
            rule_pos = self.peek().pos
            head = self.parse_literal()
            if head.negated and self.validate:
                raise DatalogSyntaxError(f"negated head {head!r}")
            body: List[Literal] = []
            kind, text, pos = self.next()
            if (kind, text) == ("implies", ":-"):
                while True:
                    body.append(self.parse_literal())
                    kind, text, pos = self.next()
                    if (kind, text) == ("punct", "."):
                        break
                    if (kind, text) != ("punct", ","):
                        raise DatalogSyntaxError(
                            f"expected ',' or '.', got {text!r} at {pos!r}"
                        )
            elif (kind, text) != ("punct", "."):
                raise DatalogSyntaxError(
                    f"expected ':-' or '.', got {text!r} at {pos!r}"
                )
            rule = Rule(head, tuple(body), pos=rule_pos)
            if self.validate:
                rule.validate()
            program.rules.append(rule)
        return program

    def parse_literal(self) -> Literal:
        negated = False
        literal_pos = self.peek().pos
        if self.peek()[:2] == ("punct", "!"):
            self.next()
            negated = True
        kind, name, pos = self.next()
        if kind != "ident":
            raise DatalogSyntaxError(
                f"expected predicate name, got {name!r} at {pos!r}"
            )
        args: List[Term] = []
        if self.peek()[:2] == ("punct", "("):
            self.next()
            if self.peek()[:2] != ("punct", ")"):
                while True:
                    args.append(self.parse_term())
                    kind, text, pos = self.next()
                    if (kind, text) == ("punct", ")"):
                        break
                    if (kind, text) != ("punct", ","):
                        raise DatalogSyntaxError(
                            f"expected ',' or ')', got {text!r} at {pos!r}"
                        )
            else:
                self.next()
        return Literal(name, tuple(args), negated=negated, pos=literal_pos)

    def parse_term(self) -> Term:
        kind, text, pos = self.next()
        if kind == "string":
            return Const(text[1:-1].replace('\\"', '"').replace("\\\\", "\\"))
        if kind == "number":
            return Const(int(text))
        if kind == "ident":
            if text == "_":
                return Var(f"_anon{next(self._anon)}")
            if text[0].isupper() or text[0] == "_":
                return Var(text)
            return Const(text)
        raise DatalogSyntaxError(f"expected a term, got {text!r} at {pos!r}")


def parse_datalog(text: str, validate: bool = True) -> Program:
    """Parse Datalog source text into a :class:`Program`.

    ``validate=False`` skips the per-rule safety check, letting the
    lint pass (:mod:`repro.datalog.lint`) report malformed rules as
    located diagnostics instead of the parser raising on the first one.
    """
    return _Parser(text, validate=validate).parse()


def format_term(term: Term) -> str:
    """Render a term back to source syntax."""
    if isinstance(term, Var):
        return term.name
    value = term.value
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str) and re.fullmatch(r"[a-z][A-Za-z0-9_']*", value):
        return value
    escaped = str(value).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def format_literal(literal: Literal) -> str:
    """Render a literal back to source syntax."""
    bang = "!" if literal.negated else ""
    if not literal.args:
        return f"{bang}{literal.pred}()"
    args = ", ".join(format_term(t) for t in literal.args)
    return f"{bang}{literal.pred}({args})"


def format_rule(rule: Rule) -> str:
    """Render a rule back to source syntax."""
    if rule.is_fact():
        return f"{format_literal(rule.head)}."
    body = ", ".join(format_literal(lit) for lit in rule.body)
    return f"{format_literal(rule.head)} :- {body}."


def format_program(program: Program) -> str:
    """Render a whole program (rules only; facts are data, not text)."""
    return "\n".join(format_rule(rule) for rule in program.rules) + "\n"
