"""Text syntax for Datalog programs.

Accepts the conventional notation::

    % transitive closure
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- edge(X, Y), path(Y, Z).
    edge("a", "b").
    source(X) :- node(X), !incoming(X).

Conventions:

* identifiers starting with an uppercase letter or ``_`` are variables
  (a bare ``_`` is an anonymous variable, fresh at each occurrence);
* double-quoted strings and integers are constants, as are identifiers
  starting with a lowercase letter;
* ``!`` prefixes a negated literal;
* ``%`` and ``//`` start line comments.

The emitted Datalog of :mod:`repro.compile` round-trips through this
parser (tested), mirroring the paper's front-end whose "output … is a
plain Datalog program".
"""

from __future__ import annotations

import itertools
import re
from typing import Iterator, List, Tuple

from repro.datalog.ast import Const, Literal, Program, Rule, Term, Var

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>%[^\n]*|//[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<implies>:-)
  | (?P<punct>[(),.!])
    """,
    re.VERBOSE,
)


class DatalogSyntaxError(SyntaxError):
    """Raised on malformed Datalog text."""


def _tokens(text: str) -> Iterator[Tuple[str, str]]:
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            line = text.count("\n", 0, position) + 1
            raise DatalogSyntaxError(
                f"unexpected character {text[position]!r} at line {line}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind in ("ws", "comment"):
            continue
        yield kind, match.group()
    yield "eof", ""


class _Parser:
    def __init__(self, text: str):
        self.tokens: List[Tuple[str, str]] = list(_tokens(text))
        self.position = 0
        self._anon = itertools.count()

    def peek(self) -> Tuple[str, str]:
        return self.tokens[self.position]

    def next(self) -> Tuple[str, str]:
        token = self.tokens[self.position]
        if token[0] != "eof":
            self.position += 1
        return token

    def expect(self, kind: str, text: str = None) -> Tuple[str, str]:
        token = self.next()
        if token[0] != kind or (text is not None and token[1] != text):
            raise DatalogSyntaxError(
                f"expected {text or kind}, got {token[1]!r}"
            )
        return token

    def parse(self) -> Program:
        program = Program()
        while self.peek()[0] != "eof":
            head = self.parse_literal()
            if head.negated:
                raise DatalogSyntaxError(f"negated head {head!r}")
            body: List[Literal] = []
            kind, text = self.next()
            if (kind, text) == ("implies", ":-"):
                while True:
                    body.append(self.parse_literal())
                    kind, text = self.next()
                    if (kind, text) == ("punct", "."):
                        break
                    if (kind, text) != ("punct", ","):
                        raise DatalogSyntaxError(
                            f"expected ',' or '.', got {text!r}"
                        )
            elif (kind, text) != ("punct", "."):
                raise DatalogSyntaxError(f"expected ':-' or '.', got {text!r}")
            rule = Rule(head, tuple(body))
            rule.validate()
            program.rules.append(rule)
        return program

    def parse_literal(self) -> Literal:
        negated = False
        if self.peek() == ("punct", "!"):
            self.next()
            negated = True
        kind, name = self.next()
        if kind != "ident":
            raise DatalogSyntaxError(f"expected predicate name, got {name!r}")
        args: List[Term] = []
        if self.peek() == ("punct", "("):
            self.next()
            if self.peek() != ("punct", ")"):
                while True:
                    args.append(self.parse_term())
                    kind, text = self.next()
                    if (kind, text) == ("punct", ")"):
                        break
                    if (kind, text) != ("punct", ","):
                        raise DatalogSyntaxError(
                            f"expected ',' or ')', got {text!r}"
                        )
            else:
                self.next()
        return Literal(name, tuple(args), negated=negated)

    def parse_term(self) -> Term:
        kind, text = self.next()
        if kind == "string":
            return Const(text[1:-1].replace('\\"', '"').replace("\\\\", "\\"))
        if kind == "number":
            return Const(int(text))
        if kind == "ident":
            if text == "_":
                return Var(f"_anon{next(self._anon)}")
            if text[0].isupper() or text[0] == "_":
                return Var(text)
            return Const(text)
        raise DatalogSyntaxError(f"expected a term, got {text!r}")


def parse_datalog(text: str) -> Program:
    """Parse Datalog source text into a :class:`Program`."""
    return _Parser(text).parse()


def format_term(term: Term) -> str:
    """Render a term back to source syntax."""
    if isinstance(term, Var):
        return term.name
    value = term.value
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str) and re.fullmatch(r"[a-z][A-Za-z0-9_']*", value):
        return value
    escaped = str(value).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def format_literal(literal: Literal) -> str:
    """Render a literal back to source syntax."""
    bang = "!" if literal.negated else ""
    if not literal.args:
        return f"{bang}{literal.pred}()"
    args = ", ".join(format_term(t) for t in literal.args)
    return f"{bang}{literal.pred}({args})"


def format_rule(rule: Rule) -> str:
    """Render a rule back to source syntax."""
    if rule.is_fact():
        return f"{format_literal(rule.head)}."
    body = ", ".join(format_literal(lit) for lit in rule.body)
    return f"{format_literal(rule.head)} :- {body}."


def format_program(program: Program) -> str:
    """Render a whole program (rules only; facts are data, not text)."""
    return "\n".join(format_rule(rule) for rule in program.rules) + "\n"
