"""Indexed relation storage for the Datalog engine.

A :class:`Relation` is a set of equal-arity tuples plus hash indices
keyed by column subsets.  Indices are created on demand the first time a
join probes a column subset and are maintained incrementally on insert —
the standard scheme the paper assumes when it discusses join efficiency
(Section 7: "A standard optimization performed by a Datalog engine is to
build indices … and to use these indices in the join").
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Set, Tuple

Row = Tuple


class Relation:
    """A named set of tuples with on-demand column indices."""

    __slots__ = ("name", "arity", "rows", "_indices")

    def __init__(self, name: str, arity: int):
        self.name = name
        self.arity = arity
        self.rows: Set[Row] = set()
        self._indices: Dict[Tuple[int, ...], Dict[Tuple, List[Row]]] = {}

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, row: Row) -> bool:
        return row in self.rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def add(self, row: Row) -> bool:
        """Insert ``row``; returns True iff it was new."""
        if len(row) != self.arity:
            raise ValueError(
                f"arity mismatch inserting {row!r} into"
                f" {self.name}/{self.arity}"
            )
        if row in self.rows:
            return False
        self.rows.add(row)
        for positions, index in self._indices.items():
            index[tuple(row[i] for i in positions)].append(row)
        return True

    def add_all(self, rows: Iterable[Row]) -> int:
        """Insert many rows; returns the number actually new."""
        return sum(1 for row in rows if self.add(row))

    def lookup(self, positions: Tuple[int, ...], key: Tuple) -> List[Row]:
        """Rows whose projection onto ``positions`` equals ``key``.

        ``positions`` must be sorted and duplicate-free.  An empty
        ``positions`` scans the whole relation.
        """
        if not positions:
            return list(self.rows)
        index = self._indices.get(positions)
        if index is None:
            index = defaultdict(list)
            for row in self.rows:
                index[tuple(row[i] for i in positions)].append(row)
            self._indices[positions] = index
        return index.get(key, [])

    def index_count(self) -> int:
        """Number of materialized indices (used by engine statistics)."""
        return len(self._indices)

    def snapshot(self) -> Set[Row]:
        """A copy of the current row set."""
        return set(self.rows)
