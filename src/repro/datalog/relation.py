"""Indexed relation storage for the Datalog engine.

Storage and indexing live in the shared substrate
(:mod:`repro.store.relation`); this module re-exports
:class:`repro.store.Relation` under its historical import path.  A
relation is a set of equal-arity tuples plus hash indices keyed by
column subsets — the standard scheme the paper assumes when it
discusses join efficiency (Section 7: "A standard optimization
performed by a Datalog engine is to build indices … and to use these
indices in the join").  Indices are planned up front from the
program's join patterns (:func:`repro.store.plan_indices`) with lazy
materialization on first probe as the fallback, and are maintained
incrementally on insert.  ``lookup`` accepts positions in any order
(they are normalized: sorted, deduplicated, key remapped), so permuted
position tuples share one index instead of silently building
duplicates.
"""

from __future__ import annotations

from repro.store.relation import Relation, Row

__all__ = ["Relation", "Row"]
