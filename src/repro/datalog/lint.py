"""Semantic analysis of Datalog programs (the lint entry point).

This module is the canonical import site for checking a
:class:`repro.datalog.ast.Program` before evaluation::

    from repro.datalog.lint import lint_program

    report = lint_program(program, builtins=my_builtins)
    if not report.ok:
        print(report.render())
        report.raise_if_errors()

The passes live in :mod:`repro.lint.passes`; see that module (and the
diagnostic-code table in ``docs/api.md``) for what is checked.  The
evaluation engines run the same analysis behind their ``strict=`` knob,
and :mod:`repro.compile.emit` lints every configuration it emits, so a
specialization bug is a coded, located diagnostic instead of a crash
deep inside a join or — worse — a silently wrong points-to set.

:func:`eliminate_dead_rules` is the companion rewrite: it drops rules
that can never fire (a positive body predicate with no facts and no
live defining rule), a safe pre-evaluation optimization that shrinks
the rule set the semi-naive loop has to consider.
"""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic, LintError, LintReport, Severity
from repro.lint.passes import (
    check_configurations,
    check_liveness,
    check_safety,
    check_schema,
    check_sorts,
    check_stratification,
    eliminate_dead_rules,
    lint_program,
)

__all__ = [
    "Diagnostic",
    "LintError",
    "LintReport",
    "Severity",
    "check_configurations",
    "check_liveness",
    "check_safety",
    "check_schema",
    "check_sorts",
    "check_stratification",
    "eliminate_dead_rules",
    "lint_program",
]
