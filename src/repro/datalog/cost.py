"""Static cost & cardinality analysis over Datalog programs (DL5xx).

The paper's Section 7 performance argument is that configuration
specialization makes every join a fully-indexed equi-join — but *which*
indices a join can use is decided by body order, and every execution
surface of this repo (interpreter, compiled back-end, kernels, shards)
evaluates rule bodies in fixed left-to-right source order.  This module
analyzes the program *before* running it:

1. **Relation profiles** — per-relation cardinalities, per-column
   distinct counts, minimal keys and single-column functional
   dependencies, measured exactly from the installed facts (including
   body-less constant rules such as the entry fact and magic seeds);
2. **IDB bounds** — head cardinalities propagated through rule heads in
   stratum order, capped by the product of the head columns' domain
   estimates, to a monotone fixpoint;
3. **Join-order planning** — every legal body order (negated literals
   fully bound, builtin binding disciplines respected) is scored with a
   textbook cost model: a probe into relation ``R`` with bound columns
   ``B`` matches ``|R| / ∏ distinct(B)`` rows (``≤ 1`` when ``B``
   covers a key), and a rule's cost is the total intermediate binding
   volume of the walk.  Small bodies are searched exhaustively; larger
   ones greedily with deterministic tie-breaks, and source order always
   wins ties.

The result is a :class:`CostPlan`: the chosen order and cost for every
rule, a byte-stable ``repro-cost-plan/1`` document, DL5xx diagnostics
with line/col witnesses, and :func:`reorder_program` — the rewrite the
engines apply under ``cost_order=True``.  Because all three backends
evaluate bodies in author order, applying a legal permutation is a pure
program rewrite with bit-identical results (tested across the full
figure1/figure5 configuration sweep).

Diagnostic codes (all advisory — not part of ``lint_program``'s default
pass list, mirroring the DL4xx shard pass):

========  ========  ====================================================
``DL501``  warning   unbounded join: some positive stored literal is
                     probed with zero bound columns even under the best
                     legal order (a cross product)
``DL502``  note      probe without usable index: the bound columns carry
                     no selectivity (every row matches)
``DL503``  note      cost-improving reorder available (the suggested
                     order is reported; safety DL001–DL004 preserved by
                     construction)
``DL504``  note      two or more rules share a canonicalized body
                     prefix — a caching / common-subplan opportunity
========  ========  ====================================================

(``DL505`` — uncovered kernel configuration — is emitted by the closure
certifier in :mod:`repro.compile.closure`, not here.)
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import (
    Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set,
    Tuple, Union,
)

from repro.datalog.ast import Const, Literal, Program, Rule, Var
from repro.datalog.builtins import BuiltinSignature
from repro.lint.diagnostics import Diagnostic, Severity

#: Engine-style ``{name: callable}`` mapping or a bare name collection.
Builtins = Union[Mapping[str, object], Iterable[str], None]

#: Exhaustive permutation search up to this body length; greedy beyond.
EXHAUSTIVE_LIMIT = 4

#: Key inference enumerates column *pairs* only below this row count
#: (single columns and the full column set are always checked).
KEY_PAIR_ROW_LIMIT = 20000

#: Cardinality estimates are clamped here to keep the arithmetic (and
#: the JSON document) finite.
MAX_ESTIMATE = 1e18

#: Monotone IDB bound propagation stops after this many rounds even if
#: the capped estimates are still creeping (they are non-decreasing and
#: bounded, so this is a safety valve, not a correctness condition).
MAX_BOUND_ROUNDS = 12

#: Assumed number of semi-naive delta rounds.  Every engine in this
#: repo evaluates a rule's delta variants with the delta literal *at
#: its body position*: the walk up to that literal runs against the
#: full relations each round, so an order that buries a recursive
#: (same-stratum) literal behind an expensive prefix pays that prefix
#: once per round.  The scorer charges each recursive literal its
#: prefix cost this many extra times.
SEMI_NAIVE_ROUNDS = 4.0


# ---------------------------------------------------------------------------
# Relation profiles.
# ---------------------------------------------------------------------------

@dataclass
class RelationProfile:
    """Cardinality facts about one relation.

    ``rows`` and ``distinct`` are exact for extensional relations
    (``exact=True``) and propagated upper-bound estimates for derived
    ones.  ``keys`` lists minimal column sets whose values are unique
    per row (exact relations only); a probe binding a key matches at
    most one row.  ``determines`` lists single-column functional
    dependencies ``i -> j``.
    """

    pred: str
    arity: int
    rows: float
    distinct: Tuple[float, ...]
    keys: Tuple[Tuple[int, ...], ...] = ()
    determines: Tuple[Tuple[int, int], ...] = ()
    exact: bool = False

    def matches(self, bound: Sequence[int]) -> float:
        """Estimated rows matching a probe with ``bound`` columns bound."""
        if self.rows <= 0:
            return 0.0
        if not bound:
            return self.rows
        bound_set = set(bound)
        for key in self.keys:
            if bound_set.issuperset(key):
                return min(1.0, self.rows)
        denominator = 1.0
        for position in bound:
            if position < len(self.distinct):
                denominator *= max(1.0, self.distinct[position])
        return min(self.rows, max(self.rows / denominator, 0.0))

    def selective(self, bound: Sequence[int]) -> bool:
        """Whether the bound columns discriminate at all."""
        return self.matches(bound) < self.rows

    def to_json(self) -> Dict:
        return {
            "predicate": self.pred,
            "arity": self.arity,
            "rows": _finite(self.rows),
            "distinct": [_finite(d) for d in self.distinct],
            "keys": [list(key) for key in self.keys],
            "determines": [list(fd) for fd in self.determines],
            "exact": self.exact,
        }


def _finite(value: float) -> float:
    value = min(float(value), MAX_ESTIMATE)
    rounded = round(value, 4)
    return int(rounded) if rounded == int(rounded) else rounded


def _minimal_keys(rows: Sequence[Tuple], arity: int) -> Tuple[Tuple[int, ...], ...]:
    """Minimal unique-key column sets: singles, pairs (bounded), full set."""
    count = len(rows)
    if count == 0 or arity == 0:
        return ()
    keys: List[Tuple[int, ...]] = []
    single: Set[int] = set()
    for position in range(arity):
        if len({row[position] for row in rows}) == count:
            keys.append((position,))
            single.add(position)
    if not single and arity >= 2 and count <= KEY_PAIR_ROW_LIMIT:
        for left, right in itertools.combinations(range(arity), 2):
            if len({(row[left], row[right]) for row in rows}) == count:
                keys.append((left, right))
    if not keys:
        keys.append(tuple(range(arity)))  # set semantics: all columns
    return tuple(keys)


def _functional_deps(
    rows: Sequence[Tuple], arity: int, keys: Sequence[Tuple[int, ...]]
) -> Tuple[Tuple[int, int], ...]:
    """Single-column FDs ``i -> j`` (skipping trivial key determinants)."""
    if not rows or arity < 2 or len(rows) > KEY_PAIR_ROW_LIMIT:
        return ()
    key_columns = {key[0] for key in keys if len(key) == 1}
    deps: List[Tuple[int, int]] = []
    for determinant in range(arity):
        if determinant in key_columns:
            continue  # a key determines everything; not informative
        for dependent in range(arity):
            if dependent == determinant:
                continue
            seen: Dict[object, object] = {}
            functional = True
            for row in rows:
                value = seen.setdefault(row[determinant], row[dependent])
                if value != row[dependent]:
                    functional = False
                    break
            if functional:
                deps.append((determinant, dependent))
    return tuple(deps)


def _profile_rows(pred: str, rows: Sequence[Tuple]) -> RelationProfile:
    arity = len(next(iter(rows)))
    distinct = tuple(
        float(len({row[position] for row in rows})) for position in range(arity)
    )
    keys = _minimal_keys(rows, arity)
    return RelationProfile(
        pred=pred,
        arity=arity,
        rows=float(len(rows)),
        distinct=distinct,
        keys=keys,
        determines=_functional_deps(rows, arity, keys),
        exact=True,
    )


def profile_facts(program: Program) -> Dict[str, RelationProfile]:
    """Exact profiles of every extensional relation.

    Body-less rules with constant heads (the emitted entry fact, magic
    seeds) count as facts, so e.g. a magic predicate seeded with one
    query tuple gets the one-row bound that makes the demand-driven
    program's costs honest.
    """
    rows_of: Dict[str, Set[Tuple]] = {
        pred: set(rows) for pred, rows in program.facts.items() if rows
    }
    for rule in program.rules:
        if rule.is_fact():
            row = tuple(
                t.value for t in rule.head.args if isinstance(t, Const)
            )
            if len(row) == rule.head.arity:
                rows_of.setdefault(rule.head.pred, set()).add(row)
    return {
        pred: _profile_rows(pred, sorted(rows, key=repr))
        for pred, rows in rows_of.items()
    }


# ---------------------------------------------------------------------------
# Binding-legality of a candidate order.
# ---------------------------------------------------------------------------

def _signatures(builtins: Builtins) -> Dict[str, Optional[BuiltinSignature]]:
    from repro.lint.passes import _normalize_builtins

    return _normalize_builtins(builtins)


def _order_is_legal(
    body: Sequence[Literal],
    order: Sequence[int],
    signatures: Dict[str, Optional[BuiltinSignature]],
) -> bool:
    """Whether the engines can evaluate ``body`` in ``order``.

    Mirrors the DL002/DL003 discipline of :func:`check_safety`: negated
    literals need every variable bound by earlier positive literals,
    and builtins need their non-output (or ``min_bound``) positions
    bound.  A builtin with an unknown signature makes every order but
    the source order illegal — callers keep such rules untouched.
    """
    bound: Set[Var] = set()
    for index in order:
        literal = body[index]
        is_builtin = literal.pred in signatures
        if literal.negated:
            if any(v not in bound for v in literal.variables()):
                return False
            continue
        if is_builtin:
            signature = signatures[literal.pred]
            if signature is None:
                return False
            unbound = [
                p for p, t in enumerate(literal.args)
                if isinstance(t, Var) and t not in bound
            ]
            if signature.out_positions is None:
                if literal.arity - len(unbound) < signature.min_bound:
                    return False
            elif any(p not in signature.out_positions for p in unbound):
                return False
        bound |= literal.variables()
    return True


def _has_unknown_builtin(
    body: Sequence[Literal],
    signatures: Dict[str, Optional[BuiltinSignature]],
) -> bool:
    return any(
        lit.pred in signatures and signatures[lit.pred] is None
        for lit in body
    )


# ---------------------------------------------------------------------------
# The join-cost model.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _StepCost:
    """One literal's contribution to a walk: probe shape + volumes."""

    body_index: int
    bound_positions: Tuple[int, ...]
    matches: float
    frontier_before: float
    frontier_after: float


def _walk(
    body: Sequence[Literal],
    order: Sequence[int],
    profiles: Mapping[str, RelationProfile],
    signatures: Dict[str, Optional[BuiltinSignature]],
) -> Tuple[float, float, List[_StepCost]]:
    """Score one legal order.

    Returns ``(cost, output_rows, steps)``: the cost is the total
    binding volume materialized along the walk (probes plus produced
    frontiers — the work a nested-loop join over hash indices does),
    the output is the final frontier size (an upper bound on derived
    head rows before dedup).
    """
    bound: Set[Var] = set()
    frontier = 1.0
    cost = 0.0
    steps: List[_StepCost] = []
    for index in order:
        literal = body[index]
        before = frontier
        bound_positions = tuple(
            p for p, t in enumerate(literal.args)
            if isinstance(t, Const) or t in bound
        )
        if literal.pred in signatures and not literal.negated:
            # Builtins are pure local computation: one evaluation per
            # binding tuple, at most a handful of produced rows.
            matches = 1.0
            cost += frontier
        elif literal.negated:
            # A fully-bound membership test filters the frontier.
            matches = 1.0
            cost += frontier
        else:
            profile = profiles.get(literal.pred)
            if profile is None:
                matches = 0.0
            else:
                matches = profile.matches(bound_positions)
            frontier = min(frontier * matches, MAX_ESTIMATE)
            cost += before + frontier
        if not literal.negated:
            bound |= literal.variables()
        steps.append(_StepCost(
            body_index=index,
            bound_positions=bound_positions,
            matches=matches,
            frontier_before=before,
            frontier_after=frontier,
        ))
    return cost, frontier, steps


def _order_cost(
    body: Sequence[Literal],
    order: Sequence[int],
    profiles: Mapping[str, RelationProfile],
    signatures: Dict[str, Optional[BuiltinSignature]],
    recursive: FrozenSet[str] = frozenset(),
) -> Tuple[float, float, List[_StepCost]]:
    """Score one legal order under the semi-naive evaluation model.

    The base term is :func:`_walk`'s round-zero cost.  On top of it,
    every positive stored literal whose predicate is *recursive*
    (``recursive`` holds the head's stratum — the predicates the
    engines evaluate with delta variants) is charged two semi-naive
    terms the round-zero walk cannot see:

    * the walk up to the literal is re-run against the full relations
      once per delta round (the engines keep the delta literal at its
      body position), so the prefix cost is charged
      :data:`SEMI_NAIVE_ROUNDS` extra times;
    * the delta probe goes through a per-evaluation hash index built
      over the delta rows, and over the whole fixpoint the deltas sum
      to the full relation — so each delta position adds one
      ``rows``-sized index build regardless of where the literal sits.

    Without these terms the planner happily buries recursive literals
    behind cheap EDB prefixes — a round-zero bargain whose prefix is
    re-paid every iteration.
    """
    cost, out, steps = _walk(body, order, profiles, signatures)
    if recursive:
        prefix = 0.0
        for step in steps:
            literal = body[step.body_index]
            stored = (
                not literal.negated and literal.pred not in signatures
            )
            if stored and literal.pred in recursive:
                profile = profiles.get(literal.pred)
                rows = profile.rows if profile is not None else 0.0
                cost = min(
                    cost + SEMI_NAIVE_ROUNDS * prefix + rows,
                    MAX_ESTIMATE,
                )
            # The step's own contribution, mirroring _walk's accounting:
            # builtins and negations cost one frontier scan, stored
            # literals a probe plus the produced frontier.
            if stored:
                prefix += step.frontier_before + step.frontier_after
            else:
                prefix += step.frontier_before
    return cost, out, steps


def _best_order(
    body: Sequence[Literal],
    profiles: Mapping[str, RelationProfile],
    signatures: Dict[str, Optional[BuiltinSignature]],
    recursive: FrozenSet[str] = frozenset(),
) -> Tuple[Tuple[int, ...], float, float, List[_StepCost]]:
    """The cheapest legal order (source order wins ties).

    Exhaustive for bodies of up to :data:`EXHAUSTIVE_LIMIT` literals;
    greedy (cheapest next probe, lowest source index on ties) beyond.
    Returns ``(order, cost, output_rows, steps)``.
    """
    identity = tuple(range(len(body)))
    if len(body) <= 1 or _has_unknown_builtin(body, signatures):
        cost, out, steps = _order_cost(
            body, identity, profiles, signatures, recursive
        )
        return identity, cost, out, steps

    if len(body) <= EXHAUSTIVE_LIMIT:
        best: Optional[Tuple[float, Tuple[int, ...]]] = None
        for order in itertools.permutations(identity):
            if not _order_is_legal(body, order, signatures):
                continue
            cost, _, _ = _order_cost(
                body, order, profiles, signatures, recursive
            )
            # The identity permutation is lexicographically minimal, so
            # ties always resolve to source order.
            if best is None or (cost, order) < best:
                best = (cost, order)
        if best is None:
            order = identity
        else:
            order = best[1]
        cost, out, steps = _order_cost(
            body, order, profiles, signatures, recursive
        )
        return order, cost, out, steps

    # Greedy: extend the prefix with the literal whose probe is
    # cheapest given the variables bound so far, among the literals
    # that keep the prefix legal (checked incrementally).
    chosen: List[int] = []
    remaining = list(identity)
    while remaining:
        scored: List[Tuple[float, int]] = []
        for candidate in remaining:
            order = chosen + [candidate]
            if not _order_is_legal(
                [body[i] for i in order], range(len(order)), signatures
            ):
                continue
            cost, _, _ = _order_cost(
                [body[i] for i in order], range(len(order)),
                profiles, signatures, recursive,
            )
            scored.append((cost, candidate))
        if not scored:
            # No legal extension (e.g. a negation whose binder comes
            # later in the source): fall back to source order.
            cost, out, steps = _order_cost(
                body, identity, profiles, signatures, recursive
            )
            return identity, cost, out, steps
        scored.sort()
        chosen.append(scored[0][1])
        remaining.remove(scored[0][1])
    order = tuple(chosen)
    if not _order_is_legal(body, order, signatures):  # pragma: no cover
        order = identity
    cost, out, steps = _order_cost(
        body, order, profiles, signatures, recursive
    )
    # Greedy is a heuristic: never trade the author's order for a
    # costlier one (exhaustive search cannot, by construction).
    if order != identity and _order_is_legal(body, identity, signatures):
        source_cost, source_out, source_steps = _order_cost(
            body, identity, profiles, signatures, recursive
        )
        if source_cost <= cost:
            return identity, source_cost, source_out, source_steps
    return order, cost, out, steps


# ---------------------------------------------------------------------------
# IDB cardinality bounds.
# ---------------------------------------------------------------------------

def _head_domain_cap(
    rule: Rule,
    profiles: Mapping[str, RelationProfile],
    signatures: Dict[str, Optional[BuiltinSignature]],
) -> float:
    """Upper bound on head rows from the head columns' domains."""
    domain_of: Dict[Var, float] = {}
    for literal in rule.body:
        if literal.negated or literal.pred in signatures:
            continue
        profile = profiles.get(literal.pred)
        if profile is None:
            continue
        for position, term in enumerate(literal.args):
            if isinstance(term, Var) and position < len(profile.distinct):
                domain = profile.distinct[position]
                known = domain_of.get(term)
                domain_of[term] = domain if known is None else min(known, domain)
    cap = 1.0
    for term in rule.head.args:
        if isinstance(term, Const):
            continue
        cap = min(cap * domain_of.get(term, MAX_ESTIMATE), MAX_ESTIMATE)
    return cap


def _propagate_bounds(
    program: Program,
    profiles: Dict[str, RelationProfile],
    signatures: Dict[str, Optional[BuiltinSignature]],
    strata: Sequence[Set[str]],
) -> None:
    """Grow ``profiles`` with capped IDB estimates, stratum by stratum.

    Estimates are monotone non-decreasing and clamped, so the per-
    stratum loop converges; :data:`MAX_BOUND_ROUNDS` is a safety valve.
    """
    rules = [r for r in program.rules if not r.is_fact()]
    exact_rows = {p: prof.rows for p, prof in profiles.items() if prof.exact}
    for stratum in strata:
        stratum_rules = [r for r in rules if r.head.pred in stratum]
        if not stratum_rules:
            continue
        for _ in range(MAX_BOUND_ROUNDS):
            changed = False
            derived: Dict[str, float] = {}
            caps: Dict[str, float] = {}
            arities: Dict[str, int] = {}
            for rule in stratum_rules:
                _, out, _ = _walk(
                    rule.body, range(len(rule.body)), profiles, signatures
                )
                pred = rule.head.pred
                derived[pred] = min(
                    derived.get(pred, 0.0) + out, MAX_ESTIMATE
                )
                caps[pred] = min(
                    caps.get(pred, 0.0)
                    + _head_domain_cap(rule, profiles, signatures),
                    MAX_ESTIMATE,
                )
                arities[pred] = rule.head.arity
            for pred, estimate in derived.items():
                rows = min(estimate, caps[pred]) + exact_rows.get(pred, 0.0)
                rows = min(rows, MAX_ESTIMATE)
                old = profiles.get(pred)
                if old is not None and old.rows >= rows:
                    continue
                arity = arities[pred]
                distinct = tuple(
                    min(
                        rows,
                        old.distinct[i] if old is not None
                        and i < len(old.distinct) and old.exact
                        else rows,
                    )
                    for i in range(arity)
                )
                profiles[pred] = RelationProfile(
                    pred=pred, arity=arity, rows=rows, distinct=distinct,
                    keys=old.keys if old is not None and old.exact else (),
                    determines=(),
                    exact=False,
                )
                changed = True
            if not changed:
                break


# ---------------------------------------------------------------------------
# The plan.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RuleCost:
    """One rule's chosen order and costs."""

    rule_index: int
    head: str
    order: Tuple[int, ...]
    source_cost: float
    cost: float
    output_rows: float
    pos: Optional[object] = None

    @property
    def reordered(self) -> bool:
        return self.order != tuple(range(len(self.order)))

    def to_json(self) -> Dict:
        return {
            "rule": self.rule_index,
            "head": self.head,
            "order": list(self.order),
            "source_cost": _finite(self.source_cost),
            "cost": _finite(self.cost),
            "rows": _finite(self.output_rows),
            "reordered": self.reordered,
            "line": self.pos.line if self.pos else None,
            "column": self.pos.column if self.pos else None,
        }


@dataclass
class CostPlan:
    """The static cost analysis of one program.

    ``rules`` has one entry per non-fact rule (keyed by its index in
    ``program.rules``); ``profiles`` covers every relation with a
    cardinality estimate; ``diagnostics`` carries the DL5xx findings.
    """

    program: Program
    profiles: Dict[str, RelationProfile]
    rules: List[RuleCost]
    diagnostics: List[Diagnostic] = field(default_factory=list)

    SCHEMA = "repro-cost-plan/1"

    def order_of(self, rule_index: int) -> Optional[Tuple[int, ...]]:
        for entry in self.rules:
            if entry.rule_index == rule_index:
                return entry.order
        return None

    def reordered_count(self) -> int:
        return sum(1 for entry in self.rules if entry.reordered)

    def rule_weights(self) -> Dict[int, float]:
        """Rule index → cost weight (for shard-plan skew prediction)."""
        return {entry.rule_index: entry.cost for entry in self.rules}

    def apply(self) -> Program:
        """The cost-ordered program: same rules, permuted bodies.

        Body orders are permutations of the source bodies, legal under
        the binding discipline the engines implement, so evaluation is
        bit-identical to the source program on every backend.
        """
        order_of = {entry.rule_index: entry.order for entry in self.rules}
        rules: List[Rule] = []
        for index, rule in enumerate(self.program.rules):
            order = order_of.get(index)
            if order is None or order == tuple(range(len(rule.body))):
                rules.append(rule)
            else:
                rules.append(Rule(
                    rule.head,
                    tuple(rule.body[i] for i in order),
                    pos=rule.pos,
                ))
        return Program(
            rules=rules,
            facts={pred: set(rows) for pred, rows in self.program.facts.items()},
        )

    def body(self) -> Dict:
        return {
            "generator": "repro.datalog.cost",
            "rules": len(self.rules),
            "reordered": self.reordered_count(),
            "profiles": [
                self.profiles[pred].to_json()
                for pred in sorted(self.profiles)
            ],
            "rule_costs": [entry.to_json() for entry in self.rules],
            "diagnostics": [
                {
                    "code": diag.code,
                    "severity": diag.severity.name,
                    "rule": diag.rule_index,
                    "line": diag.pos.line if diag.pos else None,
                    "column": diag.pos.column if diag.pos else None,
                    "message": diag.message,
                }
                for diag in _sorted_diagnostics(self.diagnostics)
            ],
        }

    def digest(self) -> str:
        return _digest(self.body())

    def to_json(self) -> Dict:
        body = self.body()
        return {
            "schema": self.SCHEMA,
            "digest": _digest(body),
            "body": body,
        }

    def render(self) -> str:
        total_source = sum(entry.source_cost for entry in self.rules)
        total_best = sum(entry.cost for entry in self.rules)
        ratio = (total_best / total_source) if total_source > 0 else 1.0
        lines = [
            f"cost plan: {len(self.rules)} rules,"
            f" {self.reordered_count()} reordered"
            f" (total cost {_finite(total_best)} vs"
            f" {_finite(total_source)} source, {ratio:.2f}x)"
        ]
        for entry in self.rules:
            if not entry.reordered:
                continue
            where = ""
            if entry.pos is not None:
                where = f" at {entry.pos!r}"
            lines.append(
                f"  #{entry.rule_index} {entry.head}{where}:"
                f" order {list(entry.order)}"
                f" cost {_finite(entry.cost)}"
                f" (source {_finite(entry.source_cost)})"
            )
        return "\n".join(lines)


def _digest(body: Mapping) -> str:
    canonical = json.dumps(
        body, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _sorted_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    return sorted(
        diagnostics,
        key=lambda d: (
            d.pos.line if d.pos else 0,
            d.pos.column if d.pos else 0,
            d.code,
            d.message,
        ),
    )


def verify_cost_plan(document: Mapping) -> Dict:
    """Self-check a loaded ``repro-cost-plan/1`` document.

    Returns a summary dict; raises :class:`ValueError` on a schema or
    digest violation (the CLI surfaces this under ``repro lint``).
    """
    schema = document.get("schema")
    if schema != CostPlan.SCHEMA:
        raise ValueError(
            f"not a cost plan: schema {schema!r}"
            f" (expected {CostPlan.SCHEMA!r})"
        )
    body = document.get("body")
    if not isinstance(body, Mapping):
        raise ValueError("cost plan has no body object")
    recorded = document.get("digest")
    actual = _digest(body)
    if recorded != actual:
        raise ValueError(
            f"cost-plan digest mismatch: header says {recorded!r},"
            f" body hashes to {actual!r}"
        )
    rule_costs = body.get("rule_costs", [])
    declared = body.get("rules")
    if declared != len(rule_costs):
        raise ValueError(
            f"cost plan declares {declared} rules but lists"
            f" {len(rule_costs)}"
        )
    reordered = sum(1 for entry in rule_costs if entry.get("reordered"))
    if body.get("reordered") != reordered:
        raise ValueError(
            f"cost plan declares {body.get('reordered')} reordered rules"
            f" but lists {reordered}"
        )
    return {
        "schema": schema,
        "digest": actual,
        "rules": declared,
        "reordered": reordered,
        "profiles": len(body.get("profiles", [])),
        "diagnostics": len(body.get("diagnostics", [])),
    }


# ---------------------------------------------------------------------------
# The analysis driver.
# ---------------------------------------------------------------------------

def analyze_cost(program: Program, builtins: Builtins = None) -> CostPlan:
    """Profile, bound, and plan join orders for ``program``.

    Raises :class:`repro.datalog.stratify.StratificationError` for
    programs with negation through recursion (the DL201 lint pass owns
    explaining that failure).
    """
    from repro.datalog.stratify import stratify

    signatures = _signatures(builtins)
    strata = stratify(program, set(signatures))
    profiles = profile_facts(program)
    _propagate_bounds(program, profiles, signatures, strata)

    stratum_of: Dict[str, FrozenSet[str]] = {}
    for stratum in strata:
        frozen = frozenset(stratum)
        for pred in stratum:
            stratum_of[pred] = frozen

    rule_costs: List[RuleCost] = []
    diagnostics: List[Diagnostic] = []
    for index, rule in enumerate(program.rules):
        if rule.is_fact():
            continue
        # The head's stratum is its SCC: exactly the predicates the
        # engines evaluate with delta variants inside this rule, so
        # exactly the literals the semi-naive prefix penalty applies to.
        recursive = stratum_of.get(rule.head.pred, frozenset())
        source_cost, _, _ = _order_cost(
            rule.body, range(len(rule.body)), profiles, signatures,
            recursive,
        )
        order, cost, output, steps = _best_order(
            rule.body, profiles, signatures, recursive
        )
        entry = RuleCost(
            rule_index=index,
            head=rule.head.pred,
            order=order,
            source_cost=source_cost,
            cost=cost,
            output_rows=output,
            pos=rule.pos,
        )
        rule_costs.append(entry)
        diagnostics.extend(
            _rule_diagnostics(rule, index, entry, steps, profiles, signatures)
        )
    diagnostics.extend(_shared_prefixes(program, rule_costs, signatures))

    return CostPlan(
        program=program,
        profiles=profiles,
        rules=rule_costs,
        diagnostics=_sorted_diagnostics(diagnostics),
    )


def _rule_diagnostics(
    rule: Rule,
    index: int,
    entry: RuleCost,
    steps: Sequence[_StepCost],
    profiles: Mapping[str, RelationProfile],
    signatures: Dict[str, Optional[BuiltinSignature]],
) -> List[Diagnostic]:
    out: List[Diagnostic] = []

    def diag(code: str, severity: Severity, message: str,
             literal: Optional[Literal] = None) -> None:
        pos = (literal.pos if literal is not None else None) or rule.pos
        out.append(Diagnostic(
            code, severity, message,
            rule_index=index, pos=pos, where=rule.head.pred,
        ))

    stored_seen = 0
    for step in steps:
        literal = rule.body[step.body_index]
        if literal.negated or literal.pred in signatures:
            continue
        stored_seen += 1
        profile = profiles.get(literal.pred)
        if (
            not step.bound_positions
            and stored_seen > 1
            # Only live cross products: a provably-empty frontier or
            # relation makes the scan vacuous (DL301's territory).
            and step.frontier_before > 0
            and profile is not None
            and profile.rows > 1
        ):
            diag(
                "DL501", Severity.WARNING,
                f"unbounded join: {literal!r} is probed with no bound"
                f" columns even under the best legal order"
                f" (~{_finite(profile.rows)} rows) — a cross product"
                f" against the bindings so far, in {rule!r}",
                literal,
            )
        elif (
            step.bound_positions
            and profile is not None
            and profile.exact
            and profile.rows > 1
            and not profile.selective(step.bound_positions)
        ):
            columns = list(step.bound_positions)
            diag(
                "DL502", Severity.NOTE,
                f"probe without usable index: the bound column(s)"
                f" {columns} of {literal!r} carry no selectivity"
                f" (every one of the ~{_finite(profile.rows)} rows"
                f" matches), in {rule!r}",
                literal,
            )

    if entry.reordered and entry.cost < entry.source_cost:
        ratio = (
            entry.cost / entry.source_cost if entry.source_cost > 0 else 0.0
        )
        diag(
            "DL503", Severity.NOTE,
            f"cost-improving reorder available: body order"
            f" {list(entry.order)} costs {_finite(entry.cost)} vs"
            f" {_finite(entry.source_cost)} for source order"
            f" ({ratio:.2f}x), in {rule!r}",
        )
    return out


def _canonical_literal(
    literal: Literal, numbering: Dict[Var, int]
) -> Tuple:
    parts: List[Tuple] = []
    for term in literal.args:
        if isinstance(term, Const):
            parts.append(("c", repr(term.value)))
        else:
            parts.append(("v", numbering.setdefault(term, len(numbering))))
    return (literal.pred, literal.negated, tuple(parts))


def _shared_prefixes(
    program: Program,
    rule_costs: Sequence[RuleCost],
    signatures: Dict[str, Optional[BuiltinSignature]],
) -> List[Diagnostic]:
    """DL504: rules whose chosen orders share a canonical 2-literal
    prefix — the joint subplan could be evaluated once and cached."""
    groups: Dict[Tuple, List[int]] = {}
    for entry in rule_costs:
        rule = program.rules[entry.rule_index]
        if len(rule.body) < 2:
            continue
        numbering: Dict[Var, int] = {}
        prefix = tuple(
            _canonical_literal(rule.body[i], numbering)
            for i in entry.order[:2]
        )
        groups.setdefault(prefix, []).append(entry.rule_index)
    out: List[Diagnostic] = []
    for prefix in sorted(groups, key=repr):
        members = groups[prefix]
        if len(members) < 2:
            continue
        first = program.rules[members[0]]
        preds = " , ".join(p for p, _, _ in prefix)
        out.append(Diagnostic(
            "DL504", Severity.NOTE,
            f"shared body prefix [{preds}] across rules"
            f" {members}: the joint subplan is evaluated"
            f" {len(members)} times per round and could be cached",
            rule_index=members[0], pos=first.pos, where=first.head.pred,
        ))
    return out


def reorder_program(
    program: Program,
    builtins: Builtins = None,
    plan: Optional[CostPlan] = None,
) -> Program:
    """The cost-ordered rewrite of ``program`` (see :meth:`CostPlan.apply`)."""
    if plan is None:
        plan = analyze_cost(program, builtins)
    return plan.apply()
