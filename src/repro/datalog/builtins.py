"""Builtin (functional) predicates for the Datalog engine.

Doop relies on LogicBlox's functional predicates for context
construction (``record``/``merge`` are "constructors" there); our engine
mirrors that with *builtins*: Python callables evaluated during rule
bodies.  A builtin receives the literal's argument tuple with variables
already substituted where bound (unbound positions arrive as
:class:`repro.datalog.ast.Var`) and yields completed argument tuples.

The engine evaluates body literals left to right, so a rule must order
its literals such that a builtin's required inputs are bound by the time
it is reached; builtins raise :class:`BuiltinBindingError` otherwise.

The standard comparison builtins operate on fully bound arguments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.datalog.ast import Var

#: A builtin maps a partially bound argument tuple to completed tuples.
BuiltinFn = Callable[[Tuple], Iterator[Tuple]]


@dataclass(frozen=True)
class BuiltinSignature:
    """Static binding discipline of a builtin, for lint-time checking.

    ``out_positions`` lists the argument positions the builtin may
    *produce* (every other position must be bound when the literal is
    reached); ``None`` means the input/output split is dynamic, in which
    case ``min_bound`` arguments must be bound.  ``arity`` is ``None``
    when the builtin accepts any arity.

    Attached to builtin callables as the ``lint_signature`` attribute;
    :mod:`repro.datalog.lint` consults it and skips builtins without
    one.
    """

    name: str
    arity: Optional[int] = None
    out_positions: Optional[FrozenSet[int]] = frozenset()
    min_bound: int = 0


def attach_signature(fn: BuiltinFn, signature: BuiltinSignature) -> BuiltinFn:
    """Annotate ``fn`` with its :class:`BuiltinSignature` (in place)."""
    fn.lint_signature = signature
    return fn


class BuiltinBindingError(ValueError):
    """A builtin was invoked with required arguments unbound."""


def _require_bound(args: Tuple, name: str) -> Tuple:
    if any(isinstance(a, Var) for a in args):
        raise BuiltinBindingError(
            f"builtin {name!r} requires all arguments bound, got {args!r}"
        )
    return args


def _comparison(name: str, op: Callable[[object, object], bool]) -> BuiltinFn:
    def fn(args: Tuple) -> Iterator[Tuple]:
        left, right = _require_bound(args, name)
        if op(left, right):
            yield args

    return attach_signature(fn, BuiltinSignature(name, arity=2))


def builtin_succ(args: Tuple) -> Iterator[Tuple]:
    """``succ(X, Y)``: ``Y = X + 1``; either side may be unbound."""
    left, right = args
    if not isinstance(left, Var) and isinstance(right, Var):
        yield (left, left + 1)
    elif isinstance(left, Var) and not isinstance(right, Var):
        yield (right - 1, right)
    elif not isinstance(left, Var):
        if right == left + 1:
            yield args
    else:
        raise BuiltinBindingError("succ/2 requires at least one bound side")


attach_signature(
    builtin_succ,
    BuiltinSignature("succ", arity=2, out_positions=None, min_bound=1),
)


DEFAULT_BUILTINS: Dict[str, BuiltinFn] = {
    "eq": _comparison("eq", lambda a, b: a == b),
    "neq": _comparison("neq", lambda a, b: a != b),
    "lt": _comparison("lt", lambda a, b: a < b),
    "le": _comparison("le", lambda a, b: a <= b),
    "gt": _comparison("gt", lambda a, b: a > b),
    "ge": _comparison("ge", lambda a, b: a >= b),
    "succ": builtin_succ,
}


def function_builtin(name: str, fn: Callable, out_positions: Tuple[int, ...]) -> BuiltinFn:
    """Wrap a plain function as a builtin.

    Input positions are every position not in ``out_positions``; they
    must be bound.  ``fn`` receives the input values in positional order
    and returns ``None`` for failure, an output *tuple* of arity
    ``len(out_positions)`` for one result, or a list of such tuples for
    multiple results.  (Always a tuple, even for a single output — this
    keeps output values that are themselves tuples, like packed calling
    contexts, unambiguous.)
    """

    def builtin(args: Tuple) -> Iterator[Tuple]:
        inputs = tuple(
            a for i, a in enumerate(args) if i not in out_positions
        )
        if any(isinstance(a, Var) for a in inputs):
            raise BuiltinBindingError(
                f"builtin {name!r} requires bound inputs, got {args!r}"
            )
        result = fn(*inputs)
        if result is None:
            return
        if isinstance(result, tuple):
            results: Iterable[Tuple] = [result]
        elif isinstance(result, list):
            results = result
        else:
            raise TypeError(
                f"builtin {name!r} must return None, a tuple or a list"
                f" of tuples, got {type(result).__name__}"
            )
        for out in results:
            if len(out) != len(out_positions):
                raise TypeError(
                    f"builtin {name!r} returned {len(out)} outputs,"
                    f" expected {len(out_positions)}"
                )
            completed = list(args)
            for position, value in zip(out_positions, out):
                existing = completed[position]
                if not isinstance(existing, Var) and existing != value:
                    break  # bound output disagrees: no match
                completed[position] = value
            else:
                yield tuple(completed)

    return attach_signature(
        builtin,
        BuiltinSignature(name, out_positions=frozenset(out_positions)),
    )
