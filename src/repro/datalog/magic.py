"""Magic-sets transformation for demand-driven evaluation.

The paper's Conclusion names this as the future-work bridge from
exhaustive to demand-driven analysis: "Datalog programs that
exhaustively compute information can be converted to a demand-driven
program through the magic sets transformation [Bancilhon et al. 1986]".
This module implements the classical transformation for positive
programs with the left-to-right sideways-information-passing strategy:

1. *Adorn* the program starting from the query's binding pattern: each
   IDB predicate occurrence gets an adornment string over ``b``/``f``
   (bound/free) describing which arguments are bound when the literal
   is reached, given that body literals are evaluated left to right.
2. For each adorned rule, guard the head with a *magic* literal holding
   the head's bound arguments, and for each IDB body literal emit a
   magic rule that derives the callee's magic tuple from the caller's
   magic tuple plus the body prefix.
3. Seed the query's magic predicate with the query constants.

Evaluating the transformed program computes exactly the portion of each
relation relevant to the query — the demand-driven behaviour the paper
anticipates pairs well with transformer strings' locality.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.datalog.ast import Const, Literal, Program, Rule, Var


class MagicSetError(ValueError):
    """Raised on inputs outside the supported fragment."""


def _adornment(literal: Literal, bound: Set[Var]) -> str:
    return "".join(
        "b" if isinstance(t, Const) or t in bound else "f"
        for t in literal.args
    )


def _adorned_name(pred: str, adornment: str) -> str:
    return f"{pred}__{adornment}"


def _magic_name(pred: str, adornment: str) -> str:
    return f"magic_{pred}__{adornment}"


def _bound_args(literal: Literal, adornment: str) -> Tuple:
    return tuple(
        t for t, a in zip(literal.args, adornment) if a == "b"
    )


def magic_transform(
    program: Program,
    query_pred: str,
    query_args: Sequence,
    builtin_preds: Set[str] = frozenset(),
) -> Tuple[Program, str]:
    """Transform ``program`` for the query ``query_pred(query_args)``.

    ``query_args`` items that are :class:`Var` or ``None`` are free
    (``None`` becomes a fresh variable); everything else — including
    plain strings, which in pointer-analysis programs are entity names
    like ``"T.main/x"`` — is a bound constant.  Returns
    ``(transformed_program, answer_predicate)``; evaluate the
    transformed program and read the answer predicate to obtain exactly
    the query's answers.

    Only positive programs are supported (the pointer-analysis programs
    of :mod:`repro.compile` are positive).
    """
    for rule in program.rules:
        if any(lit.negated for lit in rule.body):
            raise MagicSetError("magic sets over negation is not supported")

    idb = program.idb_predicates()
    if query_pred not in idb:
        raise MagicSetError(f"query predicate {query_pred!r} is not an IDB")

    query_literal = Literal(
        query_pred,
        tuple(
            t
            if isinstance(t, (Var, Const))
            else (Var(f"_Q{k}") if t is None else Const(t))
            for k, t in enumerate(query_args)
        ),
    )
    query_adornment = _adornment(query_literal, set())

    rules_by_head: Dict[str, List[Rule]] = {}
    for rule in program.rules:
        rules_by_head.setdefault(rule.head.pred, []).append(rule)

    transformed = Program()
    transformed.facts = {
        pred: set(rows) for pred, rows in program.facts.items()
    }

    done: Set[Tuple[str, str]] = set()
    pending: List[Tuple[str, str]] = [(query_pred, query_adornment)]

    while pending:
        pred, adornment = pending.pop()
        if (pred, adornment) in done:
            continue
        done.add((pred, adornment))
        for rule in rules_by_head.get(pred, []):
            _transform_rule(
                transformed, rule, adornment, idb, builtin_preds, pending
            )

    # Seed the magic set for the query.
    seed_args = _bound_args(query_literal, query_adornment)
    if any(isinstance(t, Var) for t in seed_args):  # pragma: no cover
        raise MagicSetError("query bound arguments must be constants")
    transformed.rules.append(
        Rule(
            Literal(
                _magic_name(query_pred, query_adornment), tuple(seed_args)
            )
        )
    )
    # The adorned predicate holds answers for *every* demanded subquery;
    # project out exactly the tuples matching the original query.
    answer_pred = f"__answer_{query_pred}"
    transformed.rules.append(
        Rule(
            Literal(answer_pred, query_literal.args),
            (
                Literal(
                    _adorned_name(query_pred, query_adornment),
                    query_literal.args,
                ),
            ),
        )
    )
    return transformed, answer_pred


def _reorder_body(rule: Rule, bound: Set[Var], idb: Set[str],
                  builtin_preds: Set[str]) -> Tuple[Literal, ...]:
    """Greedy sideways-information-passing: evaluate the most-bound
    literal next, preferring extensional relations, so demand flows
    backward from the query's bound arguments instead of re-deriving
    whole relations.  Rules containing builtins keep their author-chosen
    order (builtins encode binding requirements positionally)."""
    if any(lit.pred in builtin_preds for lit in rule.body):
        return rule.body
    remaining = list(rule.body)
    known = set(bound)
    ordered: List[Literal] = []
    while remaining:
        def score(item):
            index, literal = item
            variables = literal.variables()
            fraction = (
                len(variables & known) / len(variables) if variables else 1.0
            )
            return (fraction, literal.pred not in idb, -index)

        best_index, best = max(enumerate(remaining), key=score)
        ordered.append(best)
        known |= best.variables()
        remaining.pop(best_index)
    return tuple(ordered)


def _transform_rule(
    transformed: Program,
    rule: Rule,
    adornment: str,
    idb: Set[str],
    builtin_preds: Set[str],
    pending: List[Tuple[str, str]],
) -> None:
    head = rule.head
    bound: Set[Var] = {
        t
        for t, a in zip(head.args, adornment)
        if a == "b" and isinstance(t, Var)
    }
    rule = Rule(head, _reorder_body(rule, bound, idb, builtin_preds))
    magic_head = Literal(
        _magic_name(head.pred, adornment), _bound_args(head, adornment)
    )

    new_body: List[Literal] = [magic_head]
    for literal in rule.body:
        if literal.pred in idb:
            lit_adornment = _adornment(literal, bound)
            # Magic rule: the callee's demand is the caller's demand plus
            # the prefix evaluated so far.
            magic_callee = Literal(
                _magic_name(literal.pred, lit_adornment),
                _bound_args(literal, lit_adornment),
            )
            transformed.rules.append(Rule(magic_callee, tuple(new_body)))
            pending.append((literal.pred, lit_adornment))
            new_body.append(
                Literal(
                    _adorned_name(literal.pred, lit_adornment), literal.args
                )
            )
        else:
            new_body.append(literal)
        bound |= literal.variables()

    transformed.rules.append(
        Rule(
            Literal(_adorned_name(head.pred, adornment), head.args),
            tuple(new_body),
        )
    )
