"""The kernel backend: semi-naive rounds over columnar integer storage.

The driver half of :mod:`repro.compile.kernels`.  Where the
interpreting :class:`~repro.datalog.engine.Engine` walks rule ASTs and
the compiled backend (:mod:`repro.datalog.codegen`) runs generated
tuple-row functions, the :class:`KernelEngine` runs generated *column*
functions over a :class:`~repro.store.columnar.ColumnarStore`: every
constant is interned up front (:func:`intern_program`), rows are
fixed-width machine-int records, deltas are contiguous row-id ranges,
and joins probe row-id buckets keyed by bare ints.

The visible result is identical to the other engines': predicate →
decoded row set for every fact predicate and every rule head (the
parity sweeps in ``tests/datalog/test_kernel.py`` pin this
bit-for-bit against the worklist solver and both Datalog backends).

:func:`intern_program` is also the interning front door of the
:class:`~repro.datalog.parallel.ParallelEngine` — pure-Datalog
programs are rewritten once, here, to dense small ints; results are
decoded at the boundary.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from repro.compile.kernels import KernelProgram, compile_kernels
from repro.datalog.ast import Const, Literal, Program, Rule
from repro.datalog.builtins import DEFAULT_BUILTINS, BuiltinFn
from repro.datalog.engine import EngineStats
from repro.datalog.stratify import stratify
from repro.store import ColumnarRelation, ColumnarStore, Interner


def intern_program(program: Program, interner: Interner) -> Program:
    """Rewrite every constant (rule consts and fact attributes) to its
    interned symbol.  Deterministic: iteration follows program order."""
    def encode_term(term):
        if isinstance(term, Const):
            return Const(interner.intern(term.value))
        return term

    def encode_literal(literal: Literal) -> Literal:
        return Literal(
            literal.pred,
            tuple(encode_term(t) for t in literal.args),
            negated=literal.negated,
            pos=literal.pos,
        )

    rules = [
        Rule(
            encode_literal(rule.head),
            tuple(encode_literal(lit) for lit in rule.body),
            pos=rule.pos,
        )
        for rule in program.rules
    ]
    facts = {
        pred: {interner.intern_row(row) for row in sorted(rows)}
        for pred, rows in sorted(program.facts.items())
    }
    return Program(rules=rules, facts=facts)


class KernelEngine:
    """Evaluates a :class:`Program` to fixpoint through fused kernels.

    Drop-in result-compatible with :class:`~repro.datalog.engine.Engine`
    and the compiled backend.  Unlike the parallel engine's opportunistic
    interning, the kernel backend *always* interns — builtins cross the
    interner boundary through the decode/encode shims the kernel
    compiler emits.
    """

    def __init__(
        self,
        program: Program,
        builtins: Optional[Dict[str, BuiltinFn]] = None,
        strict: bool = False,
        cost_order: bool = False,
    ):
        self.builtins: Dict[str, BuiltinFn] = dict(DEFAULT_BUILTINS)
        if builtins:
            self.builtins.update(builtins)
        if cost_order:
            # Lower the cost-chosen body orders into the kernels: the
            # rewrite happens before interning, so every generated
            # probe (and the index set it implies) follows the plan.
            from repro.datalog.cost import reorder_program

            program = reorder_program(program, builtins=self.builtins)
        self.cost_ordered = cost_order
        if strict:
            from repro.datalog.lint import lint_program

            lint_program(
                program, builtins=self.builtins, subject="program"
            ).raise_if_errors()
        program.validate()
        overlap = set(self.builtins) & (
            program.idb_predicates() | set(program.facts)
        )
        if overlap:
            raise ValueError(
                f"predicates {sorted(overlap)} are both builtins and"
                " stored relations"
            )
        self._source_program = program
        self.interner = Interner()
        self.program = intern_program(program, self.interner)
        self.kernels: KernelProgram = compile_kernels(
            self.program, builtins=self.builtins
        )
        self._functions = self.kernels.instantiate(
            self.builtins, self.interner
        )
        self.store = ColumnarStore(self.interner)
        self.stats = EngineStats()

    # -- storage -----------------------------------------------------------

    def _init_storage(self) -> None:
        # One columnar relation per predicate, bound once into the flat
        # tables the kernels index: ``db[pid]`` the row dict (membership
        # + full scans), ``idx[iid]`` a row-id bucket index, ``cols[cid]``
        # one live ``array('q')`` column.  All three views are maintained
        # incrementally by ``ColumnarRelation.add``, so binding order
        # relative to fact loading does not matter.
        ordered = sorted(self.kernels.pred_ids, key=self.kernels.pred_ids.get)
        self._relations: Dict[str, ColumnarRelation] = {}
        for pred in ordered:
            self._relations[pred] = self.store.relation(
                pred, self.kernels.arity_of(pred)
            )
        self._db: List[Dict[Tuple, int]] = [
            self._relations[pred].rows for pred in ordered
        ]
        self._idx: List[Dict] = [None] * len(self.kernels.index_ids)
        for (pred, positions), index_id in self.kernels.index_ids.items():
            self._idx[index_id] = self._relations[pred].index_view(positions)
        self._cols: List = [None] * len(self.kernels.column_ids)
        for (pred, position), slot in self.kernels.column_ids.items():
            self._cols[slot] = self._relations[pred].columns[position]

    def _insert(self, pred: str, row: Tuple) -> bool:
        return self._relations[pred].add(row)

    # -- evaluation --------------------------------------------------------

    def run(self) -> Dict[str, Set[Tuple]]:
        """Evaluate to fixpoint; returns predicate → decoded row set."""
        start = time.perf_counter()
        self._init_storage()
        for pred, rows in self.program.facts.items():
            for row in rows:
                self._relations[pred].load(row)
        for rule in self.program.rules:
            if rule.is_fact():
                self._relations[rule.head.pred].load(
                    tuple(t.value for t in rule.head.args)
                )
        strata = stratify(self.program, set(self.builtins))
        for stratum in strata:
            self._evaluate_stratum(stratum)
        self.stats.seconds = time.perf_counter() - start
        # Mirror the interpreting engine's view: fact relations plus
        # every rule-head relation (body-only EDB names stay hidden).
        visible = set(self.program.facts) | {
            rule.head.pred for rule in self.program.rules
        }
        decode = self.interner.decode_row
        return {
            pred: {decode(row) for row in self._relations[pred].rows}
            for pred in visible
        }

    def _evaluate_stratum(self, stratum: Set[str]) -> None:
        full_variants = []
        by_delta: Dict[str, List[Tuple[str, object]]] = defaultdict(list)
        for variant in self.kernels.variants:
            if variant.head not in stratum:
                continue
            fn = self._functions[variant.name]
            if variant.delta_pred is None:
                full_variants.append((variant.head, fn))
            else:
                by_delta[variant.delta_pred].append((variant.head, fn))

        heads = [
            self._relations[pred]
            for pred in dict.fromkeys(v.head for v in self.kernels.variants)
            if pred in stratum
        ]

        # Round zero: full evaluation; new rows land in each head
        # relation's pending frontier.
        for (head, fn) in full_variants:
            out: List[Tuple] = []
            fn(self._cols, self._db, self._idx, (), out)
            self.stats.rule_evaluations += 1
            for row in out:
                if self._insert(head, row):
                    self.stats.facts_derived += 1
        # Semi-naive rounds: cut each frontier (pending → delta ids)
        # and run only variants whose delta predicate moved.
        delta: Dict[str, range] = {
            rel.name: rel.promote() for rel in heads if rel.pending_ids
        }
        while delta:
            self.stats.rounds += 1
            for delta_pred, ids in delta.items():
                for (head, fn) in by_delta.get(delta_pred, ()):
                    out = []
                    fn(self._cols, self._db, self._idx, ids, out)
                    self.stats.rule_evaluations += 1
                    for row in out:
                        if self._insert(head, row):
                            self.stats.facts_derived += 1
            delta = {
                rel.name: rel.promote() for rel in heads if rel.pending_ids
            }

    # -- queries & stats ---------------------------------------------------

    def query(self, pred: str) -> Set[Tuple]:
        """The decoded rows of one predicate (empty if never populated)."""
        if not hasattr(self, "_relations"):
            return set()
        relation = self._relations.get(pred)
        if relation is None:
            return set()
        decode = self.interner.decode_row
        return {decode(row) for row in relation.rows}

    def store_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-relation store counters — see
        :meth:`repro.store.columnar.ColumnarStore.describe`."""
        return self.store.describe()


def evaluate_kernel(
    program: Program, builtins=None, strict: bool = False,
    cost_order: bool = False,
) -> Dict[str, Set[Tuple]]:
    """One-shot kernel-backend evaluation convenience wrapper."""
    return KernelEngine(
        program, builtins, strict=strict, cost_order=cost_order
    ).run()
