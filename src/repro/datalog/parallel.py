"""Plan-driven parallel semi-naive evaluation.

The executor half of the shard-safety analysis: a
:class:`~repro.datalog.partition.ShardPlan` (built by
:func:`repro.datalog.partition.build_shard_plan`) says, per rule,
which body atoms are co-partitioned on the join anchor, which must
probe a broadcast *replica*, and where derived rows live.  This module
runs that plan over ``N`` shards with exact sequential parity:

* every shard holds the *owned* slice of each partitioned relation
  (rows whose partition attribute hashes to it), plus full copies of
  replicated relations and of the replica'd relations the plan forced;
* within a stratum, evaluation proceeds in bulk-synchronous rounds:
  each shard evaluates its rules semi-naively against its local store,
  collecting derived rows into per-destination outboxes (exchange
  edges) and a broadcast outbox (replicated/replica'd heads); the
  coordinator routes them, every shard ingests and promotes, and the
  stratum ends when no shard has a frontier left;
* **shard-local rules never communicate**: their derivations are
  owned by construction and inserted directly.

The plan is certified at run time: every row entering an owned slice
asserts its partition attribute hashes here (``ownership_violations``),
and every keyed probe of an owned slice asserts the key's partition
value hashes here (``cross_shard_probes``).  Both counters must be
zero — the static classification is the race detector, and these
counters are its proof obligation (checked by the property tests and
the bench harness).

Two backends share all evaluation code: ``processes=True`` forks real
workers (``multiprocessing`` ``fork`` context — workers inherit the
program, plan and facts copy-on-write, so only frontier deltas cross
the pipes) and falls back to in-process shards where ``fork`` is
unavailable; ``processes=False`` runs the shards in-process
(deterministic, debuggable, used by most tests).

For pure-Datalog programs (no builtins referenced — every transformer
configuration) all constants are interned to dense ints up front
(:func:`repro.datalog.kernel.intern_program`), so the wire format is
tuples of small ints and shard hashing is ``value % N``; results are
decoded at the boundary.  Programs with builtins (the context-string
instantiation) ship raw values, since builtin closures construct
values at runtime.

Interned runs additionally compile their **shard-local** rules to the
fused columnar kernels of :mod:`repro.compile.kernels` (``kernels=True``,
the default): each shard's store becomes a
:class:`~repro.store.columnar.ColumnarStore`, eligible rules — local,
unpinned, no replica probes — run generated straight-line functions
over column arrays and row-id buckets, and everything else (exchange,
broadcast, pinned, replica-probing rules) keeps the interpreted join,
which reads the same columnar relations through the shared
``lookup``/``delta`` surface.  Derived rows still route through
:meth:`_ShardState._emit`, so the run-time shard-safety certificate is
enforced identically in both modes.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.compile.kernels import KernelProgram, compile_kernels
from repro.datalog.ast import Const, Literal, Program, Var
from repro.datalog.builtins import DEFAULT_BUILTINS, BuiltinFn
from repro.datalog.kernel import intern_program
from repro.datalog.partition import (
    DEFAULT_KEY,
    PartitionSpec,
    RulePlan,
    ShardPlan,
    build_shard_plan,
    pointer_partition_spec,
    stable_shard_of,
)
from repro.store import (
    ColumnarStore,
    Interner,
    Relation,
    TupleStore,
    plan_indices,
)

Bindings = Dict[Var, object]
Rows = List[Tuple]


# ---------------------------------------------------------------------------
# Per-shard evaluation state.
# ---------------------------------------------------------------------------

class _ShardState:
    """One shard: owned slices + replicas + the semi-naive evaluator."""

    def __init__(
        self,
        shard_id: int,
        shards: int,
        program: Program,
        plan: ShardPlan,
        builtins: Dict[str, BuiltinFn],
        kernel_program: Optional[KernelProgram] = None,
        kernel_functions: Optional[Dict[str, object]] = None,
    ):
        self.shard_id = shard_id
        self.shards = shards
        self.program = program
        self.plan = plan
        self.builtins = builtins
        self.spec = plan.spec
        self._kernel_program = kernel_program
        self._kernel_functions = kernel_functions
        #: Rule indices whose shard-local variants run as columnar
        #: kernels instead of the interpreted join.
        self._kernel_rules: Set[int] = (
            set() if kernel_program is None
            else {v.rule_index for v in kernel_program.variants}
        )
        # Kernel mode stores columns (int programs only); otherwise the
        # classic tuple store.  Both expose the same relation surface.
        self.store = (
            ColumnarStore() if kernel_program is not None else TupleStore()
        )
        #: Owned slice (partitioned) or full copy (replicated).
        self.relations: Dict[str, Relation] = self.store.relations()
        #: Full replica copies of partitioned relations the plan forced.
        self.replicas: Dict[str, Relation] = {}
        self._index_plan = plan_indices(program, builtins=builtins)
        #: Predicates materialized by the normal lifecycle (facts,
        #: stratum heads, ingested rows) — the result-visible set.  In
        #: kernel mode the store additionally holds body-only
        #: predicates the kernels must bind; they stay invisible.
        self._visible: Set[str] = set()
        self._stratum_preds: Set[str] = set()
        #: Newly-inserted owned rows of replica'd relations, awaiting
        #: broadcast at the next evaluation round.
        self._replica_backlog: Dict[str, Set[Tuple]] = {}
        self.counters: Dict[str, int] = {
            "derived": 0,
            "exchanged_rows": 0,
            "broadcast_rows": 0,
            "cross_shard_probes": 0,
            "cross_shard_probes_local": 0,
            "ownership_violations": 0,
            "rule_evaluations": 0,
            "kernel_rule_evaluations": 0,
        }
        if kernel_program is not None:
            self._bind_kernel_storage()

    # -- relation access ---------------------------------------------------

    def _relation(self, pred: str, arity: int) -> Relation:
        self._visible.add(pred)
        rel = self.relations.get(pred)
        if rel is None:
            rel = self.store.relation(pred, arity)
            for positions in sorted(self._index_plan.get(pred, ())):
                rel.ensure_index(positions)
        return rel

    def _bind_kernel_storage(self) -> None:
        """Materialize every program predicate columnar and bind the
        flat tables the kernels index: ``db[pid]`` row dicts,
        ``idx[iid]`` row-id bucket indices, ``cols[cid]`` live column
        arrays.  All three are maintained incrementally by
        ``ColumnarRelation.add``, so binding up front is safe."""
        kernels = self._kernel_program
        ordered = sorted(kernels.pred_ids, key=kernels.pred_ids.get)
        for pred in ordered:
            rel = self.store.relation(pred, kernels.arity_of(pred))
            for positions in sorted(self._index_plan.get(pred, ())):
                rel.ensure_index(positions)
        self._db = [self.relations[pred].rows for pred in ordered]
        self._idx: List[Dict] = [None] * len(kernels.index_ids)
        for (pred, positions), index_id in kernels.index_ids.items():
            self._idx[index_id] = self.relations[pred].index_view(positions)
        self._cols: List = [None] * len(kernels.column_ids)
        for (pred, position), slot in kernels.column_ids.items():
            self._cols[slot] = self.relations[pred].columns[position]

    def _replica(self, pred: str, arity: int) -> Relation:
        rel = self.replicas.get(pred)
        if rel is None:
            rel = Relation(f"{pred}@replica", arity)
            self.replicas[pred] = rel
        return rel

    def _owns(self, pred: str, row: Tuple) -> bool:
        column = self.spec.column_of(pred)
        if column is None:
            return True
        return stable_shard_of(row[column], self.shards) == self.shard_id

    # -- loading -----------------------------------------------------------

    def load_facts(self) -> None:
        """Install the program's extensional rows: owned slices take
        the rows that hash here, replicas and replicated relations take
        everything."""
        def install(pred: str, row: Tuple) -> None:
            arity = len(row)
            column = self.spec.column_of(pred)
            if column is None:
                self._relation(pred, arity).load(row)
            else:
                if stable_shard_of(row[column], self.shards) == self.shard_id:
                    self._relation(pred, arity).load(row)
                else:
                    # Materialize the empty owned slice so result
                    # assembly sees the same relation set everywhere.
                    self._relation(pred, arity)
                if pred in self.plan.replicas:
                    self._replica(pred, arity).load(row)

        for pred, rows in self.program.facts.items():
            for row in rows:
                install(pred, row)
        for rule in self.program.rules:
            if rule.is_fact():
                row = tuple(t.value for t in rule.head.args)
                install(rule.head.pred, row)

    # -- stratum lifecycle --------------------------------------------------

    def begin_stratum(self, index: int) -> None:
        self._stratum_preds = set(self.plan.strata[index])
        self._rules = [
            plan for plan in self.plan.rules_of_stratum(index)
            if not plan.pinned
            or plan.rule_index % self.shards == self.shard_id
        ]
        # Materialize every stratum head — including heads of pinned
        # rules assigned to other shards — so result assembly reports
        # the same (possibly empty) relation set as the sequential
        # engine.
        for plan in self.plan.rules_of_stratum(index):
            head = plan.rule.head
            self._relation(head.pred, head.arity)

    def evaluate(self, first: bool) -> Tuple[Dict[int, Dict[str, Rows]],
                                             Dict[str, Rows]]:
        """One evaluation round over this shard's rules.

        Returns ``(outbox, broadcast)``: rows to route to specific
        owner shards, and rows every other shard must ingest (new rows
        of replicated relations and of replica'd partitioned
        relations).  Round 0 (``first``) evaluates every rule fully;
        later rounds evaluate only delta variants.
        """
        outbox: Dict[int, Dict[str, Set[Tuple]]] = {}
        broadcast: Dict[str, Set[Tuple]] = {}

        # Drain the replica backlog: owned rows ingested last round
        # that every shard's replica copy still needs.
        for pred, rows in self._replica_backlog.items():
            if rows:
                broadcast.setdefault(pred, set()).update(rows)
                self.counters["broadcast_rows"] += len(rows)
        self._replica_backlog = {}

        for plan in self._rules:
            if plan.rule_index in self._kernel_rules:
                if first:
                    self._run_kernel(plan, None, (), outbox, broadcast)
                else:
                    for position, ids in self._kernel_delta_positions(plan):
                        self._run_kernel(
                            plan, position, ids, outbox, broadcast
                        )
            elif first:
                self._evaluate_variant(plan, None, None, outbox, broadcast)
            else:
                for position, delta_rows in self._delta_positions(plan):
                    self._evaluate_variant(
                        plan, position, delta_rows, outbox, broadcast
                    )
        return (
            {
                dest: {pred: list(rows) for pred, rows in per_pred.items()}
                for dest, per_pred in outbox.items()
            },
            {pred: list(rows) for pred, rows in broadcast.items()},
        )

    def _delta_positions(
        self, plan: RulePlan
    ) -> Iterator[Tuple[int, Rows]]:
        for position, literal in enumerate(plan.rule.body):
            if literal.negated or literal.pred in self.builtins:
                continue
            if literal.pred not in self._stratum_preds:
                continue
            relation = self._probe_target(plan, position, literal.pred)
            if relation is not None and relation.delta:
                yield position, relation.delta

    def _probe_target(
        self, plan: RulePlan, position: int, pred: str
    ) -> Optional[Relation]:
        if position in plan.replica_atoms:
            return self.replicas.get(pred)
        return self.relations.get(pred)

    # -- the columnar kernel path (shard-local rules, interned runs) --------

    def _kernel_delta_positions(
        self, plan: RulePlan
    ) -> Iterator[Tuple[int, range]]:
        # Kernel-eligible rules never probe replicas, so the frontier
        # is always the owned slice's delta — as row-id ranges.
        for position, literal in enumerate(plan.rule.body):
            if literal.negated or literal.pred in self.builtins:
                continue
            if literal.pred not in self._stratum_preds:
                continue
            relation = self.relations.get(literal.pred)
            if relation is not None and relation.delta_ids:
                yield position, relation.delta_ids

    def _run_kernel(
        self,
        plan: RulePlan,
        delta_position: Optional[int],
        delta_ids,
        outbox: Dict[int, Dict[str, Set[Tuple]]],
        broadcast: Dict[str, Set[Tuple]],
    ) -> None:
        """One (rule × delta-position) variant through its fused kernel.

        Head rows still route through :meth:`_emit`, so the insert-side
        shard-safety certificate covers kernel derivations too."""
        variant = self._kernel_program.variants_by_key[
            (plan.rule_index, delta_position)
        ]
        fn = self._kernel_functions[variant.name]
        out: List[Tuple] = []
        fn(self._cols, self._db, self._idx, delta_ids, out)
        self.counters["rule_evaluations"] += 1
        self.counters["kernel_rule_evaluations"] += 1
        for row in out:
            self._emit(plan, row, outbox, broadcast)

    # -- derivation routing -------------------------------------------------

    def _emit(
        self,
        plan: RulePlan,
        row: Tuple,
        outbox: Dict[int, Dict[str, Set[Tuple]]],
        broadcast: Dict[str, Set[Tuple]],
    ) -> None:
        head = plan.rule.head
        if plan.head_column is None:
            # Replicated head: keep it here, broadcast if first seen.
            if self._insert_local(head.pred, head.arity, row):
                broadcast.setdefault(head.pred, set()).add(row)
                self.counters["broadcast_rows"] += 1
            return
        owner = stable_shard_of(row[plan.head_column], self.shards)
        if owner == self.shard_id:
            self._insert_local(head.pred, head.arity, row)
        else:
            if plan.kind == "local":  # pragma: no cover - plan violation
                self.counters["ownership_violations"] += 1
            bucket = outbox.setdefault(owner, {}).setdefault(
                head.pred, set()
            )
            if row not in bucket:
                bucket.add(row)
                self.counters["exchanged_rows"] += 1

    def _insert_local(self, pred: str, arity: int, row: Tuple) -> bool:
        """Insert an owned (or replicated) row; returns True iff new.

        Every insertion into an owned slice re-checks ownership — the
        run-time half of the shard-safety certificate.
        """
        if not self._owns(pred, row):  # pragma: no cover - plan violation
            self.counters["ownership_violations"] += 1
        if self.relations[pred].add(row):
            self.counters["derived"] += 1
            if pred in self.plan.replicas:
                self._replica_backlog.setdefault(pred, set()).add(row)
            return True
        return False

    def ingest(
        self, owned: Dict[str, Rows], replica: Dict[str, Rows]
    ) -> None:
        """Install routed rows: exchanged rows into owned slices (they
        were hashed to us), broadcast rows into full/replica copies."""
        for pred, rows in owned.items():
            arity = len(rows[0]) if rows else None
            relation = self._relation(pred, arity)
            for row in rows:
                self._insert_local(pred, relation.arity or len(row), row)
        for pred, rows in replica.items():
            if self.spec.column_of(pred) is None:
                relation = self._relation(pred, len(rows[0]))
                for row in rows:
                    relation.add(row)
            else:
                target = self._replica(pred, len(rows[0]))
                for row in rows:
                    target.add(row)

    def promote(self) -> bool:
        """Cut the frontier on every stratum relation; True iff any
        shard-local delta remains."""
        has_delta = False
        for pred in self._stratum_preds:
            relation = self.relations.get(pred)
            if relation is not None and relation.promote():
                has_delta = True
            replica = self.replicas.get(pred)
            if replica is not None and replica.promote():
                has_delta = True
        if any(self._replica_backlog.values()):
            has_delta = True
        return has_delta

    # -- results -----------------------------------------------------------

    def results(self) -> Dict[str, Rows]:
        """This shard's contribution to the global result: owned slices
        always; full replicated copies only from shard 0 (identical on
        every shard)."""
        out: Dict[str, Rows] = {}
        for pred, relation in self.relations.items():
            if pred not in self._visible:
                # Kernel-mode storage binding materializes body-only
                # predicates the sequential engine never reports.
                continue
            if self.spec.column_of(pred) is None:
                if self.shard_id == 0:
                    out[pred] = list(relation.rows)
            else:
                out[pred] = list(relation.rows)
        return out

    # -- the semi-naive join (mirrors repro.datalog.engine.Engine) ----------

    def _evaluate_variant(
        self,
        plan: RulePlan,
        delta_position: Optional[int],
        delta_rows: Optional[Rows],
        outbox: Dict[int, Dict[str, Set[Tuple]]],
        broadcast: Dict[str, Set[Tuple]],
    ) -> None:
        self.counters["rule_evaluations"] += 1
        head = plan.rule.head
        for bindings in self._join(plan, 0, {}, delta_position, delta_rows):
            row = tuple(
                bindings[t] if isinstance(t, Var) else t.value
                for t in head.args
            )
            self._emit(plan, row, outbox, broadcast)

    def _join(
        self,
        plan: RulePlan,
        index: int,
        bindings: Bindings,
        delta_position: Optional[int],
        delta_rows: Optional[Rows],
    ) -> Iterator[Bindings]:
        body = plan.rule.body
        if index == len(body):
            yield bindings
            return
        literal = body[index]

        if literal.pred in self.builtins:
            yield from self._eval_builtin(
                plan, literal, bindings, index, delta_position, delta_rows
            )
            return
        if literal.negated:
            yield from self._eval_negated(
                plan, literal, bindings, index, delta_position, delta_rows
            )
            return

        bound_positions: List[int] = []
        key_values: List[object] = []
        for position, term in enumerate(literal.args):
            if isinstance(term, Const):
                bound_positions.append(position)
                key_values.append(term.value)
            elif term in bindings:
                bound_positions.append(position)
                key_values.append(bindings[term])

        if index == delta_position:
            candidates: Sequence[Tuple] = [
                row
                for row in delta_rows
                if all(
                    row[p] == v for p, v in zip(bound_positions, key_values)
                )
            ]
        else:
            relation = self._probe_target(plan, index, literal.pred)
            if relation is None:
                return
            self._check_probe(plan, literal, bound_positions, key_values,
                              index)
            candidates = relation.lookup(
                tuple(bound_positions), tuple(key_values)
            )

        for row in candidates:
            extended = self._unify(literal, row, bindings)
            if extended is not None:
                yield from self._join(
                    plan, index + 1, extended, delta_position, delta_rows
                )

    def _check_probe(
        self,
        plan: RulePlan,
        literal: Literal,
        bound_positions: List[int],
        key_values: List[object],
        index: int,
    ) -> None:
        """The probe-side shard-safety check: a keyed probe of an owned
        slice whose partition value hashes elsewhere would be a
        cross-shard lookup — the plan says it never happens.

        The anchor atom itself is exempt: when a replicated atom earlier
        in the body binds the anchor variable, probing the owned anchor
        slice with a foreign key is the partition acting as a filter —
        the owning shard performs the same derivation from its own full
        copy of the replicated inputs, so nothing is lost."""
        if index in plan.replica_atoms or index == plan.anchor_index:
            return
        column = self.spec.column_of(literal.pred)
        if column is None:
            return
        try:
            at = bound_positions.index(column)
        except ValueError:
            return  # unkeyed scan of the owned slice (the anchor atom)
        owner = stable_shard_of(key_values[at], self.shards)
        if owner != self.shard_id:  # pragma: no cover - plan violation
            self.counters["cross_shard_probes"] += 1
            if plan.kind == "local":
                self.counters["cross_shard_probes_local"] += 1

    @staticmethod
    def _unify(
        literal: Literal, row: Tuple, bindings: Bindings
    ) -> Optional[Bindings]:
        extended = dict(bindings)
        for term, value in zip(literal.args, row):
            if isinstance(term, Const):
                if term.value != value:
                    return None
            elif term not in extended:
                extended[term] = value
            elif extended[term] != value:
                return None
        return extended

    def _eval_builtin(
        self, plan, literal, bindings, index, delta_position, delta_rows
    ) -> Iterator[Bindings]:
        fn = self.builtins[literal.pred]
        call_args = tuple(
            (bindings.get(t, t) if isinstance(t, Var) else t.value)
            for t in literal.args
        )
        produced = fn(call_args)
        if literal.negated:
            if next(iter(produced), None) is None:
                yield from self._join(
                    plan, index + 1, bindings, delta_position, delta_rows
                )
            return
        for completed in produced:
            extended = dict(bindings)
            consistent = True
            for term, value in zip(literal.args, completed):
                if isinstance(term, Var):
                    if term not in extended:
                        extended[term] = value
                    elif extended[term] != value:
                        consistent = False
                        break
                elif term.value != value:
                    consistent = False
                    break
            if consistent:
                yield from self._join(
                    plan, index + 1, extended, delta_position, delta_rows
                )

    def _eval_negated(
        self, plan, literal, bindings, index, delta_position, delta_rows
    ) -> Iterator[Bindings]:
        args = []
        for term in literal.args:
            if isinstance(term, Const):
                args.append(term.value)
            else:
                if term not in bindings:
                    raise ValueError(
                        f"negated literal {literal!r} reached with"
                        f" unbound variable {term!r}"
                    )
                args.append(bindings[term])
        relation = self._probe_target(plan, index, literal.pred)
        self._check_probe(
            plan, literal, list(range(len(args))), args, index
        )
        present = relation is not None and tuple(args) in relation
        if not present:
            yield from self._join(
                plan, index + 1, bindings, delta_position, delta_rows
            )


# ---------------------------------------------------------------------------
# Backends: in-process shards, or forked workers.
# ---------------------------------------------------------------------------

def _worker_main(
    conn, shard_id, shards, program, plan, builtins,
    kernel_program=None, kernel_functions=None,
) -> None:
    """Forked worker loop: a :class:`_ShardState` driven over a pipe.

    Under the ``fork`` start method the arguments arrive by memory
    inheritance, not pickling — only commands and frontier rows cross
    the pipe.  (That inheritance is also what lets the exec-generated
    kernel functions reach the workers unpickled.)
    """
    state = _ShardState(
        shard_id, shards, program, plan, builtins,
        kernel_program, kernel_functions,
    )
    while True:
        message = conn.recv()
        op = message[0]
        if op == "load":
            state.load_facts()
            conn.send(("ok",))
        elif op == "stratum":
            state.begin_stratum(message[1])
            conn.send(("ok",))
        elif op == "eval":
            conn.send(state.evaluate(message[1]))
        elif op == "ingest":
            state.ingest(message[1], message[2])
            conn.send(state.promote())
        elif op == "results":
            conn.send(state.results())
        elif op == "stats":
            conn.send(state.counters)
        elif op == "stop":
            conn.close()
            return


class _ForkBackend:
    """Real ``multiprocessing`` workers over duplex pipes."""

    def __init__(
        self, shards, program, plan, builtins,
        kernel_program=None, kernel_functions=None,
    ):
        import multiprocessing

        context = multiprocessing.get_context("fork")
        self._connections = []
        self._processes = []
        for shard_id in range(shards):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main,
                args=(
                    child_conn, shard_id, shards, program, plan, builtins,
                    kernel_program, kernel_functions,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)

    def broadcast_command(self, *message):
        for conn in self._connections:
            conn.send(message)
        return [conn.recv() for conn in self._connections]

    def send(self, shard_id, *message):
        self._connections[shard_id].send(message)

    def recv(self, shard_id):
        return self._connections[shard_id].recv()

    def close(self):
        for conn in self._connections:
            try:
                conn.send(("stop",))
                conn.close()
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()


class _InProcessBackend:
    """The same shard states, called directly (deterministic tests)."""

    def __init__(
        self, shards, program, plan, builtins,
        kernel_program=None, kernel_functions=None,
    ):
        self.states = [
            _ShardState(
                shard_id, shards, program, plan, builtins,
                kernel_program, kernel_functions,
            )
            for shard_id in range(shards)
        ]

    def broadcast_command(self, *message):
        return [self._dispatch(state, message) for state in self.states]

    def send(self, shard_id, *message):
        self._pending = getattr(self, "_pending", {})
        self._pending[shard_id] = self._dispatch(
            self.states[shard_id], message
        )

    def recv(self, shard_id):
        return self._pending.pop(shard_id)

    @staticmethod
    def _dispatch(state, message):
        op = message[0]
        if op == "load":
            state.load_facts()
            return ("ok",)
        if op == "stratum":
            state.begin_stratum(message[1])
            return ("ok",)
        if op == "eval":
            return state.evaluate(message[1])
        if op == "ingest":
            state.ingest(message[1], message[2])
            return state.promote()
        if op == "results":
            return state.results()
        if op == "stats":
            return state.counters
        raise ValueError(f"unknown op {op!r}")  # pragma: no cover

    def close(self):
        pass


# ---------------------------------------------------------------------------
# The coordinator.
# ---------------------------------------------------------------------------

class ParallelStats:
    """Aggregated counters for one parallel evaluation."""

    def __init__(self, shards: int, backend: str) -> None:
        self.shards = shards
        self.backend = backend
        self.rounds = 0
        self.seconds = 0.0
        self.per_shard_derived: List[int] = [0] * shards
        self.exchanged_rows = 0
        self.broadcast_rows = 0
        self.broadcast_volume = 0
        self.cross_shard_probes = 0
        self.cross_shard_probes_local = 0
        self.ownership_violations = 0
        self.rule_evaluations = 0
        self.kernel_rule_evaluations = 0

    def skew(self) -> float:
        """max/mean of per-shard derived rows (1.0 = perfectly even)."""
        total = sum(self.per_shard_derived)
        if total == 0:
            return 1.0
        mean = total / len(self.per_shard_derived)
        return max(self.per_shard_derived) / mean

    def as_dict(self) -> Dict[str, object]:
        return {
            "shards": self.shards,
            "backend": self.backend,
            "rounds": self.rounds,
            "seconds": self.seconds,
            "per_shard_derived": list(self.per_shard_derived),
            "skew": self.skew(),
            "exchanged_rows": self.exchanged_rows,
            "broadcast_rows": self.broadcast_rows,
            "broadcast_volume": self.broadcast_volume,
            "cross_shard_probes": self.cross_shard_probes,
            "cross_shard_probes_local": self.cross_shard_probes_local,
            "ownership_violations": self.ownership_violations,
            "rule_evaluations": self.rule_evaluations,
            "kernel_rule_evaluations": self.kernel_rule_evaluations,
        }


class ShardSafetyError(AssertionError):
    """The run-time certificate failed: a shard-local rule performed a
    cross-shard lookup, or a row landed on a shard that does not own
    it.  Either is a bug in the partition analysis or the executor."""


class ParallelEngine:
    """Evaluates a :class:`Program` over ``N`` shards, plan-driven.

    Drop-in result-compatible with :class:`repro.datalog.engine.Engine`:
    :meth:`run` returns the identical predicate → row-set mapping.
    """

    def __init__(
        self,
        program: Program,
        builtins: Optional[Dict[str, BuiltinFn]] = None,
        shards: int = 4,
        key: str = DEFAULT_KEY,
        spec: Optional[PartitionSpec] = None,
        plan: Optional[ShardPlan] = None,
        processes: bool = False,
        kernels: bool = True,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.builtins: Dict[str, BuiltinFn] = dict(DEFAULT_BUILTINS)
        if builtins:
            self.builtins.update(builtins)
        program.validate()
        self.shards = shards
        self._interner: Optional[Interner] = None
        self._source_program = program

        if plan is None:
            if spec is None:
                spec = pointer_partition_spec(program, key)
            plan = build_shard_plan(program, spec, self.builtins)
        else:
            spec = plan.spec

        if not _uses_builtins(program, self.builtins):
            # Pure Datalog: intern every constant so shard hashing and
            # the wire format are dense small ints.
            self._interner = Interner()
            program = intern_program(program, self._interner)
            spec = PartitionSpec(
                key=spec.key, columns=dict(spec.columns),
                replicated=spec.replicated,
            )
            plan = build_shard_plan(program, spec, self.builtins)

        self.program = program
        self.plan = plan
        self.spec = spec

        # Interned runs compile their shard-local rules to columnar
        # kernels, shared by every shard (the generated functions take
        # all storage as arguments).  Rules that communicate or probe
        # replicas keep the interpreted join.
        self._kernel_program: Optional[KernelProgram] = None
        self._kernel_functions = None
        if kernels and self._interner is not None:
            eligible = [
                p for p in plan.rules
                if not p.is_fact and p.kind == "local"
                and not p.pinned and not p.replica_atoms
            ]
            if eligible:
                self._kernel_program = compile_kernels(
                    program, self.builtins,
                    rules=[(p.rule_index, p.rule) for p in eligible],
                )
                self._kernel_functions = self._kernel_program.instantiate(
                    self.builtins, self._interner
                )
        backend_name = "fork" if processes else "inprocess"
        if processes and not _fork_available():  # pragma: no cover
            backend_name = "inprocess"
        self._backend_name = backend_name
        self.stats = ParallelStats(shards, backend_name)

    # ------------------------------------------------------------------

    def run(self) -> Dict[str, Set[Tuple]]:
        """Evaluate to fixpoint; returns predicate → row set (decoded)."""
        start = time.perf_counter()
        backend_cls = (
            _ForkBackend if self._backend_name == "fork"
            else _InProcessBackend
        )
        backend = backend_cls(
            self.shards, self.program, self.plan, self.builtins,
            self._kernel_program, self._kernel_functions,
        )
        try:
            backend.broadcast_command("load")
            for stratum_index in range(len(self.plan.strata)):
                backend.broadcast_command("stratum", stratum_index)
                self._run_stratum(backend)
            merged: Dict[str, Set[Tuple]] = {}
            for contribution in backend.broadcast_command("results"):
                for pred, rows in contribution.items():
                    merged.setdefault(pred, set()).update(rows)
            for shard_id, counters in enumerate(
                backend.broadcast_command("stats")
            ):
                self.stats.per_shard_derived[shard_id] = counters["derived"]
                self.stats.exchanged_rows += counters["exchanged_rows"]
                self.stats.broadcast_rows += counters["broadcast_rows"]
                self.stats.cross_shard_probes += counters["cross_shard_probes"]
                self.stats.cross_shard_probes_local += counters[
                    "cross_shard_probes_local"
                ]
                self.stats.ownership_violations += counters[
                    "ownership_violations"
                ]
                self.stats.rule_evaluations += counters["rule_evaluations"]
                self.stats.kernel_rule_evaluations += counters[
                    "kernel_rule_evaluations"
                ]
        finally:
            backend.close()
        self.stats.broadcast_volume = (
            self.stats.broadcast_rows * max(0, self.shards - 1)
        )
        self.stats.seconds = time.perf_counter() - start
        if self.stats.cross_shard_probes_local or \
                self.stats.ownership_violations:  # pragma: no cover
            raise ShardSafetyError(
                f"shard-safety certificate failed:"
                f" {self.stats.cross_shard_probes_local} cross-shard"
                f" probe(s) from shard-local rules,"
                f" {self.stats.ownership_violations} ownership"
                f" violation(s)"
            )
        if self._interner is not None:
            merged = {
                pred: {self._interner.decode_row(row) for row in rows}
                for pred, rows in merged.items()
            }
        return merged

    def _run_stratum(self, backend) -> None:
        first = True
        while True:
            replies = backend.broadcast_command("eval", first)
            first = False
            self.stats.rounds += 1
            # Route: per-destination owned rows + global broadcast.
            inboxes: List[Dict[str, Set[Tuple]]] = [
                {} for _ in range(self.shards)
            ]
            replica_rows: Dict[str, Set[Tuple]] = {}
            for outbox, broadcast in replies:
                for dest, per_pred in outbox.items():
                    for pred, rows in per_pred.items():
                        inboxes[dest].setdefault(pred, set()).update(rows)
                for pred, rows in broadcast.items():
                    replica_rows.setdefault(pred, set()).update(rows)
            shipped = any(inboxes) or any(replica_rows.values())
            replica_payload = {
                pred: list(rows) for pred, rows in replica_rows.items()
            }
            for shard_id in range(self.shards):
                backend.send(
                    shard_id, "ingest",
                    {
                        pred: list(rows)
                        for pred, rows in inboxes[shard_id].items()
                    },
                    replica_payload,
                )
            has_delta = [
                backend.recv(shard_id) for shard_id in range(self.shards)
            ]
            if not any(has_delta) and not shipped:
                return


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def _uses_builtins(program: Program, builtins: Dict[str, BuiltinFn]) -> bool:
    for rule in program.rules:
        for literal in rule.body:
            if literal.pred in builtins:
                return True
    return False


def evaluate_parallel(
    program: Program,
    builtins=None,
    shards: int = 4,
    key: str = DEFAULT_KEY,
    spec: Optional[PartitionSpec] = None,
    processes: bool = False,
    kernels: bool = True,
) -> Dict[str, Set[Tuple]]:
    """One-shot parallel evaluation convenience wrapper."""
    return ParallelEngine(
        program, builtins, shards=shards, key=key, spec=spec,
        processes=processes, kernels=kernels,
    ).run()
