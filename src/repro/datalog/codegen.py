"""A compiling back-end: Datalog → specialized Python source.

The paper's engine "compiles Datalog to native code using the LLVM
Compiler Infrastructure" (Section 8) — evaluation cost per tuple is a
few machine instructions, not an interpreter dispatch.  This module is
the Python analogue: every (rule × delta-position) pair is compiled to
a dedicated Python function of nested loops over precomputed hash
indices, with variable bindings as locals and constant/repeat checks
inlined.  A shared driver runs the usual stratified semi-naive
fixpoint, calling the generated functions.

The speedup over the interpreting :class:`repro.datalog.engine.Engine`
comes from exactly what the paper's LLVM back-end buys: no per-literal
unification machinery, no bindings dictionaries, and join indices whose
key columns are fixed at compile time.  Results are bit-identical
(cross-checked in ``tests/datalog/test_codegen.py`` and differentially
against the worklist solver).

Bodies are evaluated in author order, exactly like the interpreter (the
delta variant only changes the *source* of the delta literal), so the
binding discipline rule authors rely on for builtins and negation is
preserved and the two engines are observationally identical.
"""

from __future__ import annotations

import itertools
import re
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.datalog.ast import Const, Literal, Program, Rule, Var
from repro.datalog.builtins import DEFAULT_BUILTINS, BuiltinFn
from repro.datalog.engine import EngineStats
from repro.datalog.stratify import stratify
from repro.store import Relation, TupleStore


def _mangle(name: str) -> str:
    return re.sub(r"\W", "_", name)


class _RuleCompiler:
    """Emits one Python function for (rule, delta position or None)."""

    def __init__(self, rule: Rule, delta_position: Optional[int],
                 builtin_names: Set[str], index_plan: Set[Tuple[str, Tuple[int, ...]]],
                 function_name: str):
        self.rule = rule
        self.delta_position = delta_position
        self.builtin_names = builtin_names
        self.index_plan = index_plan
        self.function_name = function_name
        self.lines: List[str] = []
        self.indent = 1
        self.loop_depth = 0
        self.bound: Dict[Var, str] = {}
        self.fresh = itertools.count()

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def emit_guard(self, condition: str) -> None:
        """Skip the current candidate when ``condition`` holds.

        Inside a loop that is ``continue``; before any loop has been
        opened a failed guard means the whole rule yields nothing."""
        self.emit(f"if {condition}:")
        self.indent += 1
        self.emit("continue" if self.loop_depth else "return")
        self.indent -= 1

    def open_loop(self, header: str) -> None:
        self.emit(header)
        self.indent += 1
        self.loop_depth += 1

    def local(self, hint: str = "t") -> str:
        return f"_{hint}{next(self.fresh)}"

    # -- literal ordering -------------------------------------------------

    def _ordered_body(self) -> List[Tuple[int, Literal]]:
        """Author order, exactly as the interpreting engine evaluates.

        The delta variant only changes the *source* of the delta
        literal (the round's frontier instead of the full relation);
        keeping the order preserves the binding discipline rule authors
        rely on for builtins and negation.
        """
        return list(enumerate(self.rule.body))

    # -- code emission ------------------------------------------------------

    def compile(self) -> str:
        self.lines.append(f"def {self.function_name}(db, idx, delta, out):")
        for index, literal in self._ordered_body():
            if index == self.delta_position:
                self._emit_delta_scan(literal)
            elif literal.pred in self.builtin_names:
                self._emit_builtin(literal)
            elif literal.negated:
                self._emit_negation(literal)
            else:
                self._emit_lookup(literal)
        self._emit_head()
        if len(self.lines) == 1:
            self.emit("pass")
        return "\n".join(self.lines)

    def _term_expr(self, term) -> Optional[str]:
        if isinstance(term, Const):
            return f"_C[{self._const_id(term)}]"
        return self.bound.get(term)

    _consts: List[object]

    def set_const_pool(self, pool: List[object]) -> None:
        self._consts = pool

    def _const_id(self, term: Const) -> int:
        for position, value in enumerate(self._consts):
            if type(value) is type(term.value) and value == term.value:
                return position
        self._consts.append(term.value)
        return len(self._consts) - 1

    def _destructure(self, literal: Literal, row: str) -> None:
        # Left-to-right, interleaving binds and equality guards, so a
        # repeated variable's second occurrence checks against its first
        # (edge(X, X) selects the diagonal) and constants filter rows.
        pending_checks: List[str] = []
        for position, term in enumerate(literal.args):
            if isinstance(term, Const):
                pending_checks.append(
                    f"{row}[{position}] != {self._term_expr(term)}"
                )
            elif term in self.bound:
                pending_checks.append(
                    f"{row}[{position}] != {self.bound[term]}"
                )
            else:
                if pending_checks:
                    self.emit_guard(" or ".join(pending_checks))
                    pending_checks = []
                name = self.local(_mangle(term.name))
                self.emit(f"{name} = {row}[{position}]")
                self.bound[term] = name
        if pending_checks:
            self.emit_guard(" or ".join(pending_checks))

    def _emit_delta_scan(self, literal: Literal) -> None:
        row = self.local("d")
        self.open_loop(f"for {row} in delta:")
        self._destructure(literal, row)

    def _emit_lookup(self, literal: Literal) -> None:
        bound_positions = tuple(
            position
            for position, term in enumerate(literal.args)
            if isinstance(term, Const) or term in self.bound
        )
        row = self.local("r")
        if len(bound_positions) == len(literal.args):
            # Fully bound: membership test.
            key = ", ".join(self._term_expr(t) for t in literal.args)
            trailing = "," if len(literal.args) == 1 else ""
            self.emit_guard(
                f"({key}{trailing}) not in db[{self._pred_id(literal.pred)}]"
            )
            return
        self.index_plan.add((literal.pred, bound_positions))
        if bound_positions:
            key_terms = [literal.args[p] for p in bound_positions]
            key = ", ".join(self._term_expr(t) for t in key_terms)
            trailing = "," if len(key_terms) == 1 else ""
            source = (
                f"idx[{self._index_id(literal.pred, bound_positions)}]"
                f".get(({key}{trailing}), _EMPTY)"
            )
        else:
            source = f"db[{self._pred_id(literal.pred)}]"
        self.open_loop(f"for {row} in {source}:")
        self._destructure(literal, row)

    _pred_ids: Dict[str, int]
    _index_ids: Dict[Tuple[str, Tuple[int, ...]], int]

    def set_tables(self, pred_ids, index_ids) -> None:
        self._pred_ids = pred_ids
        self._index_ids = index_ids

    def _pred_id(self, pred: str) -> int:
        return self._pred_ids.setdefault(pred, len(self._pred_ids))

    def _index_id(self, pred: str, positions: Tuple[int, ...]) -> int:
        return self._index_ids.setdefault(
            (pred, positions), len(self._index_ids)
        )

    def _emit_negation(self, literal: Literal) -> None:
        if any(self._term_expr(t) is None for t in literal.args):
            raise ValueError(
                f"negated literal {literal!r} reached with unbound"
                f" variables in {self.rule!r}"
            )
        key = ", ".join(self._term_expr(t) for t in literal.args)
        trailing = "," if len(literal.args) == 1 else ""
        self.emit_guard(
            f"({key}{trailing}) in db[{self._pred_id(literal.pred)}]"
        )

    _var_pool: List[Var]

    def set_var_pool(self, pool: List[Var]) -> None:
        self._var_pool = pool

    def _emit_builtin(self, literal: Literal) -> None:
        args = []
        unbound: List[Tuple[int, Var]] = []
        for position, term in enumerate(literal.args):
            expr = self._term_expr(term)
            if expr is None:
                # Unbound positions receive the Var object itself, as the
                # interpreting engine does (builtins detect Vars).
                self._var_pool.append(term)
                args.append(f"_V[{len(self._var_pool) - 1}]")
                unbound.append((position, term))
            else:
                args.append(expr)
        row = self.local("b")
        self.open_loop(
            f"for {row} in _B[{self._builtin_id(literal.pred)}]"
            f"(({', '.join(args)}{',' if len(args) == 1 else ''})):"
        )
        for position, term in unbound:
            if term not in self.bound:
                name = self.local(_mangle(term.name))
                self.emit(f"{name} = {row}[{position}]")
                self.bound[term] = name

    _builtin_ids: Dict[str, int]

    def set_builtin_table(self, table: Dict[str, int]) -> None:
        self._builtin_ids = table

    def _builtin_id(self, pred: str) -> int:
        return self._builtin_ids.setdefault(pred, len(self._builtin_ids))

    def _emit_head(self) -> None:
        head = self.rule.head
        key = ", ".join(self._term_expr(t) for t in head.args)
        trailing = "," if len(head.args) == 1 else ""
        self.emit(f"out.append(({key}{trailing}))")


class CompiledEngine:
    """Drop-in counterpart of :class:`repro.datalog.engine.Engine` whose
    rule bodies are compiled to Python functions."""

    def __init__(self, program: Program,
                 builtins: Optional[Dict[str, BuiltinFn]] = None,
                 strict: bool = False, cost_order: bool = False):
        self.builtins: Dict[str, BuiltinFn] = dict(DEFAULT_BUILTINS)
        if builtins:
            self.builtins.update(builtins)
        if cost_order:
            # Compile the cost-chosen body orders instead of source
            # order; a legal permutation, so results are bit-identical.
            from repro.datalog.cost import reorder_program

            program = reorder_program(program, builtins=self.builtins)
        self.cost_ordered = cost_order
        if strict:
            from repro.datalog.lint import lint_program

            lint_program(
                program, builtins=self.builtins, subject="program"
            ).raise_if_errors()
        program.validate()
        self.program = program
        overlap = set(self.builtins) & (
            program.idb_predicates() | set(program.facts)
        )
        if overlap:
            raise ValueError(
                f"predicates {sorted(overlap)} are both builtins and"
                " stored relations"
            )
        self.stats = EngineStats()
        self._compile()

    # -- compilation -----------------------------------------------------

    def _compile(self) -> None:
        builtin_names = set(self.builtins)
        self._pred_ids: Dict[str, int] = {}
        self._index_ids: Dict[Tuple[str, Tuple[int, ...]], int] = {}
        self._builtin_ids: Dict[str, int] = {}
        self._const_pool: List[object] = []
        self._var_pool: List[Var] = []
        index_plan: Set[Tuple[str, Tuple[int, ...]]] = set()

        sources: List[str] = []
        #: (head pred, delta pred or None, function name) per variant.
        self.variants: List[Tuple[str, Optional[str], str]] = []
        rules = [r for r in self.program.rules if not r.is_fact()]
        for rule_number, rule in enumerate(rules):
            positions: List[Optional[int]] = [None]
            positions += [
                i for i, lit in enumerate(rule.body)
                if not lit.negated and lit.pred not in builtin_names
                and lit.pred in self.program.idb_predicates()
            ]
            for variant_number, delta_position in enumerate(positions):
                name = f"_rule{rule_number}_v{variant_number}"
                compiler = _RuleCompiler(
                    rule, delta_position, builtin_names, index_plan, name
                )
                compiler.set_tables(self._pred_ids, self._index_ids)
                compiler.set_builtin_table(self._builtin_ids)
                compiler.set_const_pool(self._const_pool)
                compiler.set_var_pool(self._var_pool)
                sources.append(compiler.compile())
                delta_pred = (
                    None if delta_position is None
                    else rule.body[delta_position].pred
                )
                self.variants.append((rule.head.pred, delta_pred, name))

        # Make sure every predicate mentioned anywhere has a table id.
        for rule in self.program.rules:
            for literal in (rule.head, *rule.body):
                if literal.pred not in builtin_names:
                    self._pred_ids.setdefault(
                        literal.pred, len(self._pred_ids)
                    )
        for pred in self.program.facts:
            self._pred_ids.setdefault(pred, len(self._pred_ids))

        self.source = "\n\n".join(sources)
        builtin_table: List[Optional[BuiltinFn]] = [None] * len(self._builtin_ids)
        for name, table_id in self._builtin_ids.items():
            builtin_table[table_id] = self.builtins[name]
        namespace = {
            "_B": builtin_table,
            "_C": self._const_pool,
            "_V": self._var_pool,
            "_EMPTY": (),
        }
        exec(compile(self.source, "<datalog-codegen>", "exec"), namespace)
        self._functions = {
            name: namespace[name] for (_, _, name) in self.variants
        }
        self._index_plan = sorted(self._index_ids)

    # -- storage -----------------------------------------------------------

    def _init_storage(self) -> None:
        # One shared-substrate relation per predicate.  The generated
        # functions use the store's fast-path views: ``db[pid]`` is the
        # relation's live row set (membership + scans) and ``idx[iid]``
        # the live bucket dict of one planned column-subset index
        # (``.get`` probes) — codegen's compile-time index plan realized
        # up front, maintained incrementally by ``Relation.add``.
        self.store = TupleStore()
        self._relations: Dict[str, Relation] = {}
        ordered = sorted(self._pred_ids, key=self._pred_ids.get)
        for pred in ordered:
            self._relations[pred] = self.store.relation(pred)
        self._db: List[Set[Tuple]] = [
            self._relations[pred].rows for pred in ordered
        ]
        self._idx: List[Dict] = [None] * len(self._index_ids)
        for (pred, positions), index_id in self._index_ids.items():
            self._idx[index_id] = self._relations[pred].index_view(positions)

    def _insert(self, pred: str, row: Tuple) -> bool:
        return self._relations[pred].add(row)

    def _load(self, pred: str, row: Tuple) -> bool:
        return self._relations[pred].load(row)

    # -- evaluation -----------------------------------------------------------

    def run(self) -> Dict[str, Set[Tuple]]:
        import time

        start = time.perf_counter()
        self._init_storage()
        for pred, rows in self.program.facts.items():
            for row in rows:
                self._load(pred, row)
        for rule in self.program.rules:
            if rule.is_fact():
                self._load(
                    rule.head.pred,
                    tuple(t.value for t in rule.head.args),
                )

        strata = stratify(self.program, set(self.builtins))
        for stratum in strata:
            self._evaluate_stratum(stratum)
        self.stats.seconds = time.perf_counter() - start
        # Mirror the interpreting engine's view: fact relations plus
        # every rule-head relation (body-only EDB names stay hidden).
        visible = set(self.program.facts) | {
            rule.head.pred for rule in self.program.rules
        }
        return {
            pred: set(self._db[self._pred_ids[pred]]) for pred in visible
        }

    def _evaluate_stratum(self, stratum: Set[str]) -> None:
        full_variants = []
        by_delta: Dict[str, List[Tuple[str, object]]] = defaultdict(list)
        for (head, delta_pred, name) in self.variants:
            if head not in stratum:
                continue
            if delta_pred is None:
                full_variants.append((head, self._functions[name]))
            else:
                by_delta[delta_pred].append((head, self._functions[name]))

        heads = [
            self._relations[pred]
            for pred in dict.fromkeys(h for (h, _, _) in self.variants)
            if pred in stratum
        ]

        # Round zero: full evaluation; new rows land in each head
        # relation's pending frontier.
        for (head, fn) in full_variants:
            out: List[Tuple] = []
            fn(self._db, self._idx, (), out)
            self.stats.rule_evaluations += 1
            for row in out:
                if self._insert(head, row):
                    self.stats.facts_derived += 1
        # Semi-naive rounds: cut the frontier (pending → delta) and run
        # only variants whose delta predicate moved.
        delta: Dict[str, Sequence[Tuple]] = {
            rel.name: rel.promote() for rel in heads if rel.pending
        }
        while delta:
            self.stats.rounds += 1
            for delta_pred, rows in delta.items():
                for (head, fn) in by_delta.get(delta_pred, ()):
                    out = []
                    fn(self._db, self._idx, rows, out)
                    self.stats.rule_evaluations += 1
                    for row in out:
                        if self._insert(head, row):
                            self.stats.facts_derived += 1
            delta = {
                rel.name: rel.promote() for rel in heads if rel.pending
            }

    def query(self, pred: str) -> Set[Tuple]:
        pid = self._pred_ids.get(pred)
        if pid is None or not hasattr(self, "_db"):
            return set()
        return set(self._db[pid])

    def store_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-relation store counters (rows, inserts, dedup, index
        builds/sizes).  Probes are inlined ``dict.get`` calls in the
        generated code and are not counted on this path."""
        if not hasattr(self, "store"):
            return {}
        return self.store.describe()
