"""Abstract syntax for Datalog programs.

The paper's implementation instantiates its parameterized deduction
rules into *plain Datalog* evaluated bottom-up (Section 7).  This module
defines the rule language our engine evaluates:

* terms are :class:`Var` or :class:`Const`;
* a :class:`Literal` is a possibly negated atom ``pred(t1, …, tn)``;
* a :class:`Rule` is ``head :- body`` (a fact when the body is empty);
* a :class:`Program` is a list of rules plus extensional facts.

Builtin predicates (registered Python relations, used for the context
constructors the context-string instantiation needs) are ordinary
literals whose predicate name is bound in the engine's builtin table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union


@dataclass(frozen=True)
class SourcePos:
    """A 1-based (line, column) position in Datalog source text.

    Attached by :mod:`repro.datalog.parser`; programs built
    programmatically (e.g. by :mod:`repro.compile.specialize`) carry no
    positions.  Excluded from equality/hashing so positioned and
    position-free literals compare equal.
    """

    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class Var:
    """A rule variable.  Conventionally spelled with a leading capital."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant term: any hashable Python value."""

    value: object

    def __repr__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return repr(self.value)


Term = Union[Var, Const]


@dataclass(frozen=True)
class Literal:
    """An atom ``pred(args)``, possibly negated."""

    pred: str
    args: Tuple[Term, ...]
    negated: bool = False
    pos: Optional[SourcePos] = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        bang = "!" if self.negated else ""
        args = ", ".join(map(repr, self.args))
        return f"{bang}{self.pred}({args})"

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> Set[Var]:
        return {t for t in self.args if isinstance(t, Var)}


def atom(pred: str, *args) -> Literal:
    """Convenience constructor: strings starting with an uppercase letter
    or underscore become variables; everything else is a constant."""
    return Literal(pred, tuple(_term(a) for a in args))


def negated(pred: str, *args) -> Literal:
    """A negated atom (see :func:`atom` for the term convention)."""
    return Literal(pred, tuple(_term(a) for a in args), negated=True)


def _term(value) -> Term:
    if isinstance(value, (Var, Const)):
        return value
    if isinstance(value, str) and value and (value[0].isupper() or value[0] == "_"):
        return Var(value)
    return Const(value)


@dataclass(frozen=True)
class Rule:
    """``head :- body.``  A fact when the body is empty."""

    head: Literal
    body: Tuple[Literal, ...] = ()
    pos: Optional[SourcePos] = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        if not self.body:
            return f"{self.head!r}."
        return f"{self.head!r} :- {', '.join(map(repr, self.body))}."

    def is_fact(self) -> bool:
        return not self.body

    def validate(self) -> None:
        """Range-restriction (safety) checks.

        Every head variable and every variable of a negated literal must
        occur in some positive body literal.  Builtins are positive
        literals here; the engine additionally checks their groundness
        at evaluation time.
        """
        if self.head.negated:
            raise ValueError(f"negated head in {self!r}")
        positive_vars: Set[Var] = set()
        for lit in self.body:
            if not lit.negated:
                positive_vars |= lit.variables()
        unsafe = self.head.variables() - positive_vars
        if unsafe:
            raise ValueError(
                f"unsafe head variables {sorted(v.name for v in unsafe)}"
                f" in {self!r}"
            )
        for lit in self.body:
            if lit.negated:
                loose = lit.variables() - positive_vars
                if loose:
                    raise ValueError(
                        f"unsafe variables {sorted(v.name for v in loose)}"
                        f" in negated literal of {self!r}"
                    )


@dataclass
class Program:
    """A Datalog program: rules plus extensional (input) facts."""

    rules: List[Rule] = field(default_factory=list)
    facts: Dict[str, Set[Tuple]] = field(default_factory=dict)

    def rule(self, head: Literal, *body: Literal) -> Rule:
        """Append and return ``head :- body.``"""
        new_rule = Rule(head, tuple(body))
        new_rule.validate()
        self.rules.append(new_rule)
        return new_rule

    def fact(self, pred: str, *values) -> None:
        """Add one extensional fact."""
        self.facts.setdefault(pred, set()).add(tuple(values))

    def add_facts(self, pred: str, rows: Iterable[Sequence]) -> None:
        """Bulk-add extensional facts."""
        target = self.facts.setdefault(pred, set())
        target.update(tuple(row) for row in rows)

    def idb_predicates(self) -> FrozenSet[str]:
        """Predicates defined by at least one rule head."""
        return frozenset(r.head.pred for r in self.rules)

    def edb_predicates(self) -> FrozenSet[str]:
        """Predicates that appear only as inputs."""
        heads = self.idb_predicates()
        used = {
            lit.pred for r in self.rules for lit in r.body
        } | set(self.facts)
        return frozenset(used - heads)

    def validate(self) -> None:
        for rule in self.rules:
            rule.validate()
        arities: Dict[str, int] = {}
        for rule in self.rules:
            for lit in (rule.head, *rule.body):
                known = arities.setdefault(lit.pred, lit.arity)
                if known != lit.arity:
                    raise ValueError(
                        f"predicate {lit.pred!r} used with arities"
                        f" {known} and {lit.arity}"
                    )
        for pred, rows in self.facts.items():
            for row in rows:
                known = arities.setdefault(pred, len(row))
                if known != len(row):
                    raise ValueError(
                        f"fact {pred}{row!r} has arity {len(row)},"
                        f" expected {known}"
                    )

    def __len__(self) -> int:
        return len(self.rules)
