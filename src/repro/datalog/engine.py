"""Bottom-up stratified semi-naive Datalog evaluation.

The engine follows the classical discipline the paper's research
prototype implements (Section 7, modulo its LLVM backend):

1. stratify the program (negation only across strata);
2. within a stratum, evaluate by *semi-naive iteration*: each round
   re-derives only rule instances that use at least one fact discovered
   in the previous round (the "delta"), by evaluating, for every rule
   and every occurrence of an in-stratum predicate, a variant in which
   that occurrence ranges over the delta and the others over the full
   relations;
3. joins proceed left to right, probing hash indices keyed by the bound
   columns of each literal — so the attribute-sharing of a rule's
   literals directly determines join efficiency, which is precisely the
   lever the paper's configuration specialization pulls.

Storage is the shared substrate of :mod:`repro.store`: delta-aware
relations (the semi-naive ``stable``/``delta``/``pending`` lifecycle is
implemented there, once, for this engine, the compiled back-end and the
solvers) with the column-subset indices each join will probe planned up
front from the program (:func:`repro.store.plan_indices`) instead of
lazily on first probe.

Builtins (context constructors, comparisons) are evaluated inline when
reached; negated literals must be fully bound.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.datalog.ast import Const, Literal, Program, Rule, Var
from repro.datalog.builtins import DEFAULT_BUILTINS, BuiltinFn
from repro.store import Relation, TupleStore, plan_indices
from repro.datalog.stratify import stratify

Bindings = Dict[Var, object]


class EngineStats:
    """Counters for one evaluation."""

    def __init__(self) -> None:
        self.rounds = 0
        self.rule_evaluations = 0
        self.facts_derived = 0
        self.seconds = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "rounds": self.rounds,
            "rule_evaluations": self.rule_evaluations,
            "facts_derived": self.facts_derived,
            "seconds": self.seconds,
        }


class Engine:
    """Evaluates a :class:`Program` to fixpoint."""

    def __init__(
        self,
        program: Program,
        builtins: Optional[Dict[str, BuiltinFn]] = None,
        strict: bool = False,
        cost_order: bool = False,
    ):
        self.builtins: Dict[str, BuiltinFn] = dict(DEFAULT_BUILTINS)
        if builtins:
            self.builtins.update(builtins)
        if cost_order:
            # Rewrite each rule body into the cost-chosen join order
            # (a legal permutation under the same left-to-right binding
            # discipline, so results are bit-identical — the index plan
            # below then serves the *chosen* probes).
            from repro.datalog.cost import reorder_program

            program = reorder_program(program, builtins=self.builtins)
        self.cost_ordered = cost_order
        if strict:
            # Full semantic analysis up front: rejects programs the
            # basic validate() accepts but that would fail mid-join
            # (e.g. a negated literal reached before its variables are
            # bound under the left-to-right evaluation order).
            from repro.datalog.lint import lint_program

            lint_program(
                program, builtins=self.builtins, subject="program"
            ).raise_if_errors()
        program.validate()
        self.program = program
        overlap = set(self.builtins) & (
            program.idb_predicates() | set(program.facts)
        )
        if overlap:
            raise ValueError(
                f"predicates {sorted(overlap)} are both builtins and"
                " stored relations"
            )
        self.store = TupleStore()
        self.relations: Dict[str, Relation] = self.store.relations()
        self._index_plan = plan_indices(program, builtins=self.builtins)
        self.stats = EngineStats()
        self._install_facts()

    # ------------------------------------------------------------------

    def _relation(self, pred: str, arity: int) -> Relation:
        rel = self.relations.get(pred)
        if rel is None:
            rel = self.store.relation(pred, arity)
            for positions in sorted(self._index_plan.get(pred, ())):
                rel.ensure_index(positions)
        return rel

    def _install_facts(self) -> None:
        # Extensional rows load directly as stable: joinable, but never
        # part of a stratum's delta.
        for pred, rows in self.program.facts.items():
            for row in rows:
                self._relation(pred, len(row)).load(row)
        # Facts written as body-less rules with constant heads.
        for rule in self.program.rules:
            if rule.is_fact():
                row = tuple(
                    t.value if isinstance(t, Const) else None
                    for t in rule.head.args
                )
                if any(
                    isinstance(t, Var) for t in rule.head.args
                ):  # pragma: no cover - rejected by validate()
                    raise ValueError(f"non-ground fact {rule!r}")
                self._relation(rule.head.pred, rule.head.arity).load(row)

    # ------------------------------------------------------------------

    def run(self) -> Dict[str, Set[Tuple]]:
        """Evaluate to fixpoint; returns predicate → row set."""
        start = time.perf_counter()
        strata = stratify(self.program, set(self.builtins))
        rules = [r for r in self.program.rules if not r.is_fact()]
        for stratum in strata:
            self._evaluate_stratum(
                stratum, [r for r in rules if r.head.pred in stratum]
            )
        self.stats.seconds = time.perf_counter() - start
        return {name: rel.snapshot() for name, rel in self.relations.items()}

    def query(self, pred: str) -> Set[Tuple]:
        """The rows of one predicate (empty if never populated)."""
        rel = self.relations.get(pred)
        return rel.snapshot() if rel else set()

    def store_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-relation store counters (rows, inserts, dedup, probes,
        index builds/sizes) — see :meth:`repro.store.TupleStore.describe`."""
        return self.store.describe()

    # ------------------------------------------------------------------

    def _evaluate_stratum(self, stratum: Set[str], rules: List[Rule]) -> None:
        heads = {
            rule.head.pred: self._relation(rule.head.pred, rule.head.arity)
            for rule in rules
        }

        # Round zero: evaluate every rule against the full (EDB +
        # earlier-strata) database; new rows land in each relation's
        # pending frontier.
        for rule in rules:
            head = heads[rule.head.pred]
            for row in self._evaluate_rule(rule, None, None):
                if head.add(row):
                    self.stats.facts_derived += 1

        # Semi-naive rounds: cut the frontier (pending → delta), then
        # re-derive only rule instances touching some delta.
        delta: Dict[str, Sequence[Tuple]] = {
            pred: rel.promote() for pred, rel in heads.items()
        }
        while any(delta.values()):
            self.stats.rounds += 1
            for rule in rules:
                head = heads[rule.head.pred]
                positions = [
                    i
                    for i, lit in enumerate(rule.body)
                    if not lit.negated
                    and lit.pred in stratum
                    and delta.get(lit.pred)
                ]
                for position in positions:
                    for row in self._evaluate_rule(
                        rule, position, delta[rule.body[position].pred]
                    ):
                        if head.add(row):
                            self.stats.facts_derived += 1
            delta = {pred: rel.promote() for pred, rel in heads.items()}

    # ------------------------------------------------------------------

    def _evaluate_rule(
        self,
        rule: Rule,
        delta_position: Optional[int],
        delta_rows: Optional[Set[Tuple]],
    ) -> Iterator[Tuple]:
        """Yield head rows derivable for the given delta configuration."""
        self.stats.rule_evaluations += 1
        head = rule.head

        # Per-evaluation hash index over the delta rows (built lazily,
        # keyed by the probe's bound positions): without it every prefix
        # binding would re-scan the whole delta set linearly, which
        # penalizes any body order that doesn't put the delta literal
        # first — the index makes the delta probe as cheap as a stable
        # relation probe.
        self._delta_index: Dict[Tuple[int, ...], Dict[Tuple, List[Tuple]]] = {}

        def substitute(bindings: Bindings) -> Tuple:
            return tuple(
                bindings[t] if isinstance(t, Var) else t.value
                for t in head.args
            )

        for bindings in self._join(rule.body, 0, {}, delta_position, delta_rows):
            yield substitute(bindings)

    def _join(
        self,
        body: Sequence[Literal],
        index: int,
        bindings: Bindings,
        delta_position: Optional[int],
        delta_rows: Optional[Set[Tuple]],
    ) -> Iterator[Bindings]:
        if index == len(body):
            yield bindings
            return
        literal = body[index]

        if literal.pred in self.builtins:
            yield from self._eval_builtin(
                literal, bindings, body, index, delta_position, delta_rows
            )
            return

        if literal.negated:
            yield from self._eval_negated(
                literal, bindings, body, index, delta_position, delta_rows
            )
            return

        # Resolve the probe key from already-bound variables & constants.
        bound_positions: List[int] = []
        key_values: List[object] = []
        for position, term in enumerate(literal.args):
            if isinstance(term, Const):
                bound_positions.append(position)
                key_values.append(term.value)
            elif term in bindings:
                bound_positions.append(position)
                key_values.append(bindings[term])

        if index == delta_position:
            positions = tuple(bound_positions)
            buckets = self._delta_index.get(positions)
            if buckets is None:
                buckets = {}
                for row in delta_rows:
                    key = tuple(row[p] for p in positions)
                    buckets.setdefault(key, []).append(row)
                self._delta_index[positions] = buckets
            candidates: Sequence[Tuple] = buckets.get(
                tuple(key_values), ()
            )
        else:
            relation = self.relations.get(literal.pred)
            if relation is None:
                return
            candidates = relation.lookup(
                tuple(bound_positions), tuple(key_values)
            )

        for row in candidates:
            extended = self._unify(literal, row, bindings)
            if extended is not None:
                yield from self._join(
                    body, index + 1, extended, delta_position, delta_rows
                )

    @staticmethod
    def _unify(
        literal: Literal, row: Tuple, bindings: Bindings
    ) -> Optional[Bindings]:
        extended = dict(bindings)
        for term, value in zip(literal.args, row):
            if isinstance(term, Const):
                if term.value != value:
                    return None
            elif term not in extended:
                extended[term] = value
            elif extended[term] != value:
                return None
        return extended

    def _eval_builtin(
        self, literal, bindings, body, index, delta_position, delta_rows
    ) -> Iterator[Bindings]:
        fn = self.builtins[literal.pred]
        call_args = tuple(
            (bindings.get(t, t) if isinstance(t, Var) else t.value)
            for t in literal.args
        )
        produced = fn(call_args)
        if literal.negated:
            if next(iter(produced), None) is None:
                yield from self._join(
                    body, index + 1, bindings, delta_position, delta_rows
                )
            return
        for completed in produced:
            extended = dict(bindings)
            consistent = True
            for term, value in zip(literal.args, completed):
                if isinstance(term, Var):
                    if term not in extended:
                        extended[term] = value
                    elif extended[term] != value:
                        consistent = False
                        break
                elif term.value != value:
                    consistent = False
                    break
            if consistent:
                yield from self._join(
                    body, index + 1, extended, delta_position, delta_rows
                )

    def _eval_negated(
        self, literal, bindings, body, index, delta_position, delta_rows
    ) -> Iterator[Bindings]:
        args = []
        for term in literal.args:
            if isinstance(term, Const):
                args.append(term.value)
            else:
                if term not in bindings:
                    raise ValueError(
                        f"negated literal {literal!r} reached with"
                        f" unbound variable {term!r}"
                    )
                args.append(bindings[term])
        relation = self.relations.get(literal.pred)
        present = relation is not None and tuple(args) in relation
        if not present:
            yield from self._join(
                body, index + 1, bindings, delta_position, delta_rows
            )


def evaluate(
    program: Program, builtins=None, strict: bool = False,
    cost_order: bool = False,
) -> Dict[str, Set[Tuple]]:
    """One-shot evaluation convenience wrapper."""
    return Engine(program, builtins, strict=strict, cost_order=cost_order).run()
